"""Tests for geodesic tools, relation extensions, io, and the builder."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.extensions import (classify_pair, classify_relations,
                                   intersection_loss,
                                   mined_relation_report)
from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.data.io import (dataset_from_frames, load_dataset_file,
                           read_interactions_csv, read_item_tags_csv,
                           save_dataset)
from repro.manifolds import Lorentz, enclosing_ball
from repro.manifolds.geodesic import (einstein_midpoint, frechet_mean,
                                      lorentz_geodesic,
                                      lorentz_parallel_transport)
from repro.optim import Adam, Parameter
from repro.taxonomy import Taxonomy
from repro.taxonomy.builder import (build_taxonomy_from_tags,
                                    taxonomy_quality)
from repro.tensor import Tensor

RNG = np.random.default_rng(23)


class TestGeodesics:
    def test_endpoints(self):
        manifold = Lorentz()
        x = manifold.random((1, 4), RNG)[0]
        y = manifold.random((1, 4), RNG)[0]
        path = lorentz_geodesic(x, y, np.array([0.0, 1.0]))
        np.testing.assert_allclose(path[0], x, atol=1e-9)
        np.testing.assert_allclose(path[1], y, atol=1e-9)

    def test_midpoint_equidistant(self):
        manifold = Lorentz()
        x = manifold.random((1, 4), RNG)[0]
        y = manifold.random((1, 4), RNG)[0]
        mid = lorentz_geodesic(x, y, np.array([0.5]))[0]
        d_xm = np.arccosh(-Lorentz.inner_np(x[None], mid[None]))[0]
        d_ym = np.arccosh(-Lorentz.inner_np(y[None], mid[None]))[0]
        assert d_xm == pytest.approx(d_ym, rel=1e-6)

    def test_path_on_manifold(self):
        manifold = Lorentz()
        x = manifold.random((1, 5), RNG)[0]
        y = manifold.random((1, 5), RNG)[0]
        path = lorentz_geodesic(x, y, np.linspace(0, 1, 7))
        np.testing.assert_allclose(Lorentz.inner_np(path, path), -1.0,
                                   atol=1e-8)

    def test_parallel_transport_preserves_norm(self):
        manifold = Lorentz()
        x = manifold.random((1, 4), RNG)
        y = manifold.random((1, 4), RNG)
        v = manifold.proj_tangent(x, RNG.normal(size=(1, 4)))
        transported = lorentz_parallel_transport(x, y, v)
        # Transported vector is tangent at y with the same Lorentz norm.
        np.testing.assert_allclose(Lorentz.inner_np(y, transported), 0.0,
                                   atol=1e-9)
        np.testing.assert_allclose(Lorentz.inner_np(v, v),
                                   Lorentz.inner_np(transported,
                                                    transported),
                                   atol=1e-9)

    def test_frechet_mean_of_identical_points(self):
        manifold = Lorentz()
        x = manifold.random((1, 4), RNG)[0]
        mean = frechet_mean(np.stack([x, x, x]))
        np.testing.assert_allclose(mean, x, atol=1e-7)

    def test_frechet_mean_minimizes_sq_distances(self):
        manifold = Lorentz()
        pts = manifold.random((10, 4), RNG)
        mean = frechet_mean(pts)

        def cost(point):
            d = np.arccosh(np.maximum(
                -Lorentz.inner_np(pts, point[None]), 1.0))
            return float(np.sum(d ** 2))

        base = cost(mean)
        for p in pts:
            assert base <= cost(p) + 1e-6

    def test_einstein_midpoint_on_manifold(self):
        manifold = Lorentz()
        pts = manifold.random((6, 5), RNG)
        mid = einstein_midpoint(pts)
        assert Lorentz.inner_np(mid[None], mid[None])[0] == pytest.approx(
            -1.0, abs=1e-9)

    def test_einstein_midpoint_weighted(self):
        manifold = Lorentz()
        pts = manifold.random((2, 4), RNG)
        # All weight on the first point => midpoint ~= first point.
        mid = einstein_midpoint(pts, weights=np.array([1.0, 0.0]))
        np.testing.assert_allclose(mid, pts[0], atol=1e-9)


class TestIntersectionExtension:
    def test_classify_pair_cases(self):
        o = np.array([0.0, 0.0])
        assert classify_pair(o, 1.0, np.array([5.0, 0.0]),
                             1.0) == "exclusion"
        assert classify_pair(o, 3.0, np.array([0.5, 0.0]),
                             1.0) == "hierarchy_i_contains_j"
        assert classify_pair(o, 1.0, np.array([0.5, 0.0]),
                             3.0) == "hierarchy_j_contains_i"
        assert classify_pair(o, 1.0, np.array([1.5, 0.0]),
                             1.0) == "intersection"

    def test_classify_relations_batch(self):
        centers = np.array([[0.8, 0.0], [-0.8, 0.0], [0.79, 0.01]])
        labels = classify_relations(centers, np.array([[0, 1], [0, 2]]))
        assert labels[0] == "exclusion"       # opposite tiny balls
        assert labels[1] != "exclusion"       # nearly identical centers

    def test_intersection_loss_zero_when_partial_overlap(self):
        # Two balls overlapping partially: loss = 0.
        centers = Tensor(np.array([[0.5, 0.0], [0.55, 0.1]]))
        balls = enclosing_ball(centers)
        o, r = balls[0].data, balls[1].data
        gap = np.linalg.norm(o[0] - o[1])
        if abs(r[0, 0] - r[1, 0]) < gap < r[0, 0] + r[1, 0]:
            loss = intersection_loss(balls, np.array([[0, 1]]))
            assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_intersection_loss_positive_when_disjoint(self):
        centers = Tensor(np.array([[0.9, 0.0], [-0.9, 0.0]]))
        loss = intersection_loss(enclosing_ball(centers),
                                 np.array([[0, 1]]))
        assert loss.item() > 0

    def test_intersection_loss_trains_toward_overlap(self):
        centers = Parameter(np.array([[0.9, 0.0], [-0.9, 0.0]]))
        opt = Adam([centers], lr=0.02)
        pairs = np.array([[0, 1]])
        for _ in range(400):
            opt.zero_grad()
            loss = intersection_loss(enclosing_ball(centers), pairs)
            if loss.item() < 1e-8:
                break
            loss.backward()
            opt.step()
        assert loss.item() < 0.05

    def test_intersection_loss_empty(self):
        centers = Tensor(np.array([[0.5, 0.0]]))
        loss = intersection_loss(enclosing_ball(centers),
                                 np.zeros((0, 2), dtype=np.int64))
        assert loss.item() == 0.0

    def test_mined_relation_report(self):
        from repro.core import LogiRecConfig, LogiRecPP
        ds = generate_dataset(SyntheticConfig(
            n_users=60, n_items=120, depth=3, branching=3,
            overlap_pair_frac=0.5, overlap_item_frac=0.7, seed=5))
        split = temporal_split(ds)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          LogiRecConfig(dim=8, epochs=25, lam=2.0,
                                        seed=0))
        model.fit(ds, split)
        report = mined_relation_report(model, ds)
        assert 0.0 <= report["kept_genuine_frac"] <= 1.0
        assert 0.0 <= report["softened_mislabelled_frac"] <= 1.0
        assert len(report["rows"]) == len(ds.relations.exclusion)


class TestDatasetIO:
    def test_npz_roundtrip(self, tmp_path):
        ds = generate_dataset(SyntheticConfig(n_users=20, n_items=30,
                                              seed=2))
        path = str(tmp_path / "ds")
        save_dataset(ds, path)
        loaded = load_dataset_file(path)
        np.testing.assert_array_equal(loaded.user_ids, ds.user_ids)
        np.testing.assert_array_equal(loaded.item_ids, ds.item_ids)
        assert (loaded.item_tags != ds.item_tags).nnz == 0
        assert loaded.taxonomy.n_tags == ds.taxonomy.n_tags
        assert loaded.name == ds.name

    def test_csv_ingestion(self, tmp_path):
        inter = tmp_path / "inter.csv"
        inter.write_text("user,item,ts\n"
                         "alice,song1,3\nalice,song2,5\nbob,song1,1\n")
        users, items, times, user_map, item_map = read_interactions_csv(
            str(inter))
        assert len(users) == 3
        assert user_map["alice"] == 0
        assert items[2] == items[0]  # bob also listened to song1
        np.testing.assert_array_equal(times, [3, 5, 1])

    def test_csv_without_timestamp_uses_order(self, tmp_path):
        inter = tmp_path / "inter.csv"
        inter.write_text("user,item\nu1,i1\nu1,i2\n")
        _, _, times, _, _ = read_interactions_csv(str(inter))
        np.testing.assert_array_equal(times, [0, 1])

    def test_item_tags_csv(self, tmp_path):
        tags = tmp_path / "tags.csv"
        tags.write_text("item,tag\nsong1,rock\nsong2,jazz\n"
                        "ghost,metal\n")
        item_map = {"song1": 0, "song2": 1}
        q, tag_map = read_item_tags_csv(str(tags), item_map)
        assert q.shape == (2, 2)  # ghost skipped, 2 tags kept
        assert q[0, tag_map["rock"]] == 1.0
        assert "metal" not in tag_map

    def test_dataset_from_frames(self):
        taxonomy = Taxonomy([-1, 0])
        q = sp.csr_matrix(np.array([[1, 0], [0, 1], [1, 1]]))
        ds = dataset_from_frames(
            np.array([0, 0, 1]), np.array([0, 1, 2]),
            np.array([0, 1, 0]), q, taxonomy)
        assert ds.n_users == 2
        assert ds.n_items == 3
        assert ds.relations.counts["n_membership"] == 4


class TestTaxonomyBuilder:
    def _nested_q(self):
        """Items under a perfect 2-level hierarchy: tag0 > {tag1, tag2}."""
        rows = []
        for item in range(20):
            child = 1 + (item % 2)
            rows.append((item, 0))
            rows.append((item, child))
        r, c = zip(*rows)
        return sp.coo_matrix((np.ones(len(rows)), (r, c)),
                             shape=(20, 3)).tocsr()

    def test_recovers_planted_hierarchy(self):
        q = self._nested_q()
        inferred = build_taxonomy_from_tags(q)
        assert inferred.parent(1) == 0
        assert inferred.parent(2) == 0
        assert inferred.parent(0) == -1

    def test_quality_against_reference(self):
        q = self._nested_q()
        inferred = build_taxonomy_from_tags(q)
        reference = Taxonomy([-1, 0, 0])
        quality = taxonomy_quality(inferred, reference)
        assert quality["f1"] == pytest.approx(1.0)

    def test_threshold_prunes_weak_edges(self):
        # tag1 co-occurs with tag0 only half the time: no edge at 0.8.
        rows = [(i, 1) for i in range(10)] + [(i, 0) for i in range(5)]
        r, c = zip(*rows)
        q = sp.coo_matrix((np.ones(len(rows)), (r, c)),
                          shape=(10, 2)).tocsr()
        inferred = build_taxonomy_from_tags(q,
                                            subsumption_threshold=0.8)
        assert inferred.parent(1) == -1

    def test_low_support_tags_stay_roots(self):
        q = sp.csr_matrix(np.array([[1, 1], [1, 0], [1, 0]]))
        inferred = build_taxonomy_from_tags(q, min_support=2)
        assert inferred.parent(1) == -1  # support 1 < min_support

    def test_synthetic_dataset_recovery(self):
        """On generator output (ancestor_prob < 1) the builder should
        still recover a majority of ancestor edges."""
        ds = generate_dataset(SyntheticConfig(
            n_users=30, n_items=300, depth=3, branching=3,
            ancestor_prob=0.95, extra_tag_prob=0.0,
            overlap_pair_frac=0.0, seed=9))
        inferred = build_taxonomy_from_tags(ds.item_tags,
                                            subsumption_threshold=0.7)
        quality = taxonomy_quality(inferred, ds.taxonomy)
        assert quality["recall"] > 0.4
        assert quality["precision"] > 0.4


class TestCLI:
    def test_stats_command(self, capsys):
        from repro.cli import main
        assert main(["stats", "--datasets", "ciao"]) == 0
        out = capsys.readouterr().out
        assert "ciao" in out

    def test_train_command(self, capsys):
        from repro.cli import main
        code = main(["train", "BPRMF", "--dataset", "ciao",
                     "--epochs", "2"])
        assert code == 0
        assert "BPRMF on ciao" in capsys.readouterr().out

    def test_unknown_model_errors(self):
        from repro.cli import main
        with pytest.raises(KeyError):
            main(["train", "Nonexistent", "--epochs", "1"])

    def test_parser_requires_command(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
