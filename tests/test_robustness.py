"""Tests for the taxonomy-corruption robustness experiment."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.experiments.robustness import (corrupt_taxonomy,
                                          format_robustness_table,
                                          run_noise_robustness,
                                          _with_taxonomy)
from repro.taxonomy import Taxonomy


class TestCorruptTaxonomy:
    @pytest.fixture
    def taxonomy(self):
        return Taxonomy.balanced(depth=4, branching=3, n_roots=2)

    def test_zero_fraction_identity(self, taxonomy):
        rng = np.random.default_rng(0)
        out = corrupt_taxonomy(taxonomy, 0.0, rng)
        np.testing.assert_array_equal(out.parents, taxonomy.parents)

    def test_fraction_of_edges_rewired(self, taxonomy):
        rng = np.random.default_rng(0)
        out = corrupt_taxonomy(taxonomy, 0.5, rng)
        changed = int((out.parents != taxonomy.parents).sum())
        non_roots = int((taxonomy.parents != -1).sum())
        # At most the requested number change (a victim may draw its old
        # parent back or have no candidate), and plenty should change.
        assert changed <= round(non_roots * 0.5)
        assert changed >= non_roots * 0.2

    def test_levels_preserved(self, taxonomy):
        rng = np.random.default_rng(1)
        out = corrupt_taxonomy(taxonomy, 0.7, rng)
        np.testing.assert_array_equal(out.levels, taxonomy.levels)

    def test_no_cycles(self, taxonomy):
        # Taxonomy's constructor validates; just ensure it constructs.
        rng = np.random.default_rng(2)
        for seed in range(5):
            corrupt_taxonomy(taxonomy, 0.9,
                             np.random.default_rng(seed))

    def test_corruption_changes_exclusions(self):
        ds = load_dataset("ciao", scale=0.5)
        rng = np.random.default_rng(3)
        corrupted = corrupt_taxonomy(ds.taxonomy, 0.8, rng)
        clone = _with_taxonomy(ds, corrupted)
        before = ds.relations.exclusion_set()
        after = clone.relations.exclusion_set()
        assert before != after

    def test_clone_keeps_interactions(self):
        ds = load_dataset("ciao", scale=0.5)
        rng = np.random.default_rng(4)
        clone = _with_taxonomy(ds, corrupt_taxonomy(ds.taxonomy, 0.5,
                                                    rng))
        np.testing.assert_array_equal(clone.user_ids, ds.user_ids)
        assert (clone.item_tags != ds.item_tags).nnz == 0


class TestRobustnessRun:
    def test_small_run_structure(self):
        results = run_noise_robustness("ciao", fractions=(0.0, 0.5),
                                       epochs=5)
        assert set(results) == {0.0, 0.5}
        for fraction in results:
            assert set(results[fraction]) == {"LogiRec", "LogiRec++"}
            for metrics in results[fraction].values():
                assert "recall@10" in metrics

    def test_format_table(self):
        results = {0.0: {"LogiRec": {"recall@10": 10.0},
                         "LogiRec++": {"recall@10": 12.0}}}
        text = format_robustness_table(results)
        assert "0%" in text
        assert "+2.00" in text
