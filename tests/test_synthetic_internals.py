"""Deeper tests of the synthetic generator's planted structure."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset
from repro.data.synthetic import _user_traits
from repro.taxonomy import extract_membership


class TestItemTagStructure:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(SyntheticConfig(
            n_users=40, n_items=200, depth=4, branching=3,
            ancestor_prob=1.0, extra_tag_prob=0.0,
            overlap_pair_frac=0.0, seed=31))

    def test_full_ancestor_closure_at_prob_one(self, dataset):
        """With ancestor_prob=1, every item carries its leaf's complete
        ancestor chain."""
        taxonomy = dataset.taxonomy
        csr = dataset.item_tags
        leaves = set(taxonomy.leaves)
        for item in range(dataset.n_items):
            tags = set(csr.indices[csr.indptr[item]:csr.indptr[item + 1]])
            item_leaves = tags & leaves
            assert item_leaves
            leaf = next(iter(item_leaves))
            for anc in taxonomy.ancestors(leaf):
                assert anc in tags

    def test_membership_count_matches_q(self, dataset):
        pairs = extract_membership(dataset.item_tags)
        assert len(pairs) == dataset.item_tags.nnz
        assert dataset.relations.counts["n_membership"] == (
            dataset.item_tags.nnz)

    def test_memberships_per_item_equals_depth(self, dataset):
        """depth-4 closure + single leaf = exactly 4 tags per item."""
        per_item = np.diff(dataset.item_tags.indptr)
        assert (per_item == dataset.taxonomy.depth).all()


class TestUserTraits:
    def test_focus_levels_match_focus_nodes(self):
        config = SyntheticConfig(n_users=200, seed=5)
        taxonomy = config.taxonomy()
        rng = np.random.default_rng(5)
        focus, levels, consistency = _user_traits(config, taxonomy, rng)
        for node, level in zip(focus, levels):
            assert taxonomy.level(int(node)) == int(level)

    def test_consistency_in_unit_interval(self):
        config = SyntheticConfig(n_users=100, seed=6)
        taxonomy = config.taxonomy()
        _, _, consistency = _user_traits(config, taxonomy,
                                         np.random.default_rng(6))
        assert (consistency >= 0).all()
        assert (consistency <= 1).all()

    def test_consistent_users_stay_in_subtree(self):
        """Users planted with near-1 consistency mostly pick items whose
        primary leaf lies under their focus node."""
        ds = generate_dataset(SyntheticConfig(
            n_users=60, n_items=200, depth=3, branching=3,
            consistency_beta=(50.0, 1.0),  # consistency ~ 1
            extra_tag_prob=0.0, overlap_pair_frac=0.0, seed=8))
        taxonomy = ds.taxonomy
        csr = ds.item_tags
        leaves = set(taxonomy.leaves)
        in_focus, total = 0, 0
        for u, item in zip(ds.user_ids, ds.item_ids):
            focus = int(ds.user_focus[u])
            focus_leaves = set(taxonomy.subtree_leaves(focus))
            tags = set(csr.indices[csr.indptr[item]:csr.indptr[item + 1]])
            total += 1
            if tags & leaves & focus_leaves:
                in_focus += 1
        assert in_focus / total > 0.8


class TestEvaluatorBatching:
    def test_results_independent_of_batch_size(self):
        from repro.data import load_dataset, temporal_split
        from repro.eval import Evaluator

        class Deterministic:
            def __init__(self, n_items):
                self.n_items = n_items

            def score_users(self, user_ids):
                rows = np.asarray(user_ids, dtype=float)[:, None]
                cols = np.arange(self.n_items, dtype=float)[None, :]
                return np.sin(rows + 1.0) * np.cos(cols * 0.1)

        ds = load_dataset("ciao", scale=0.4)
        split = temporal_split(ds)
        evaluator = Evaluator(ds, split)
        model = Deterministic(ds.n_items)
        small = evaluator._evaluate(model, evaluator._test_items,
                                    batch_size=3)
        large = evaluator._evaluate(model, evaluator._test_items,
                                    batch_size=512)
        for metric in small.per_user:
            np.testing.assert_allclose(small.per_user[metric],
                                       large.per_user[metric])
