"""Tests for the resumable experiment DAG (spec → graph → scheduler).

Covers the PR 10 contracts: config-hash stability across processes,
cache hit/miss accounting, kill→resume bit-identity of aggregate
tables, and shim-vs-spec equality of the deprecated entrypoints.
"""

import json
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.experiments.dag import (ExperimentError, ExperimentSpec,
                                   ResultStore, SpecError, compile_spec,
                                   experiment_status, run_experiment)
from repro.robust import FaultPlan, FaultSpec, SimulatedCrash

EPOCHS = 3


def tiny_spec(**overrides):
    base = dict(kind="comparison", models=("BPRMF", "CML"),
                datasets=("ciao",), seeds=(0,), epochs=EPOCHS, scale=0.5)
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpecHash:
    def test_same_spec_same_hash(self):
        assert tiny_spec().spec_hash() == tiny_spec().spec_hash()

    def test_same_spec_same_node_keys(self):
        keys_a = list(compile_spec(tiny_spec()).topo_order())
        keys_b = list(compile_spec(tiny_spec()).topo_order())
        assert keys_a == keys_b

    def test_hash_stable_across_processes(self):
        spec = tiny_spec()
        code = ("from repro.experiments.dag import ExperimentSpec, "
                "compile_spec; "
                f"spec = ExperimentSpec.from_dict({spec.to_dict()!r}); "
                "print(spec.spec_hash()); "
                "print('\\n'.join(compile_spec(spec).topo_order()))")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True, env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=Path(__file__).resolve().parents[1])
        lines = out.stdout.split()
        assert lines[0] == spec.spec_hash()
        assert lines[1:] == list(compile_spec(spec).topo_order())

    @pytest.mark.parametrize("change", [
        {"models": ("BPRMF",)},
        {"datasets": ("cd",)},
        {"seeds": (0, 1)},
        {"epochs": EPOCHS + 1},
        {"ks": (10,)},
        {"backend": "fast"},
        {"scale": 1.0},
    ])
    def test_any_field_change_new_hash(self, change):
        base = tiny_spec()
        changed = tiny_spec(**change)
        assert base.spec_hash() != changed.spec_hash()
        base_keys = set(compile_spec(base).topo_order())
        changed_keys = set(compile_spec(changed).topo_order())
        assert base_keys != changed_keys

    def test_foreign_fields_do_not_perturb(self):
        # A comparison spec zeroes ablation-only fields at construction.
        assert (tiny_spec().spec_hash()
                == tiny_spec(variants=("w/o L_Ex",)).spec_hash())

    def test_roundtrip_through_dict(self):
        spec = tiny_spec()
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(SpecError):
            ExperimentSpec(kind="banquet")

    def test_unknown_model(self):
        with pytest.raises(SpecError):
            tiny_spec(models=("BPRMF", "NotAModel"))

    def test_unknown_dataset(self):
        with pytest.raises(SpecError):
            tiny_spec(datasets=("netflix",))

    def test_unknown_variant_is_also_keyerror(self):
        with pytest.raises(KeyError):
            ExperimentSpec(kind="ablation", datasets=("ciao",),
                           variants=("w/o magic",))


class TestCaching:
    def test_ephemeral_runs_every_node(self):
        result = run_experiment(tiny_spec())
        assert result.stats.hits == 0
        assert result.stats.executed == result.stats.total

    def test_second_run_all_cache_hits(self, tmp_path):
        spec = tiny_spec()
        first = run_experiment(spec, workdir=tmp_path)
        assert first.stats.hits == 0
        assert first.stats.retrained == 2          # two models, one seed
        second = run_experiment(spec, workdir=tmp_path)
        assert second.stats.hits == second.stats.total
        assert second.stats.executed == 0
        assert second.stats.retrained == 0
        assert "100%" in second.stats.summary()
        # Bit-identical tables from cache.
        assert second.sections == first.sections
        assert second.format() == first.format()

    def test_spec_change_partial_reuse(self, tmp_path):
        run_experiment(tiny_spec(), workdir=tmp_path)
        # Adding a model reuses the dataset + old train/eval nodes.
        grown = run_experiment(
            tiny_spec(models=("BPRMF", "CML", "NeuMF")),
            workdir=tmp_path)
        assert grown.stats.hits > 0
        assert grown.stats.retrained == 1          # only the new model

    def test_status_lifecycle(self, tmp_path):
        spec = tiny_spec()
        assert experiment_status(spec, tmp_path)["state"] == "empty"
        run_experiment(spec, workdir=tmp_path)
        status = experiment_status(spec, tmp_path)
        assert status["state"] == "complete"
        assert status["done"] == status["total"]
        wider = tiny_spec(models=("BPRMF", "CML", "NeuMF"))
        assert experiment_status(wider, tmp_path)["state"] == "partial"


class TestKillResume:
    def test_kill_then_resume_bit_identical(self, tmp_path):
        spec = tiny_spec()
        label = "train:BPRMF:ciao:s0"
        kill_epoch = zlib.crc32(b"BPRMF") % (EPOCHS - 1) + 1
        plan = FaultPlan([FaultSpec("kill", epoch=kill_epoch)])
        crashed = tmp_path / "crashed"
        with pytest.raises(ExperimentError) as err:
            run_experiment(spec, workdir=crashed,
                           fault_plans={label: plan})
        assert isinstance(err.value.cause, SimulatedCrash)
        assert err.value.label == label
        # The killed node left auto-checkpoints but no completion marker.
        store = ResultStore(crashed)
        status = experiment_status(spec, crashed)
        assert status["state"] == "partial"
        killed = [n for n in status["nodes"] if n["label"] == label]
        assert killed and not killed[0]["done"]
        # Resume (no fault plan) and compare against a clean fresh run.
        resumed = run_experiment(spec, workdir=crashed)
        assert resumed.stats.hits > 0
        train_key = killed[0]["key"]
        assert store.load(train_key)["resumed"] is True
        clean = run_experiment(spec, workdir=tmp_path / "clean")
        assert resumed.sections == clean.sections
        assert resumed.format() == clean.format()
        assert (json.dumps(resumed.sections, sort_keys=True)
                == json.dumps(clean.sections, sort_keys=True))


class TestShimEquality:
    def test_run_comparison_shim_matches_spec(self):
        from repro.experiments import run_comparison
        with pytest.deprecated_call():
            legacy = run_comparison(model_names=["BPRMF", "CML"],
                                    dataset_names=["ciao"], seeds=(0,),
                                    epochs_override=EPOCHS)
        spec = ExperimentSpec(kind="comparison",
                              models=("BPRMF", "CML"),
                              datasets=("ciao",), seeds=(0,),
                              epochs=EPOCHS)
        fresh = run_experiment(spec).comparison()
        assert set(legacy["ciao"]) == set(fresh["ciao"])
        for model in ("BPRMF", "CML"):
            for metric, (mean, std) in legacy["ciao"][model].items():
                if metric.startswith("_"):
                    continue
                f_mean, f_std = fresh["ciao"][model][metric]
                assert mean == f_mean
                assert std == f_std

    def test_run_ablation_shim_matches_spec(self):
        from repro.experiments import run_ablation
        with pytest.deprecated_call():
            legacy = run_ablation(dataset_names=["ciao"],
                                  variants=["LogiRec++", "w/o HGCN"],
                                  epochs=EPOCHS)
        spec = ExperimentSpec(kind="ablation", datasets=("ciao",),
                              variants=("LogiRec++", "w/o HGCN"),
                              epochs=EPOCHS)
        fresh = run_experiment(spec).ablation()
        assert legacy == fresh


class TestGridCompile:
    def test_grid_dedups_shared_nodes(self):
        spec = ExperimentSpec(kind="grid", datasets=("ciao",),
                              models=("BPRMF", "LogiRec++"), epochs=2)
        graph = compile_spec(spec)
        keys = list(graph.topo_order())
        assert len(keys) == len(set(keys))
        dataset_nodes = [k for k in keys
                         if graph.nodes[k].kind == "dataset"
                         and graph.nodes[k].payload.get("fraction",
                                                        0.0) == 0.0]
        # All six sections share one clean ciao dataset node.
        assert len(dataset_nodes) == 1
        assert set(graph.sections) == {"comparison", "ablation", "sweep",
                                       "lambda", "robustness", "cases"}

    def test_topo_order_deps_first(self):
        graph = compile_spec(tiny_spec())
        seen = set()
        for key in graph.topo_order():
            assert all(dep in seen for dep in graph.nodes[key].deps)
            seen.add(key)


class TestCli:
    def run_cli(self, *argv):
        return cli_main(list(argv))

    def test_exp_run_status_resume_clean(self, tmp_path, capsys):
        workdir = str(tmp_path / "exp")
        flags = ["--kind", "comparison", "--models", "BPRMF",
                 "--datasets", "ciao", "--seeds", "0",
                 "--epochs", str(EPOCHS), "--scale", "0.5",
                 "--workdir", workdir]
        assert self.run_cli("exp", "run", *flags, "--no-tables") == 0
        assert "cached (0%)" in capsys.readouterr().out
        assert self.run_cli("exp", "status", *flags) == 0
        capsys.readouterr()
        # Resume with no --spec picks up the recorded spec: all cached.
        assert self.run_cli("exp", "resume", "--workdir", workdir,
                            "--no-tables") == 0
        assert "cached (100%)" in capsys.readouterr().out
        assert self.run_cli("exp", "clean", "--workdir", workdir) == 0
        capsys.readouterr()
        assert self.run_cli("exp", "status", *flags) == 2

    def test_exp_status_partial_exit_code(self, tmp_path, capsys):
        workdir = str(tmp_path / "exp")
        flags = ["--kind", "comparison", "--models", "BPRMF",
                 "--datasets", "ciao", "--seeds", "0",
                 "--epochs", str(EPOCHS), "--scale", "0.5",
                 "--workdir", workdir]
        assert self.run_cli("exp", "run", *flags, "--no-tables") == 0
        capsys.readouterr()
        wider = ["--kind", "comparison", "--models", "BPRMF", "CML",
                 "--datasets", "ciao", "--seeds", "0",
                 "--epochs", str(EPOCHS), "--scale", "0.5",
                 "--workdir", workdir]
        assert self.run_cli("exp", "status", *wider) == 1

    def test_exp_resume_nothing_recorded(self, tmp_path, capsys):
        rc = self.run_cli("exp", "resume", "--workdir",
                          str(tmp_path / "nothing"))
        capsys.readouterr()
        assert rc == 2

    def test_compare_wrapper_runs(self, tmp_path, capsys):
        rc = self.run_cli("compare", "--models", "BPRMF", "--datasets",
                          "ciao", "--epochs", str(EPOCHS))
        out = capsys.readouterr().out
        assert rc == 0
        assert "BPRMF" in out
        assert "recall@10" in out
