"""Tensor-backend tests: registry, fused-kernel VJPs, fast-vs-reference
model equivalence, arena behaviour, and cross-backend checkpoints.

Tolerance policy (see DESIGN.md §10): fused kernels are compared to the
composed reference ops *in float64* to ~1e-9 (same math, different
association order); whole-model fast (float32) runs are compared to
reference (float64) runs with rtol=1e-4 on per-epoch losses and a
0.5-percentage-point band on final ranking metrics.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.eval import Evaluator
from repro.manifolds import Lorentz, PoincareBall
from repro.models import (AGCN, AMF, BPRMF, CML, CMLF, GDCF, HGCF, HRCF,
                          HyperML, LightGCN, NeuMF, SML, TrainConfig,
                          TransC)
from repro.serve import load_checkpoint, save_checkpoint
from repro.tensor import (Tensor, available_backends, get_backend,
                          no_grad, set_backend, use_backend)
from repro.tensor import backend as be
from repro.tensor.sparse import _SpmmPlan


@pytest.fixture(autouse=True)
def _reference_backend():
    """Every test starts and ends on the reference backend."""
    set_backend("reference")
    yield
    set_backend("reference")


@pytest.fixture(scope="module")
def setup():
    ds = generate_dataset(SyntheticConfig(n_users=40, n_items=60,
                                          depth=3, branching=3,
                                          mean_interactions=10.0, seed=4))
    return ds, temporal_split(ds)


# ----------------------------------------------------------------------
# Backend selection & registry
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_available_and_default(self):
        assert available_backends() == ("reference", "fast")
        b = get_backend()
        assert b.name == "reference"
        assert b.dtype == np.float64
        assert not b.fused and b.arena is None

    def test_set_backend_fast(self):
        b = set_backend("fast")
        assert b.name == "fast"
        assert b.dtype == np.float32
        assert b.fused and b.arena is not None
        assert b.threads >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("gpu")

    def test_use_backend_restores(self):
        with use_backend("fast"):
            assert get_backend().name == "fast"
        assert get_backend().name == "reference"

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        monkeypatch.setattr(be, "_ACTIVE", None)
        assert get_backend().name == "fast"

    def test_compute_dtype_drives_tensor_creation(self):
        with use_backend("fast"):
            assert Tensor(np.zeros(3)).data.dtype == np.float32
            # Explicit dtype (Parameter masters) wins over the backend.
            assert Tensor(np.zeros(3),
                          dtype=np.float64).data.dtype == np.float64
        assert Tensor(np.zeros(3)).data.dtype == np.float64

    def test_registry_has_all_kernels_in_both_variants(self):
        kernels = be.registered_kernels()
        expected = {"lorentz.sqdist", "lorentz.distance",
                    "lorentz.expmap0", "lorentz.logmap0",
                    "poincare.expmap0", "poincare.distance",
                    "poincare.mobius_add", "maps.poincare_to_lorentz",
                    "losses.lorentz_triplet"}
        assert expected <= set(kernels)
        for name in expected:
            assert kernels[name] == ("fast", "reference")

    def test_kernel_dispatch_follows_backend(self):
        ref = be.kernel("lorentz.sqdist")
        with use_backend("fast"):
            fast = be.kernel("lorentz.sqdist")
        assert ref is be._KERNELS["lorentz.sqdist"]["reference"]
        assert fast is be._KERNELS["lorentz.sqdist"]["fast"]

    def test_cli_exposes_backend_flag(self):
        from repro.cli import build_parser
        parser = build_parser()
        checked = 0
        for argv in (["train", "--backend", "fast"],
                     ["compare", "--backend", "fast"]):
            try:
                parsed = parser.parse_args(argv)
            except SystemExit:
                continue  # subcommand has other required args
            assert parsed.backend == "fast"
            checked += 1
        assert checked >= 1


# ----------------------------------------------------------------------
# Fused kernels vs composed reference ops, in float64
# ----------------------------------------------------------------------
def _t(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True,
                  dtype=np.float64)


def _pair(name, fast_args, ref_args, atol=1e-9):
    """Run fast and reference variants of ``name`` forward+backward on
    identical float64 inputs and compare outputs and leaf gradients."""
    entry = be._KERNELS[name]
    out_f = entry["fast"](*fast_args)
    out_r = entry["reference"](*ref_args)
    np.testing.assert_allclose(out_f.data, out_r.data, atol=atol)
    seed = np.random.default_rng(7).standard_normal(out_f.data.shape)
    out_f.backward(seed.copy())
    out_r.backward(seed.copy())
    for tf, tr in zip(fast_args, ref_args):
        if isinstance(tf, Tensor) and tf.requires_grad:
            np.testing.assert_allclose(tf.grad, tr.grad, atol=atol)


def _lorentz_points(n, d, seed):
    return Lorentz().random((n, d + 1), np.random.default_rng(seed),
                            scale=0.7)


def _ball_points(n, d, seed):
    return PoincareBall().random((n, d), np.random.default_rng(seed),
                                 scale=0.4)


class TestFusedKernelVJPs:
    N, D = 64, 7

    def test_lorentz_sqdist(self):
        x, y = _lorentz_points(self.N, self.D, 0), \
            _lorentz_points(self.N, self.D, 1)
        _pair("lorentz.sqdist", (_t(x), _t(y)), (_t(x), _t(y)))

    def test_lorentz_distance(self):
        x, y = _lorentz_points(self.N, self.D, 2), \
            _lorentz_points(self.N, self.D, 3)
        _pair("lorentz.distance", (_t(x), _t(y)), (_t(x), _t(y)))

    def test_lorentz_expmap0(self):
        rng = np.random.default_rng(4)
        v = np.zeros((self.N, self.D + 1))
        v[:, 1:] = rng.normal(0.0, 1.0, (self.N, self.D))
        v[:5, 1:] *= 50.0      # exercise the tangent-norm clamp branch
        v[5] = 0.0             # and the zero-norm safe branch
        _pair("lorentz.expmap0", (_t(v),), (_t(v),))

    def test_lorentz_logmap0(self):
        x = _lorentz_points(self.N, self.D, 5)
        _pair("lorentz.logmap0", (_t(x),), (_t(x),))

    def test_poincare_expmap0(self):
        v = np.random.default_rng(6).normal(0.0, 1.0, (self.N, self.D))
        v[0] = 0.0
        _pair("poincare.expmap0", (_t(v),), (_t(v),))

    def test_poincare_distance(self):
        x, y = _ball_points(self.N, self.D, 7), \
            _ball_points(self.N, self.D, 8)
        _pair("poincare.distance", (_t(x), _t(y)), (_t(x), _t(y)))

    def test_poincare_mobius_add(self):
        x, y = _ball_points(self.N, self.D, 9), \
            _ball_points(self.N, self.D, 10)
        _pair("poincare.mobius_add", (_t(x), _t(y)), (_t(x), _t(y)))

    def test_poincare_to_lorentz(self):
        x = _ball_points(self.N, self.D, 11)
        _pair("maps.poincare_to_lorentz", (_t(x),), (_t(x),))

    def test_lorentz_triplet_loss(self):
        u = _lorentz_points(self.N, self.D, 12)
        p = _lorentz_points(self.N, self.D, 13)
        q = _lorentz_points(self.N, self.D, 14)
        for weights in (None,
                        np.random.default_rng(15).uniform(
                            0.5, 1.5, self.N)):
            entry = be._KERNELS["losses.lorentz_triplet"]
            tf = [_t(u), _t(p), _t(q)]
            tr = [_t(u), _t(p), _t(q)]
            out_f = entry["fast"](*tf, 0.5, weights)
            out_r = entry["reference"](*tr, 0.5, weights)
            np.testing.assert_allclose(out_f.data, out_r.data, atol=1e-9)
            out_f.backward()
            out_r.backward()
            for a, b in zip(tf, tr):
                np.testing.assert_allclose(a.grad, b.grad, atol=1e-9)


# ----------------------------------------------------------------------
# Fast-vs-reference equivalence over the full model registry
# ----------------------------------------------------------------------
TAG_MODELS = {"CMLF": CMLF, "AMF": AMF, "TransC": TransC, "AGCN": AGCN}
PLAIN_MODELS = {"BPRMF": BPRMF, "NeuMF": NeuMF, "CML": CML, "SML": SML,
                "HyperML": HyperML, "LightGCN": LightGCN, "HGCF": HGCF,
                "GDCF": GDCF, "HRCF": HRCF}
ALL_MODELS = (list(TAG_MODELS) + list(PLAIN_MODELS)
              + ["LogiRec", "LogiRec++"])


def _build(name, ds):
    lr = {"CML": 0.3, "SML": 0.3, "CMLF": 0.3, "TransC": 0.3}.get(
        name, 0.01)
    if name in ("LogiRec", "LogiRec++"):
        cls = LogiRec if name == "LogiRec" else LogiRecPP
        cfg = LogiRecConfig(dim=8, epochs=5, batch_size=1024, lr=0.01,
                            lam=1.0, margin=0.5, n_negatives=1,
                            n_layers=2, seed=0)
        return cls(ds.n_users, ds.n_items, ds.n_tags, cfg)
    cfg = TrainConfig(dim=8, epochs=5, batch_size=1024, lr=lr,
                      margin=0.5, n_negatives=1, seed=0)
    if name in TAG_MODELS:
        return TAG_MODELS[name](ds.n_users, ds.n_items, ds.n_tags, cfg)
    return PLAIN_MODELS[name](ds.n_users, ds.n_items, cfg)


def _fit_and_eval(backend, name, ds, split):
    with use_backend(backend):
        model = _build(name, ds)
        model.fit(ds, split)
        metrics = Evaluator(ds, split, ks=(10,)).evaluate_test(model).means
        return np.asarray(model.loss_history), metrics


class TestModelEquivalence:
    # Final-metric agreement band, in percentage points (Evaluator.means
    # is percent-scaled).  float32 forward noise can flip the rank of
    # near-tied items, so metrics match closely but not exactly.
    METRIC_BAND_PP = 0.5

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_losses_and_metrics_agree(self, setup, name):
        ds, split = setup
        ref_losses, ref_metrics = _fit_and_eval("reference", name, ds,
                                                split)
        fast_losses, fast_metrics = _fit_and_eval("fast", name, ds,
                                                  split)
        assert len(ref_losses) == len(fast_losses) == 5
        np.testing.assert_allclose(fast_losses, ref_losses, rtol=1e-4)
        assert ref_metrics.keys() == fast_metrics.keys()
        for key in ref_metrics:
            assert abs(ref_metrics[key] - fast_metrics[key]) <= \
                self.METRIC_BAND_PP, (
                    f"{name} {key}: reference={ref_metrics[key]:.3f} "
                    f"fast={fast_metrics[key]:.3f}")


class TestCrossBackendCheckpoints:
    @pytest.mark.parametrize("train_backend,load_backend",
                             [("fast", "reference"), ("reference", "fast")])
    def test_checkpoint_round_trip(self, setup, tmp_path, train_backend,
                                   load_backend):
        ds, split = setup
        with use_backend(train_backend):
            model = _build("LogiRec++", ds)
            model.fit(ds, split)
            save_checkpoint(model, tmp_path / "ckpt", dataset=ds)
            scores_trained = model.score_users(np.arange(8))
        with use_backend(load_backend):
            loaded = load_checkpoint(tmp_path / "ckpt", dataset=ds,
                                     split=split)
        # Parameter masters are float64 under both backends, so the
        # state survives the backend switch bit-for-bit...
        for a, b in zip(model.parameters(), loaded.parameters()):
            assert a.data.dtype == b.data.dtype == np.float64
            np.testing.assert_array_equal(a.data, b.data)
        # ...and scoring the loaded model *under the training backend*
        # reproduces the original scores exactly.
        with use_backend(train_backend):
            scores_loaded = loaded.score_users(np.arange(8))
        np.testing.assert_array_equal(scores_trained, scores_loaded)


# ----------------------------------------------------------------------
# Arena + shared primitives
# ----------------------------------------------------------------------
class TestArena:
    def test_buffers_reused_across_steps(self):
        arena = be.Arena()
        a = arena.empty((4, 3), np.float32)
        b = arena.empty((4, 3), np.float32)
        assert a is not b
        arena.new_step()
        assert arena.empty((4, 3), np.float32) is a
        assert arena.empty((4, 3), np.float32) is b
        stats = arena.stats()
        assert stats["buffers"] == 2
        assert stats["hits"] == 2 and stats["misses"] == 2

    def test_scratch_is_persistent(self):
        arena = be.Arena()
        s = arena.scratch(("k",), (5,), np.float64)
        assert arena.scratch(("k",), (5,), np.float64) is s
        assert arena.scratch(("k",), (6,), np.float64) is not s

    def test_training_step_reuses_arena_buffers(self, setup):
        ds, split = setup
        with use_backend("fast"):
            model = _build("HGCF", ds)
            model.fit(ds, split)
            stats = get_backend().arena.stats()
        # 5 epochs × several batches: after the first step warms the
        # pools, every later step should hit.
        assert stats["hits"] > stats["misses"]

    def test_no_grad_paths_bypass_arena(self):
        with use_backend("fast"):
            x = Tensor(_lorentz_points(8, 4, 0))
            with no_grad():
                out = Lorentz.logmap0(x)
            arena = get_backend().arena
            pooled = [buf for slot in arena._pools.values()
                      for buf in slot[1]]
            assert all(out.data is not buf for buf in pooled)

    def test_fused_kernels_count_invocations(self, setup):
        ds, split = setup
        run = obs.start_run(config={})
        try:
            with use_backend("fast"):
                _build("HGCF", ds).fit(ds, split)
            snap = run.registry.snapshot()
        finally:
            obs.finish_run()
        fused = {k: v for k, v in snap["counters"].items()
                 if k.startswith("backend/fused/")}
        assert fused, "fast backend ran without touching a fused kernel"
        assert snap["gauges"]["backend/arena/hit_rate"] > 0.0

    def test_span_attribution_survives_fast_backend(self, setup):
        ds, split = setup
        run = obs.start_run(config={})
        try:
            with use_backend("fast"):
                _build("HGCF", ds).fit(ds, split)
            spans = [s.name for s in run.tracer.finished]
            fit_span = next(s for s in run.tracer.finished
                            if s.name == "fit")
        finally:
            obs.finish_run()
        for phase in ("forward", "backward", "step", "sample"):
            assert phase in spans
        assert fit_span.meta["backend"] == "fast"


class TestScatterAdd:
    def test_fast_scatter_matches_reference(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 50, 300)
        grad = rng.standard_normal((300, 9)).astype(np.float32)
        ref = be.scatter_add_rows(grad, idx, (50, 9))
        with use_backend("fast"):
            fast = be.scatter_add_rows(grad, idx, (50, 9))
        assert fast.dtype == grad.dtype
        np.testing.assert_allclose(fast, ref, atol=1e-4)

    def test_gather_backward_uses_it(self):
        rng = np.random.default_rng(1)
        with use_backend("fast"):
            from repro.tensor import gather_rows
            table = Tensor(rng.standard_normal((20, 4)),
                           requires_grad=True, dtype=np.float64)
            idx = np.array([3, 3, 7, 0])
            out = gather_rows(table, idx)
            out.backward(np.ones((4, 4)))
        expected = np.zeros((20, 4))
        np.add.at(expected, idx, np.ones((4, 4)))
        np.testing.assert_allclose(table.grad, expected, atol=1e-12)


class TestThreadedSpmm:
    def test_row_slab_plan_matches_single_thread(self):
        import scipy.sparse as sp
        rng = np.random.default_rng(0)
        n = 400
        mat = sp.random(n, n, density=0.2, random_state=0,
                        format="csr").astype(np.float64)
        x = rng.standard_normal((n, 16))
        plan = _SpmmPlan(mat, np.dtype(np.float64), threads=3)
        # Force the slab path regardless of the size thresholds.
        assert plan.blocks is None or len(plan.blocks) >= 1
        plan_big = _SpmmPlan(mat, np.dtype(np.float64), threads=3)
        if plan_big.blocks is not None:
            out = plan_big._apply(plan_big.csr, plan_big.blocks, x)
            np.testing.assert_allclose(out, mat @ x, atol=1e-12)
        np.testing.assert_allclose(plan.forward(x), mat @ x, atol=1e-12)
        np.testing.assert_allclose(plan.backward(x), mat.T @ x,
                                   atol=1e-12)

    def test_threads_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_THREADS", "3")
        assert be._default_threads() == 3

    def test_plan_cached_on_matrix(self):
        import scipy.sparse as sp
        mat = sp.random(64, 64, density=0.1, random_state=1,
                        format="csr")
        x = Tensor(np.random.default_rng(2).standard_normal((64, 8)))
        from repro.tensor import sparse_matmul
        with use_backend("fast"):
            sparse_matmul(mat, x)
            plan = getattr(mat, "_repro_spmm_plan")
            sparse_matmul(mat, x)
            assert getattr(mat, "_repro_spmm_plan") is plan


# ----------------------------------------------------------------------
# Mixed-precision invariants
# ----------------------------------------------------------------------
class TestMixedPrecision:
    def test_parameters_stay_float64_under_fast(self, setup):
        ds, _ = setup
        with use_backend("fast"):
            model = _build("HGCF", ds)
            for p in model.parameters():
                assert p.data.dtype == np.float64

    def test_leaf_grads_accumulate_in_float64(self):
        from repro.optim.parameter import Parameter
        with use_backend("fast"):
            p = Parameter(np.ones((3, 2)))
            out = (Tensor(np.full((3, 2), 2.0)) * p).sum()
            assert out.data.dtype == np.float32  # compute dtype
            out.backward()
            assert p.grad.dtype == np.float64    # master dtype
            np.testing.assert_allclose(p.grad, 2.0, rtol=1e-6)

    def test_triplet_loss_accumulates_in_float64(self):
        u = _t(_lorentz_points(16, 5, 0))
        p = _t(_lorentz_points(16, 5, 1))
        q = _t(_lorentz_points(16, 5, 2))
        with use_backend("fast"):
            loss = be._KERNELS["losses.lorentz_triplet"]["fast"](
                u, p, q, 0.5, None)
        assert loss.data.dtype == np.float64

    def test_ranking_scores_are_float64(self):
        from repro.manifolds.lorentz import lorentz_ranking_scores
        u = _lorentz_points(4, 5, 0).astype(np.float32)
        v = _lorentz_points(6, 5, 1).astype(np.float32)
        assert lorentz_ranking_scores(u, v).dtype == np.float64
