"""The ServableModel contract, checked registry-wide.

:class:`repro.models.ServableModel` is the formal API between the model
zoo and everything downstream of training (checkpoints, the retrieval
index, the robustness machinery).  These tests pin both halves of the
contract:

* **structure** — every registry model subclasses the ABC and implements
  all four hooks (no abstract leftovers), and the ABC actually rejects
  non-conforming classes at instantiation time;
* **semantics** — ``state_dict`` round-trips bit-exactly through
  ``load_state_dict`` and is strict about unknown/missing/mis-shaped
  keys, ``export_extra_init`` is JSON-serializable scalars, and
  ``export_scoring`` names a kind the retrieval index can build.
"""

import json

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.experiments.runner import ALL_MODEL_NAMES, build_model
from repro.models import Recommender, ServableModel
from repro.serve.index import _KIND_SLOTS

HOOKS = ("state_dict", "load_state_dict", "export_extra_init",
         "export_scoring")


@pytest.fixture(scope="module")
def setup():
    ds = generate_dataset(SyntheticConfig(n_users=30, n_items=45,
                                          depth=3, branching=3,
                                          mean_interactions=8.0, seed=11))
    return ds, temporal_split(ds)


class TestContractStructure:
    def test_abc_is_not_instantiable(self):
        with pytest.raises(TypeError):
            ServableModel()

    def test_partial_implementation_rejected(self):
        class Halfway(ServableModel):
            def state_dict(self):
                return {}

            def load_state_dict(self, arrays):
                pass

        with pytest.raises(TypeError):
            Halfway()

    def test_recommender_is_servable(self):
        assert issubclass(Recommender, ServableModel)

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_registry_model_implements_every_hook(self, setup, name):
        ds, _ = setup
        model = build_model(name, ds, seed=0)
        assert isinstance(model, ServableModel)
        for hook in HOOKS:
            impl = getattr(type(model), hook)
            assert not getattr(impl, "__isabstractmethod__", False), (
                f"{name}.{hook} is still abstract")


class TestContractSemantics:
    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_state_dict_round_trip_and_strictness(self, setup, name):
        ds, split = setup
        model = build_model(name, ds, seed=0)
        model.config.epochs = 1
        model.fit(ds, split)
        snapshot = model.state_dict()
        assert snapshot, f"{name} exports an empty state_dict"
        for key, value in snapshot.items():
            assert isinstance(value, np.ndarray)
            position, _, pname = key.partition(":")
            assert position.isdigit() and pname, (
                f"{name} state key {key!r} is not '<position>:<name>'")

        twin = build_model(name, ds, seed=1)
        twin.load_state_dict(snapshot)
        users = np.arange(ds.n_users)
        twin.prepare(ds, split)
        assert np.array_equal(model.score_users(users),
                              twin.score_users(users))

        bad = dict(snapshot)
        bad["999:bogus"] = np.zeros(3)
        with pytest.raises(ValueError):
            build_model(name, ds, seed=0).load_state_dict(bad)
        first = next(iter(snapshot))
        short = dict(snapshot)
        short[first] = snapshot[first].ravel()[:1]
        with pytest.raises(ValueError):
            build_model(name, ds, seed=0).load_state_dict(short)

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_export_extra_init_is_json_scalars(self, setup, name):
        ds, _ = setup
        extra = build_model(name, ds, seed=0).export_extra_init()
        assert isinstance(extra, dict)
        json.dumps(extra)          # must survive checkpoint.json
        for key, value in extra.items():
            assert isinstance(value, (int, float, str, bool)), (
                f"{name}.export_extra_init[{key!r}] is {type(value)}")

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_export_scoring_names_buildable_kind(self, setup, name):
        ds, split = setup
        model = build_model(name, ds, seed=0)
        model.config.epochs = 1
        model.fit(ds, split)
        spec = model.export_scoring()
        kind = spec.get("kind")
        assert kind in _KIND_SLOTS, (
            f"{name} exports unknown scoring kind {kind!r}")
        arrays = {key for key, value in spec.items()
                  if key != "kind"
                  and not isinstance(value, (int, float, bool))}
        assert set(_KIND_SLOTS[kind]) <= arrays, (
            f"{name} kind {kind!r} missing slots "
            f"{set(_KIND_SLOTS[kind]) - arrays}")
