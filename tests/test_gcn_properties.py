"""Property-based tests of the graph convolution's structural invariants."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hgcn import euclidean_gcn, hyperbolic_gcn
from repro.manifolds import Lorentz
from repro.tensor import Tensor


def _random_graph(n_users, n_items, seed):
    rng = np.random.default_rng(seed)
    mat = sp.random(n_users, n_items, density=0.5,
                    random_state=seed, format="csr")
    mat.data[:] = 1.0
    deg_u = np.maximum(np.asarray(mat.sum(axis=1)).ravel(), 1)
    deg_i = np.maximum(np.asarray(mat.sum(axis=0)).ravel(), 1)
    a_ui = (sp.diags(1.0 / deg_u) @ mat).tocsr()
    a_iu = (sp.diags(1.0 / deg_i) @ mat.T).tocsr()
    users = Lorentz().random((n_users, 4), rng)
    items = Lorentz().random((n_items, 4), rng)
    return users, items, a_ui, a_iu, mat


class TestPermutationEquivariance:
    @given(st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_item_permutation_equivariance(self, seed):
        """Permuting item ids permutes outputs identically: the GCN has
        no positional dependence on node ordering."""
        users, items, a_ui, a_iu, mat = _random_graph(5, 7, seed)
        perm = np.random.default_rng(seed).permutation(7)
        out_u, out_v = hyperbolic_gcn(Tensor(users), Tensor(items),
                                      a_ui, a_iu, 2)
        # Permute items and adjacency columns/rows consistently.
        mat_p = mat[:, perm]
        deg_u = np.maximum(np.asarray(mat_p.sum(axis=1)).ravel(), 1)
        deg_i = np.maximum(np.asarray(mat_p.sum(axis=0)).ravel(), 1)
        a_ui_p = (sp.diags(1.0 / deg_u) @ mat_p).tocsr()
        a_iu_p = (sp.diags(1.0 / deg_i) @ mat_p.T).tocsr()
        out_u_p, out_v_p = hyperbolic_gcn(
            Tensor(users), Tensor(items[perm]), a_ui_p, a_iu_p, 2)
        np.testing.assert_allclose(out_u_p.data, out_u.data, atol=1e-9)
        np.testing.assert_allclose(out_v_p.data, out_v.data[perm],
                                   atol=1e-9)

    @given(st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_outputs_always_on_manifold(self, layers):
        users, items, a_ui, a_iu, _ = _random_graph(6, 8, layers)
        out_u, out_v = hyperbolic_gcn(Tensor(users), Tensor(items),
                                      a_ui, a_iu, layers)
        np.testing.assert_allclose(
            Lorentz.inner_np(out_u.data, out_u.data), -1.0, atol=1e-8)
        np.testing.assert_allclose(
            Lorentz.inner_np(out_v.data, out_v.data), -1.0, atol=1e-8)

    def test_euclidean_gcn_linearity(self):
        """The Euclidean GCN is linear: f(x + y) = f(x) + f(y)."""
        rng = np.random.default_rng(0)
        _, _, a_ui, a_iu, _ = _random_graph(5, 7, 0)
        u1, v1 = rng.normal(size=(5, 3)), rng.normal(size=(7, 3))
        u2, v2 = rng.normal(size=(5, 3)), rng.normal(size=(7, 3))
        fu1, fv1 = euclidean_gcn(Tensor(u1), Tensor(v1), a_ui, a_iu, 2)
        fu2, fv2 = euclidean_gcn(Tensor(u2), Tensor(v2), a_ui, a_iu, 2)
        fu12, fv12 = euclidean_gcn(Tensor(u1 + u2), Tensor(v1 + v2),
                                   a_ui, a_iu, 2)
        np.testing.assert_allclose(fu12.data, fu1.data + fu2.data,
                                   atol=1e-9)
        np.testing.assert_allclose(fv12.data, fv1.data + fv2.data,
                                   atol=1e-9)

    def test_deeper_propagation_smooths(self):
        """Variance of item embeddings shrinks with depth (mean
        aggregation contracts toward neighbourhood averages)."""
        users, items, a_ui, a_iu, _ = _random_graph(10, 14, 3)
        spreads = []
        for layers in (1, 4):
            _, out_v = euclidean_gcn(
                Tensor(users[:, 1:]), Tensor(items[:, 1:]),
                a_ui, a_iu, layers)
            centred = out_v.data - out_v.data.mean(axis=0)
            # Normalize scale before comparing spread.
            centred /= max(np.abs(out_v.data).max(), 1e-12)
            spreads.append(np.linalg.norm(centred))
        assert spreads[1] <= spreads[0] * 1.5
