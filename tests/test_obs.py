"""Tests for the ``repro.obs`` telemetry subsystem.

Covers the ISSUE-2 acceptance surface: span nesting/timing, metric
semantics (counter / gauge / reservoir histogram), the JSONL sink +
manifest round trip, the disabled-mode no-op overhead budget, NaN/inf
gradient detection on a crafted divergent graph, and the instrumentation
threaded through the sampler, manifolds, training loop, and CLI.
"""

from __future__ import annotations

import json
import logging
import math
import time

import numpy as np
import pytest

from repro import obs
from repro.data import load_dataset, temporal_split
from repro.data.sampling import TripletSampler
from repro.eval import Evaluator
from repro.manifolds import Lorentz, PoincareBall
from repro.models.base import Recommender, TrainConfig
from repro.optim.parameter import Parameter
from repro.optim.sgd import SGD
from repro.tensor import Tensor


@pytest.fixture(autouse=True)
def _obs_reset():
    """Every test starts and ends with telemetry off."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def tiny():
    dataset = load_dataset("cd")
    return dataset, temporal_split(dataset)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counter_and_gauge_semantics():
    reg = obs.MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    reg.gauge("g").set(2.5)
    reg.gauge("g").set(7.0)          # last write wins
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 7.0


def test_registry_rejects_type_confusion():
    reg = obs.MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_histogram_moments_exact_and_percentiles_close():
    reg = obs.MetricsRegistry()
    hist = reg.histogram("h", reservoir_size=256)
    values = list(range(1, 2001))          # 1..2000, more than the reservoir
    for v in values:
        hist.observe(v)
    summary = hist.summary()
    assert summary["count"] == 2000        # moments are exact
    assert summary["min"] == 1 and summary["max"] == 2000
    assert summary["total"] == sum(values)
    assert abs(summary["mean"] - 1000.5) < 1e-9
    # Percentiles come from the reservoir: statistically close, not exact.
    assert abs(summary["p50"] - 1000) < 200
    assert abs(summary["p90"] - 1800) < 200
    assert len(hist._samples) == 256       # bounded memory


def test_histogram_reservoir_is_deterministic():
    def build():
        h = obs.Histogram("same-name", reservoir_size=64)
        for v in range(1000):
            h.observe(float(v))
        return h.percentile(50.0)
    assert build() == build()


def test_empty_histogram_summary():
    h = obs.Histogram("e")
    assert h.summary() == {"count": 0}
    assert math.isnan(h.percentile(50.0))


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_span_nesting_and_timing():
    tracer = obs.Tracer()
    with tracer.span("outer", kind="test") as outer:
        with tracer.span("inner") as inner:
            time.sleep(0.01)
        tracer.record("agg", 0.5, count=3)
        time.sleep(0.002)
    assert [s.name for s in tracer.finished] == ["inner", "agg", "outer"]
    assert inner.parent_id == outer.span_id
    agg = tracer.finished[1]
    assert agg.parent_id == outer.span_id
    assert agg.count == 3 and agg.duration_s == 0.5
    assert inner.duration_s >= 0.009
    assert outer.duration_s >= inner.duration_s
    assert outer.meta == {"kind": "test"}
    assert tracer.current is None


def test_span_annotate_and_event_shape():
    tracer = obs.Tracer()
    with tracer.span("s") as span:
        span.annotate(loss=1.25)
    event = tracer.finished[0].to_event()
    assert event["type"] == "span" and event["name"] == "s"
    assert event["meta"] == {"loss": 1.25}
    json.dumps(event)  # serializable as-is


def test_trace_is_null_span_when_disabled():
    assert not obs.enabled()
    span = obs.trace("anything", meta=1)
    assert span is obs.NULL_SPAN
    with span as inner:
        inner.annotate(x=2)  # must be accepted and ignored
    # the no-op helpers must not raise either
    obs.count("nope")
    obs.gauge_set("nope", 1.0)
    obs.observe("nope", 1.0)
    obs.event("nope")
    obs.record_span("nope", 0.1)


# ----------------------------------------------------------------------
# Run lifecycle: JSONL sink + manifest round trip
# ----------------------------------------------------------------------
def test_jsonl_sink_and_manifest_round_trip(tmp_path):
    run = obs.start_run(run_dir=tmp_path, config={"model": "M", "seed": 7})
    assert obs.enabled()
    with obs.trace("fit", model="M"):
        with obs.trace("epoch", epoch=0):
            obs.record_span("backward", 0.004, count=2)
        obs.count("sampler/resampled", 3)
        obs.observe("train/loss_batch", 0.5)
        obs.gauge_set("train/param_norm", 2.0)
        obs.event("checkpoint", epoch=0)
    run_dir = run.dir
    manifest = obs.finish_run(final_metrics={"recall@10": 3.25},
                              dataset_stats={"n_users": 11})
    assert not obs.enabled()

    events = obs.read_events(run_dir)
    assert [e["type"] for e in events].count("span") == 3
    names = [e["name"] for e in events]
    assert names[0] == "run_start" and names[-1] == "run_end"
    assert "checkpoint" in names

    on_disk = obs.read_manifest(run_dir)
    assert on_disk == json.loads(json.dumps(manifest))  # what we returned
    assert on_disk["run_id"] == run.run_id
    assert on_disk["config"] == {"model": "M", "seed": 7}
    assert on_disk["seed"] == 7
    assert "git_sha" in on_disk
    assert on_disk["dataset_stats"] == {"n_users": 11}
    assert on_disk["final_metrics"] == {"recall@10": 3.25}
    assert on_disk["metrics"]["counters"]["sampler/resampled"] == 3
    assert on_disk["metrics"]["histograms"]["train/loss_batch"]["count"] == 1

    # Aggregation + rendering over the serialized events.
    roots = obs.aggregate_spans(events)
    assert [r.name for r in roots] == ["fit"]
    assert [c.name for c in roots[0].children] == ["epoch"]
    text = obs.summarize(run_dir)
    assert "fit" in text and "backward" in text and "recall@10" in text


def test_start_run_finishes_previous_run(tmp_path):
    first = obs.start_run(run_dir=tmp_path)
    obs.start_run(run_dir=tmp_path)
    assert first.finished
    assert obs.current_run() is not first


def test_in_memory_run_collects_events():
    run = obs.start_run(config={})
    obs.event("ping", x=1)
    assert any(e["name"] == "ping" for e in run.events)
    obs.finish_run()


# ----------------------------------------------------------------------
# Disabled-mode overhead budget
# ----------------------------------------------------------------------
def test_disabled_mode_is_within_overhead_budget(tiny):
    """The < 2% budget, asserted two ways.

    (1) Price the disabled hooks directly: one hook call must stay under
    2 microseconds (measured ~60 ns; the bound absorbs CI noise).
    (2) Bound the fraction of a real sampler-epoch drain spent in hooks:
    guard-call count x per-call price must be < 2% of the drain time.
    """
    assert not obs.enabled()
    calls = 50_000
    t0 = time.perf_counter()
    for _ in range(calls):
        obs.count("noop/counter")
    count_ns = (time.perf_counter() - t0) / calls * 1e9
    t0 = time.perf_counter()
    for _ in range(calls):
        obs.trace("noop/span")
    trace_ns = (time.perf_counter() - t0) / calls * 1e9
    assert count_ns < 2000, f"disabled obs.count costs {count_ns:.0f} ns"
    assert trace_ns < 2000, f"disabled obs.trace costs {trace_ns:.0f} ns"

    dataset, split = tiny
    sampler = TripletSampler(dataset, split.train,
                             rng=np.random.default_rng(0))
    batch_size = 1024

    def drain():
        n = 0
        for _ in sampler.epoch(batch_size):
            n += 1
        return n

    n_batches = drain()
    drain_s = math.inf
    for _ in range(5):
        t0 = time.perf_counter()
        drain()
        drain_s = min(drain_s, time.perf_counter() - t0)
    # One enabled() guard per sample_negatives call (= per batch).
    hook_s = n_batches * max(count_ns, trace_ns) * 1e-9
    assert hook_s < 0.02 * drain_s, (
        f"disabled hooks are {100 * hook_s / drain_s:.2f}% of the "
        f"sampling hot path (budget 2%)")


# ----------------------------------------------------------------------
# NaN/inf gradient detection (debug flag)
# ----------------------------------------------------------------------
def test_nan_gradient_detection_fires_on_divergent_graph():
    run = obs.start_run(config={}, nan_checks=True)
    assert obs.nan_checks_enabled()
    x = Tensor(np.array([0.0, 1.0]), requires_grad=True, name="x")
    with np.errstate(divide="ignore"):
        loss = (1.0 / x).sum()      # d/dx (1/x) = -1/x^2 -> -inf at x=0
        loss.backward()
    assert not np.isfinite(x.grad).all()
    snap = run.registry.snapshot()
    assert snap["counters"]["autograd/nonfinite_grads"] >= 1
    assert snap["counters"]["autograd/nonfinite_grad_elems"] >= 1
    bad = [e for e in run.events if e.get("name") == "autograd.nonfinite_grad"]
    assert bad and bad[0]["tensor"] == "x" and bad[0]["n_bad"] == 1
    obs.finish_run()


def test_nan_detection_off_by_default():
    obs.start_run(config={})
    assert not obs.nan_checks_enabled()
    x = Tensor(np.array([0.0]), requires_grad=True)
    with np.errstate(divide="ignore"):
        (1.0 / x).sum().backward()  # diverges silently: no scan requested
    run = obs.current_run()
    assert "autograd/nonfinite_grads" not in run.registry
    obs.finish_run()


# ----------------------------------------------------------------------
# Instrumentation threaded through the layers
# ----------------------------------------------------------------------
def test_sampler_counters(tiny):
    dataset, split = tiny
    run = obs.start_run(config={})
    sampler = TripletSampler(dataset, split.train,
                             rng=np.random.default_rng(0))
    n = sum(len(u) for u, _, _ in sampler.epoch(2048))
    snap = run.registry.snapshot()
    assert snap["counters"]["sampler/draws"] == n == len(sampler)
    assert snap["counters"]["sampler/resampled"] >= 0
    obs.finish_run()


def test_manifold_clamp_counters():
    run = obs.start_run(config={})
    lorentz = Lorentz()
    huge = np.zeros((3, 5))
    huge[:, 1] = 1e9                # far beyond the distance clamp
    lorentz.project(huge)
    ball = PoincareBall()
    ball.project(np.array([[2.0, 0.0], [0.1, 0.0]]))
    snap = run.registry.snapshot()
    assert snap["counters"]["manifold/lorentz/dist_clamped"] == 3
    assert snap["counters"]["manifold/poincare/boundary_clamped"] == 1
    assert snap["gauges"]["manifold/poincare/max_norm"] == pytest.approx(2.0)
    obs.finish_run()


class _ScriptedModel(Recommender):
    """Loss values are scripted; training updates nothing (lr=0)."""

    def __init__(self, n_users, n_items, losses, config):
        super().__init__(n_users, n_items, config)
        self._p = Parameter(np.zeros(3), name="p")
        self._losses = iter(losses)

    def parameters(self):
        return [self._p]

    def make_optimizer(self):
        return SGD(self.parameters(), lr=0.0)

    def batch_loss(self, users, pos, neg):
        return (self._p * 0.0).sum() + next(self._losses)

    def score_users(self, user_ids):
        return np.zeros((len(user_ids), self.n_items))


def test_fit_records_epoch_mean_loss(tiny):
    dataset, split = tiny
    n_train = len(split.train)
    config = TrainConfig(epochs=1, n_negatives=1,
                         batch_size=(n_train + 1) // 2)  # exactly 2 batches
    model = _ScriptedModel(dataset.n_users, dataset.n_items,
                           losses=[1.0, 3.0], config=config)
    model.fit(dataset, split)
    assert model.loss_history == [2.0]   # epoch mean, not the last batch


def test_fit_emits_spans_and_loss_stats(tmp_path, tiny):
    dataset, split = tiny
    run = obs.start_run(run_dir=tmp_path, config={"seed": 0})
    with obs.trace("run"):
        config = TrainConfig(epochs=2, n_negatives=1,
                             batch_size=(len(split.train) + 1) // 2)
        model = _ScriptedModel(dataset.n_users, dataset.n_items,
                               losses=[1.0, 3.0, 5.0, 7.0], config=config)
        evaluator = Evaluator(dataset, split)
        model.fit(dataset, split, evaluator=evaluator, eval_every=1)
    run_dir = run.dir
    manifest = obs.finish_run(final_metrics={})
    events = obs.read_events(run_dir)
    roots = obs.aggregate_spans(events)
    assert [r.name for r in roots] == ["run"]
    fit_node = next(c for c in roots[0].children if c.name == "fit")
    epoch_node = next(c for c in fit_node.children if c.name == "epoch")
    assert epoch_node.n == 2
    phase_names = {c.name for c in epoch_node.children}
    assert {"sample", "forward", "backward", "step",
            "validate"} <= phase_names
    # Telemetry attribution: >= 90% of wall-clock lands in the span tree.
    coverage = obs.tree_coverage(roots, manifest["wall_s"])
    assert coverage >= 0.9, f"span coverage only {coverage:.1%}"
    hist = manifest["metrics"]["histograms"]
    assert hist["train/loss_epoch"]["count"] == 2
    assert hist["train/loss_batch"]["count"] == 4
    assert hist["train/loss_epoch"]["max"] == pytest.approx(6.0)
    assert manifest["metrics"]["gauges"]["train/param_norm"] == 0.0
    # Evaluator spans nested under validate.
    validate = next(c for c in epoch_node.children if c.name == "validate")
    evaluate = next(c for c in validate.children if c.name == "evaluate")
    assert {"score_users", "topk"} <= {c.name for c in evaluate.children}


# ----------------------------------------------------------------------
# Logger
# ----------------------------------------------------------------------
def test_get_logger_single_handler_and_namespacing():
    first = obs.get_logger("models.base")
    second = obs.get_logger("repro.eval")
    root = logging.getLogger("repro")
    handlers = [h for h in root.handlers
                if isinstance(h, logging.StreamHandler)]
    assert len(handlers) == 1
    assert first.name == "repro.models.base"
    assert second.name == "repro.eval"
    assert not root.propagate


def test_rate_limiter_throttles():
    limiter = obs.RateLimiter(min_interval_s=60.0)
    assert limiter.ready()
    assert not limiter.ready()
    assert limiter.ready(force=True)


def test_verbose_fit_logs_through_logger(tiny, caplog):
    dataset, split = tiny
    n_train = len(split.train)
    config = TrainConfig(epochs=1, n_negatives=1, batch_size=n_train,
                         verbose=True)
    model = _ScriptedModel(dataset.n_users, dataset.n_items,
                           losses=[4.0], config=config)
    with caplog.at_level(logging.INFO, logger="repro"):
        logging.getLogger("repro").propagate = True  # let caplog see it
        try:
            model.fit(dataset, split)
        finally:
            logging.getLogger("repro").propagate = False
    assert any("loss=4.0000" in r.getMessage() for r in caplog.records)


# ----------------------------------------------------------------------
# CLI surfacing
# ----------------------------------------------------------------------
def test_cli_train_telemetry_and_summarize(tmp_path, capsys):
    from repro.cli import main
    rc = main(["train", "BPRMF", "--dataset", "cd", "--epochs", "1",
               "--telemetry", "--run-dir", str(tmp_path / "runs")])
    assert rc == 0
    run_dirs = list((tmp_path / "runs").iterdir())
    assert len(run_dirs) == 1
    assert (run_dirs[0] / "events.jsonl").exists()
    assert (run_dirs[0] / "manifest.json").exists()
    manifest = obs.read_manifest(run_dirs[0])
    assert manifest["config"]["model"] == "BPRMF"
    assert manifest["final_metrics"]  # test metrics recorded
    capsys.readouterr()
    rc = main(["obs", "summarize", str(run_dirs[0])])
    assert rc == 0
    out = capsys.readouterr().out
    assert "span tree:" in out and "fit" in out and "coverage:" in out
    rc = main(["obs", "list", "--run-dir", str(tmp_path / "runs")])
    assert rc == 0
    assert run_dirs[0].name in capsys.readouterr().out
