"""Tests for the SVG visualization module and the grid-search utility."""

import numpy as np
import pytest

from repro.core import LogiRecConfig, LogiRecPP
from repro.data import load_dataset, temporal_split
from repro.eval import Evaluator
from repro.experiments.search import format_search_trace, grid_search
from repro.viz import render_poincare_disk, save_embedding_figure


class TestSVGRendering:
    def test_basic_svg_structure(self):
        coords = np.array([[0.1, 0.2], [-0.5, 0.3]])
        labels = np.array([0, 1])
        svg = render_poincare_disk(coords, labels)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        # Unit circle + 2 data points.
        assert svg.count("<circle") >= 3

    def test_labels_get_distinct_colors(self):
        coords = np.array([[0.1, 0.0], [0.2, 0.0], [0.3, 0.0]])
        labels = np.array([0, 1, 0])
        svg = render_poincare_disk(coords, labels)
        assert "#4e79a7" in svg and "#f28e2b" in svg

    def test_unlabelled_points_gray(self):
        svg = render_poincare_disk(np.array([[0.0, 0.0]]),
                                   np.array([-1]))
        assert "#cccccc" in svg

    def test_legend_names_escaped(self):
        svg = render_poincare_disk(np.array([[0.1, 0.1]]),
                                   np.array([0]),
                                   names=["<Rock & Roll>"])
        assert "&lt;Rock &amp; Roll&gt;" in svg
        assert "<Rock & Roll>" not in svg

    def test_tag_region_overlay(self):
        svg = render_poincare_disk(
            np.array([[0.1, 0.1]]), np.array([0]),
            tag_regions={0: (np.array([0.5, 0.0]), 0.3)})
        assert "stroke-dasharray" in svg

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="coords"):
            render_poincare_disk(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError, match="labels"):
            render_poincare_disk(np.zeros((3, 2)), np.zeros(2))

    def test_save_embedding_figure(self, tmp_path):
        ds = load_dataset("ciao", scale=0.4)
        split = temporal_split(ds)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          LogiRecConfig(dim=8, epochs=3,
                                        batch_size=1024, seed=0))
        model.fit(ds, split)
        path = str(tmp_path / "fig.svg")
        out = save_embedding_figure(model, ds, path)
        assert out == path
        content = open(path).read()
        assert content.startswith("<svg")
        assert ds.name in content


class TestGridSearch:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = load_dataset("ciao", scale=0.4)
        return ds, temporal_split(ds)

    def test_finds_best_on_validation(self, setup):
        ds, split = setup
        base = LogiRecConfig(dim=8, epochs=4, batch_size=1024, seed=0)

        def factory(config):
            return LogiRecPP(ds.n_users, ds.n_items, ds.n_tags, config)

        best, trace = grid_search(factory, base,
                                  {"lam": [0.0, 1.0]}, ds, split)
        assert len(trace) == 2
        best_row = max(trace, key=lambda r: r["score"])
        assert best.lam == best_row["params"]["lam"]

    def test_multi_field_grid_size(self, setup):
        ds, split = setup
        base = LogiRecConfig(dim=8, epochs=2, batch_size=1024, seed=0)

        def factory(config):
            return LogiRecPP(ds.n_users, ds.n_items, ds.n_tags, config)

        _, trace = grid_search(factory, base,
                               {"lam": [0.0, 1.0],
                                "margin": [0.1, 0.5]}, ds, split)
        assert len(trace) == 4
        seen = {tuple(sorted(r["params"].items())) for r in trace}
        assert len(seen) == 4

    def test_empty_grid_rejected(self, setup):
        ds, split = setup
        with pytest.raises(ValueError):
            grid_search(lambda c: None, LogiRecConfig(), {}, ds, split)

    def test_trace_formatting(self):
        trace = [{"params": {"lam": 1.0}, "score": 12.5},
                 {"params": {"lam": 0.0}, "score": 8.0}]
        text = format_search_trace(trace)
        lines = text.splitlines()
        assert "12.50" in lines[1]  # best first
        assert "lam=0.0" in lines[2]
