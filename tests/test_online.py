"""Online learning: ingest, incremental fine-tune, and hot index swap.

The acceptance bars of the online subsystem:

* **Ingest is transactional** — a poison batch (corrupt record,
  disordered timestamps, duplicate pairs, shrunk universe) raises a
  typed :class:`StreamError` before any mutation; the replay cursor and
  the dataset are exactly as they were.
* **Fine-tune preserves the warm model and grows the cold one** — a
  checkpointed model resized over streamed-in users/items keeps its
  existing rows bit-identical, initializes new rows on the manifold,
  and fine-tunes to finite losses and finite cold-start scores for
  LogiRec++, HGCF, and BPRMF alike.
* **Swaps drop nothing** — under the PR8 open-loop load generator a
  front-end index swap completes with zero hard failures and zero
  dropped requests, and scores for unchanged users are bit-identical
  before/after swapping in a bit-identically rebuilt index.

The swap-under-load drill forks real worker processes; it is kept to
one small drill with generous timing margins for 1-CPU CI boxes.
"""

import json

import numpy as np
import pytest

from repro.core.weighting import consistency_weights
from repro.data import (StreamError, SyntheticConfig, generate_dataset,
                        load_dataset_file, save_dataset, temporal_split)
from repro.data.dataset import InteractionDataset
from repro.experiments.runner import build_model
from repro.online import (EventJournal, InteractionEvent, OnlineLoop,
                          StreamIngestor, export_online_index,
                          full_split, incremental_finetune,
                          recency_tail_split, recency_weighted_consistency,
                          recency_weights, simulate_events,
                          tag_prior_neighbors, weighted_tag_frequencies)
from repro.serve import (RecommendService, ServiceConfig, build_index,
                         save_checkpoint)


@pytest.fixture()
def dataset() -> InteractionDataset:
    return generate_dataset(SyntheticConfig(n_users=40, n_items=60,
                                            depth=3, branching=3,
                                            mean_interactions=10.0,
                                            seed=4))


@pytest.fixture()
def trained(dataset):
    """A trained BPRMF + checkpoint dir factory (fresh per test)."""
    split = temporal_split(dataset)
    model = build_model("BPRMF", dataset, seed=0)
    model.config.epochs = 2
    model.fit(dataset, split)
    return dataset, split, model


def _next_t(ds: InteractionDataset) -> int:
    return int(ds.timestamps.max()) + 1


# ----------------------------------------------------------------------
# Event journal: round-trip, replay cursors, torn writes, corruption
# ----------------------------------------------------------------------
class TestEventJournal:
    def test_append_read_round_trip(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        events = [InteractionEvent(1, 2, 10), InteractionEvent(3, 4, 11)]
        end = journal.append(events)
        got, cursor = journal.read()
        assert got == events
        assert cursor == end == journal.size()

    def test_offset_resume_and_max_events(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        events = [InteractionEvent(u, u, 10 + u) for u in range(5)]
        journal.append(events)
        first, cursor = journal.read(max_events=2)
        rest, end = journal.read(offset=cursor)
        assert first + rest == events
        assert end == journal.size()
        # A persisted cursor survives process restart semantics: a new
        # journal object over the same file resumes identically.
        again, _ = EventJournal(journal.path).read(offset=cursor)
        assert again == rest

    def test_torn_final_line_is_not_an_error(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.append([InteractionEvent(1, 1, 10)])
        with open(journal.path, "ab") as fh:
            fh.write(b'{"u":2,"i":2')  # in-progress append, no newline
        events, cursor = journal.read()
        assert [e.user_id for e in events] == [1]
        # Cursor stops at the line boundary before the torn tail...
        assert cursor < journal.size()
        # ...and picks the event up once the writer finishes the line.
        with open(journal.path, "ab") as fh:
            fh.write(b',"t":11}\n')
        more, _ = journal.read(offset=cursor)
        assert more == [InteractionEvent(2, 2, 11)]

    def test_corrupt_record_raises_stream_error_with_offset(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.append([InteractionEvent(1, 1, 10)])
        _, cursor = journal.read()
        journal.append([InteractionEvent(2, 2, 11)])
        blob = bytearray(journal.path.read_bytes())
        blob[cursor + 2] ^= 0xFF
        journal.path.write_bytes(bytes(blob))
        with pytest.raises(StreamError, match=f"byte {cursor}"):
            journal.read(offset=cursor)
        # The clean prefix is still readable.
        ok, _ = journal.read(offset=0, max_events=1)
        assert ok == [InteractionEvent(1, 1, 10)]

    def test_missing_fields_raise_stream_error(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b'{"u": 1, "i": 2}\n')
        with pytest.raises(StreamError, match="u/i/t"):
            EventJournal(path).read()

    def test_simulated_events_satisfy_ingest_invariants(self, dataset):
        events = simulate_events(dataset, 30, n_new_users=2,
                                 n_new_items=3, seed=7)
        assert len(events) == 30
        t = [e.timestamp for e in events]
        assert t == sorted(t) and t[0] > int(dataset.timestamps.max())
        pairs = {(e.user_id, e.item_id) for e in events}
        assert len(pairs) == 30  # no intra-stream duplicates
        # Every cold-start entity is covered at least once.
        users = {e.user_id for e in events}
        items = {e.item_id for e in events}
        assert {dataset.n_users, dataset.n_users + 1} <= users
        assert {dataset.n_items + j for j in range(3)} <= items


# ----------------------------------------------------------------------
# append_interactions: the transactional invariant gate
# ----------------------------------------------------------------------
class TestAppendInteractions:
    def _snapshot(self, ds):
        return (ds.user_ids.copy(), ds.item_ids.copy(),
                ds.timestamps.copy(), ds.n_users, ds.n_items)

    def _unchanged(self, ds, snap):
        u, i, t, nu, ni = snap
        return (np.array_equal(ds.user_ids, u)
                and np.array_equal(ds.item_ids, i)
                and np.array_equal(ds.timestamps, t)
                and ds.n_users == nu and ds.n_items == ni)

    def test_append_grows_universe_and_counts(self, dataset):
        t0 = _next_t(dataset)
        old = dataset.n_interactions
        summary = dataset.append_interactions(
            [dataset.n_users, 0], [dataset.n_items, dataset.n_items + 1],
            [t0, t0 + 1])
        assert summary["n_new_users"] == 1
        assert summary["n_new_items"] == 2
        assert dataset.n_interactions == old + 2
        # New items got empty tag rows; Q covers the grown universe.
        assert dataset.item_tags.shape[0] == dataset.n_items

    @pytest.mark.parametrize("mutation,match", [
        (lambda ds, t: ([0], [1, 2], [t]), "equal length"),
        (lambda ds, t: ([-1], [0], [t]), "negative"),
        (lambda ds, t: ([0, 0], [1, 2], [t + 1, t]), "out-of-order"),
        (lambda ds, t: ([0], [ds.n_items - 1], [0]), "precede"),
        (lambda ds, t: ([0, 0], [1, 1], [t, t]), "within batch"),
    ])
    def test_poison_batches_reject_without_mutation(self, dataset,
                                                    mutation, match):
        snap = self._snapshot(dataset)
        users, items, times = mutation(dataset, _next_t(dataset))
        with pytest.raises(StreamError, match=match):
            dataset.append_interactions(users, items, times)
        assert self._unchanged(dataset, snap)

    def test_duplicate_against_existing_rejected(self, dataset):
        u0, i0 = int(dataset.user_ids[0]), int(dataset.item_ids[0])
        snap = self._snapshot(dataset)
        with pytest.raises(StreamError, match="against existing"):
            dataset.append_interactions([u0], [i0], [_next_t(dataset)])
        assert self._unchanged(dataset, snap)

    def test_universe_may_only_grow(self, dataset):
        with pytest.raises(StreamError, match="only grow"):
            dataset.append_interactions([0], [0], [_next_t(dataset)],
                                        n_users=dataset.n_users - 1)


# ----------------------------------------------------------------------
# StreamIngestor: cursor discipline and duplicate policy
# ----------------------------------------------------------------------
class TestStreamIngestor:
    def test_drain_folds_stream_into_dataset(self, dataset, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.append(simulate_events(dataset, 25, n_new_users=2,
                                       n_new_items=1, seed=3))
        ingestor = StreamIngestor(dataset, journal)
        totals = ingestor.drain(batch_size=7)
        assert totals["n_appended"] == 25
        assert totals["n_new_users"] == 2 and totals["n_new_items"] == 1
        assert ingestor.lag_bytes() == 0
        # Idempotent once drained.
        assert ingestor.drain()["n_read"] == 0

    def test_duplicates_skipped_by_default_error_when_strict(
            self, dataset, tmp_path):
        t0 = _next_t(dataset)
        u0, i0 = int(dataset.user_ids[0]), int(dataset.item_ids[0])
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.append([InteractionEvent(u0, i0, t0)])  # re-delivery
        old_n = dataset.n_interactions

        strict = StreamIngestor(dataset, journal, on_duplicate="error")
        with pytest.raises(StreamError, match="duplicate"):
            strict.poll()
        assert strict.offset == 0  # nothing consumed on failure

        lax = StreamIngestor(dataset, journal)
        summary = lax.poll()
        assert summary["n_duplicates"] == 1
        assert summary["n_appended"] == 0
        assert dataset.n_interactions == old_n
        assert lax.lag_bytes() == 0  # the duplicate was consumed

    def test_cursor_does_not_advance_past_corruption(self, dataset,
                                                     tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.append(simulate_events(dataset, 4, seed=1))
        blob = bytearray(journal.path.read_bytes())
        blob[3] ^= 0xFF
        journal.path.write_bytes(bytes(blob))
        ingestor = StreamIngestor(dataset, journal)
        with pytest.raises(StreamError):
            ingestor.drain()
        assert ingestor.offset == 0
        assert ingestor.counters["events_ingested"] == 0


# ----------------------------------------------------------------------
# Dataset io round-trip (satellite regression)
# ----------------------------------------------------------------------
class TestDatasetIO:
    def test_round_trip_preserves_timestamps_dtype_and_order(
            self, dataset, tmp_path):
        save_dataset(dataset, tmp_path / "snap")
        loaded = load_dataset_file(tmp_path / "snap")
        assert loaded.timestamps.dtype == np.int64
        assert np.array_equal(loaded.timestamps, dataset.timestamps)
        assert np.array_equal(loaded.user_ids, dataset.user_ids)
        assert np.array_equal(loaded.item_ids, dataset.item_ids)
        # Recency weighting is a pure function of the timestamp vector,
        # so the round-trip keeps it deterministic.
        assert np.array_equal(recency_weights(loaded.timestamps, 5.0),
                              recency_weights(dataset.timestamps, 5.0))

    def test_dotted_stems_do_not_collide(self, dataset, tmp_path):
        """``snap.v1`` and ``snap.v2`` must not collapse to one file."""
        save_dataset(dataset, tmp_path / "snap.v1")
        grown = load_dataset_file(tmp_path / "snap.v1")
        grown.append_interactions([0], [grown.n_items],
                                  [_next_t(grown)])
        save_dataset(grown, tmp_path / "snap.v2")
        v1 = load_dataset_file(tmp_path / "snap.v1")
        v2 = load_dataset_file(tmp_path / "snap.v2")
        assert v1.n_interactions == dataset.n_interactions
        assert v2.n_interactions == dataset.n_interactions + 1
        assert v2.n_items == dataset.n_items + 1


# ----------------------------------------------------------------------
# Recency weighting and the weighted consistency variant
# ----------------------------------------------------------------------
class TestRecencyWeighting:
    def test_recency_weights_decay_by_half_life(self):
        t = np.array([0, 5, 10])
        w = recency_weights(t, half_life=5.0)
        assert w == pytest.approx([0.25, 0.5, 1.0])
        with pytest.raises(ValueError):
            recency_weights(t, half_life=0.0)

    def test_tail_split_is_the_newest_slice(self, dataset):
        split = recency_tail_split(dataset, tail_frac=0.25)
        n_tail = len(split.train)
        assert n_tail == round(0.25 * dataset.n_interactions)
        tail_min = dataset.timestamps[split.train].min()
        rest = np.setdiff1d(np.arange(dataset.n_interactions),
                            split.train)
        assert dataset.timestamps[rest].max() <= tail_min
        assert len(split.valid) == len(split.test) == 0

    def test_unit_weights_reduce_to_offline_consistency(self, dataset):
        """With all weights 1, the online CON_u equals Eq. 12 exactly."""
        indices = np.arange(dataset.n_interactions, dtype=np.int64)
        online = recency_weighted_consistency(
            dataset, indices, np.ones(len(indices)))
        offline = consistency_weights(dataset.user_tag_lists(indices),
                                      dataset.relations, dataset.n_users)
        assert np.allclose(online, offline, atol=0.0)

    def test_stale_conflicts_decay_toward_one(self, dataset):
        """CON_u under heavy decay is >= CON_u with full weights."""
        indices = np.arange(dataset.n_interactions, dtype=np.int64)
        full = recency_weighted_consistency(dataset, indices,
                                            np.ones(len(indices)))
        decayed = recency_weighted_consistency(
            dataset, indices,
            recency_weights(dataset.timestamps[indices], half_life=0.5))
        assert np.all(decayed >= full - 1e-12)

    def test_weighted_tf_degenerate_cases(self):
        assert weighted_tag_frequencies(np.array([3]),
                                        np.array([1.0])) == {}
        # Effective evidence below one tag occurrence: no assertions.
        assert weighted_tag_frequencies(np.array([3, 4]),
                                        np.array([0.1, 0.1])) == {}


# ----------------------------------------------------------------------
# Embedding resize + cold-start fine-tune across model families
# ----------------------------------------------------------------------
class TestIncrementalFinetune:
    def _grow(self, dataset, n_events=20, n_new_users=2, n_new_items=2,
              seed=5):
        events = simulate_events(dataset, n_events, n_new_users,
                                 n_new_items, seed=seed)
        users = np.array([e.user_id for e in events])
        items = np.array([e.item_id for e in events])
        times = np.array([e.timestamp for e in events])
        dataset.append_interactions(users, items, times)

    def test_resize_preserves_warm_rows_bit_identically(self, trained):
        dataset, _, model = trained
        warm = {p.name: p.data.copy() for p in model.parameters()}
        growth = model.resize_universe(dataset.n_users + 3,
                                       dataset.n_items + 2)
        assert growth["new_users"] == 3 and growth["new_items"] == 2
        assert growth["grown_parameters"]  # something actually grew
        for p in model.parameters():
            old = warm[p.name]
            assert np.array_equal(p.data[:len(old)], old)
            assert np.all(np.isfinite(p.data))

    def test_resize_rejects_shrink(self, trained):
        _, _, model = trained
        with pytest.raises(ValueError, match="only grow"):
            model.resize_universe(model.n_users - 1, model.n_items)

    def test_tag_prior_neighbors_share_tags(self, dataset):
        old_items = dataset.n_items
        q = dataset.item_tags
        # Grow by one item carrying item 0's exact tag row.
        import scipy.sparse as sp
        grown_q = sp.vstack([q, q[0]]).tocsr()
        dataset.append_interactions([0], [old_items], [_next_t(dataset)],
                                    item_tags=grown_q)
        neighbors = tag_prior_neighbors(dataset, old_items)
        assert old_items in neighbors
        nbs = neighbors[old_items]
        overlaps = (q[nbs] @ q[0].T).toarray().ravel()
        assert np.all(overlaps > 0)

    @pytest.mark.parametrize("model_name",
                             ["LogiRec++", "HGCF", "BPRMF"])
    def test_cold_start_finetune_smoke(self, dataset, tmp_path,
                                       model_name):
        split = temporal_split(dataset)
        model = build_model(model_name, dataset, seed=0)
        model.config.epochs = 2
        model.fit(dataset, split)
        save_checkpoint(model, tmp_path / "ck", dataset=dataset)

        self._grow(dataset)
        record = incremental_finetune(tmp_path / "ck", dataset,
                                      epochs=2, tail_frac=0.5)
        tuned = record["model"]
        assert record["growth"]["new_users"] == 2
        assert tuned.n_users == dataset.n_users
        assert np.isfinite(record["final_loss"])
        # Cold entities score finitely against the whole catalogue.
        cold_scores = tuned.score_users(
            np.arange(dataset.n_users - 2, dataset.n_users))
        assert cold_scores.shape == (2, dataset.n_items)
        assert np.all(np.isfinite(cold_scores))

    def test_finetune_requires_positive_tail(self, dataset):
        with pytest.raises(ValueError, match="tail_frac"):
            recency_tail_split(dataset, tail_frac=0.0)


# ----------------------------------------------------------------------
# Hot swap: engine-level, seen-mask extension, and under-load drill
# ----------------------------------------------------------------------
class TestHotSwap:
    def test_engine_swap_is_invisible_for_identical_index(self, trained):
        dataset, split, model = trained
        index = build_index(model, dataset, split)
        rebuilt = build_index(model, dataset, split)
        service = RecommendService(index,
                                   ServiceConfig(k=10, cache_size=0))
        users = range(min(10, dataset.n_users))
        before = [r["items"] for r in service.query_batch(users)]
        summary = service.swap_index(rebuilt)
        after = [r["items"] for r in service.query_batch(users)]
        assert before == after
        assert summary["swaps"] == 1
        assert service.fallback_index is index  # stale-index safety net
        assert service.stats["index_swaps"] == 1

    def test_with_extended_seen_masks_streamed_pairs(self, trained):
        dataset, split, model = trained
        index = build_index(model, dataset, split)
        uid = 0
        ranked = RecommendService(
            index, ServiceConfig(k=5, cache_size=0)).query(uid)["items"]
        fresh = index.with_extended_seen(np.array([uid]),
                                        np.array([ranked[0]]))
        re_ranked = RecommendService(
            fresh, ServiceConfig(k=5, cache_size=0)).query(uid)["items"]
        assert ranked[0] not in re_ranked
        assert fresh.meta["generation"] == index.meta.get(
            "generation", 0) + 1
        # Score tables are shared, not copied.
        assert all(np.shares_memory(fresh.arrays[name],
                                    index.arrays[name])
                   for name in index.arrays)

    def test_full_split_covers_every_interaction(self, dataset):
        split = full_split(dataset)
        assert len(split.train) == dataset.n_interactions
        assert len(split.valid) == len(split.test) == 0

    def test_swap_under_load_drill(self, tmp_path):
        from repro.online import run_swap_drill
        record = run_swap_drill(epochs=1, finetune_epochs=1,
                                n_workers=2, qps=60.0, n_events=25,
                                n_new_users=2, n_new_items=1,
                                workdir=tmp_path, seed=0)
        assert record["zero_hard_failures"], record["load"]
        assert record["zero_dropped"], record["load"]
        assert record["identity_preserved"]
        assert record["cold_start_served"]
        assert record["passed"]

    def test_online_serve_drill_degrades_and_recovers(self, tmp_path):
        from repro.online import run_online_serve_drill
        record = run_online_serve_drill(epochs=1, finetune_epochs=1,
                                        n_requests=30, n_events=15,
                                        workdir=tmp_path, seed=0)
        assert record["all_valid"]
        assert record["degraded_mode_held"]
        assert record["recovered"]
        assert record["passed"]


# ----------------------------------------------------------------------
# Stream fault drills (repro robust inject stream)
# ----------------------------------------------------------------------
class TestStreamDrills:
    @pytest.mark.parametrize("kind", ["journal_corrupt",
                                      "event_disorder",
                                      "event_duplicate"])
    def test_stream_faults_detected_and_contained(self, tmp_path, kind):
        from repro.robust.drills import run_stream_drill
        record = run_stream_drill(kind=kind, n_events=15,
                                  workdir=tmp_path / kind, seed=0)
        assert record["detected"], record
        assert record["contained"], record
        assert record["passed"]


# ----------------------------------------------------------------------
# OnlineLoop: the durable ingest -> finetune -> swap cycle
# ----------------------------------------------------------------------
class TestOnlineLoop:
    def test_full_cycle_and_restart(self, tmp_path):
        loop = OnlineLoop(tmp_path, model_name="BPRMF",
                          dataset_name="cd", seed=0)
        record = loop.run_cycle(n_events=20, n_new_users=2,
                                n_new_items=1, bootstrap_epochs=1,
                                finetune_epochs=1)
        assert record["bootstrap"]["bootstrapped"]
        assert record["ingest"]["n_appended"] == 20
        assert record["swap"]["version"] == 2
        assert record["cold_start"]["hit_rate"] == 1.0
        assert record["swap"]["event_to_servable_s"] >= 0.0
        assert loop.current_version() == 2

        n_after_first = loop.status()["n_interactions"]

        # A fresh loop over the same workdir restores all durable state
        # and does not re-bootstrap.
        again = OnlineLoop(tmp_path, model_name="BPRMF",
                           dataset_name="cd", seed=0)
        assert again.ingestor.lag_bytes() == 0
        record2 = again.run_cycle(n_events=15, n_new_users=1,
                                  n_new_items=0, finetune_epochs=1)
        assert not record2["bootstrap"]["bootstrapped"]
        assert record2["swap"]["version"] == 3
        assert again.status()["n_interactions"] == n_after_first + 15

    def test_swap_hot_swaps_attached_service(self, tmp_path):
        loop = OnlineLoop(tmp_path, seed=0)
        loop.bootstrap(epochs=1)
        from repro.serve.index import load_index
        service = RecommendService(
            load_index(loop.current_index_path()),
            ServiceConfig(k=5, cache_size=0))
        loop.attach(service)
        loop.simulate(12, n_new_users=1)
        loop.ingest()
        loop.finetune(epochs=1)
        record = loop.swap()
        assert record["version"] == 2
        assert len(record["live_swaps"]) == 1
        assert service.stats["index_swaps"] == 1
        # The attached service now serves the streamed-in cold user.
        cold = service.query(loop.dataset.n_users - 1)
        assert cold["source"] == "index"

    def test_current_pointer_flip_is_atomic_artifact(self, tmp_path):
        loop = OnlineLoop(tmp_path, seed=0)
        loop.bootstrap(epochs=1)
        current = (tmp_path / "CURRENT").read_text().strip()
        assert current == "index.v1"
        assert not (tmp_path / "CURRENT.tmp").exists()
        state = json.loads((tmp_path / "state.json").read_text())
        assert state["index_version"] == 1
