"""Tests for metrics, the evaluation harness, and significance testing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.eval import (Evaluator, ndcg_at_k, recall_at_k,
                        wilcoxon_improvement)
from repro.eval.metrics import rank_items


class TestRecall:
    def test_perfect_ranking(self):
        ranked = np.array([3, 7, 1, 5])
        assert recall_at_k(ranked, {3, 7}, 2) == 1.0

    def test_partial_hit(self):
        ranked = np.array([3, 9, 1, 7])
        assert recall_at_k(ranked, {3, 7}, 2) == 0.5

    def test_miss(self):
        assert recall_at_k(np.array([1, 2]), {9}, 2) == 0.0

    def test_truth_larger_than_k(self):
        ranked = np.arange(10)
        assert recall_at_k(ranked, set(range(20)), 10) == 0.5

    def test_empty_truth_raises(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([1]), set(), 1)


class TestNDCG:
    def test_perfect_is_one(self):
        ranked = np.array([4, 2, 9])
        assert ndcg_at_k(ranked, {4, 2, 9}, 3) == pytest.approx(1.0)

    def test_position_sensitivity(self):
        top = ndcg_at_k(np.array([1, 2, 3]), {1}, 3)
        bottom = ndcg_at_k(np.array([3, 2, 1]), {1}, 3)
        assert top > bottom

    def test_known_value(self):
        # Single relevant item at rank 2: DCG = 1/log2(3); IDCG = 1.
        value = ndcg_at_k(np.array([9, 5, 7]), {5}, 3)
        assert value == pytest.approx(1.0 / np.log2(3))

    def test_zero_when_all_missed(self):
        assert ndcg_at_k(np.array([1, 2]), {3}, 2) == 0.0


class TestRankItems:
    def test_descending_order(self):
        scores = np.array([0.1, 0.9, 0.5])
        np.testing.assert_array_equal(rank_items(scores, set()),
                                      [1, 2, 0])

    def test_exclusion_masks_train_items(self):
        scores = np.array([0.1, 0.9, 0.5])
        ranked = rank_items(scores, {1})
        assert 1 not in ranked
        np.testing.assert_array_equal(ranked, [2, 0])

    def test_stable_ties(self):
        scores = np.zeros(4)
        np.testing.assert_array_equal(rank_items(scores, set()),
                                      [0, 1, 2, 3])


class _OracleModel:
    """Scores each user's true test items highest (perfect model)."""

    def __init__(self, dataset, split):
        self.truth = dataset.items_of_user(split.test)
        self.n_items = dataset.n_items

    def score_users(self, user_ids):
        scores = np.zeros((len(user_ids), self.n_items))
        for row, u in enumerate(user_ids):
            for item in self.truth.get(int(u), ()):
                scores[row, item] = 1.0
        return scores


class _RandomModel:
    def __init__(self, n_items, seed=0):
        self.n_items = n_items
        self.rng = np.random.default_rng(seed)

    def score_users(self, user_ids):
        return self.rng.normal(size=(len(user_ids), self.n_items))


class TestEvaluator:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = generate_dataset(SyntheticConfig(n_users=30, n_items=50,
                                              mean_interactions=12.0,
                                              seed=8))
        return ds, temporal_split(ds)

    def test_oracle_gets_perfect_recall(self, setup):
        ds, split = setup
        evaluator = Evaluator(ds, split, ks=(10,))
        result = evaluator.evaluate_test(_OracleModel(ds, split))
        assert result["recall@10"] == pytest.approx(100.0)
        assert result["ndcg@10"] == pytest.approx(100.0)

    def test_random_model_near_chance(self, setup):
        ds, split = setup
        evaluator = Evaluator(ds, split, ks=(10,))
        result = evaluator.evaluate_test(_RandomModel(ds.n_items))
        # Chance recall@10 is roughly 10 / (n_items - train) ~ 25%.
        assert result["recall@10"] < 60.0

    def test_valid_and_test_differ(self, setup):
        ds, split = setup
        evaluator = Evaluator(ds, split, ks=(10,))
        model = _OracleModel(ds, split)  # oracle for *test* items only
        valid = evaluator.evaluate_valid(model)
        test = evaluator.evaluate_test(model)
        assert test["recall@10"] > valid["recall@10"]

    def test_per_user_vectors_align(self, setup):
        ds, split = setup
        evaluator = Evaluator(ds, split, ks=(10, 20))
        result = evaluator.evaluate_test(_RandomModel(ds.n_items))
        n = len(result.user_ids)
        for metric, vector in result.per_user.items():
            assert len(vector) == n

    def test_means_in_percent(self, setup):
        ds, split = setup
        evaluator = Evaluator(ds, split)
        result = evaluator.evaluate_test(_OracleModel(ds, split))
        for value in result.means.values():
            assert 0.0 <= value <= 100.0

    def test_summary_string(self, setup):
        ds, split = setup
        evaluator = Evaluator(ds, split)
        result = evaluator.evaluate_test(_RandomModel(ds.n_items))
        assert "recall@10=" in result.summary()


class TestWilcoxon:
    def test_clear_improvement_significant(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0.1, 0.3, 200)
        better = base + 0.1
        significant, p = wilcoxon_improvement(better, base)
        assert significant
        assert p < 0.001

    def test_identical_not_significant(self):
        base = np.full(50, 0.5)
        significant, p = wilcoxon_improvement(base, base.copy())
        assert not significant
        assert p == 1.0

    def test_worse_not_significant(self):
        rng = np.random.default_rng(1)
        base = rng.uniform(0.3, 0.5, 100)
        significant, _ = wilcoxon_improvement(base - 0.1, base)
        assert not significant

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            wilcoxon_improvement(np.ones(3), np.ones(4))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_noise_rarely_significant(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=40)
        b = a + rng.normal(scale=1e-3, size=40)
        significant, p = wilcoxon_improvement(b, a)
        assert 0.0 <= p <= 1.0
