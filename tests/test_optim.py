"""Tests for optimizers: SGD, Adam, Riemannian SGD/Adam."""

import numpy as np
import pytest

from repro.manifolds import Lorentz, PoincareBall
from repro.optim import Adam, Parameter, RiemannianAdam, RiemannianSGD, SGD
from repro.tensor import Tensor, norm


def _quadratic_step(optimizer_cls, **kwargs):
    """One optimization run on f(x) = ||x - target||^2."""
    target = np.array([1.0, -2.0, 3.0])
    p = Parameter(np.zeros(3))
    opt = optimizer_cls([p], **kwargs)
    for _ in range(300):
        opt.zero_grad()
        loss = ((p - Tensor(target)) ** 2).sum()
        loss.backward()
        opt.step()
    return p.data, target


class TestEuclideanOptimizers:
    def test_sgd_converges_on_quadratic(self):
        final, target = _quadratic_step(SGD, lr=0.1)
        np.testing.assert_allclose(final, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        final, target = _quadratic_step(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        final, target = _quadratic_step(Adam, lr=0.1)
        np.testing.assert_allclose(final, target, atol=1e-3)

    def test_gradient_clipping(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=1.0, max_grad_norm=0.1)
        opt.zero_grad()
        (p * 1e6).sum().backward()
        opt.step()
        # Step length is bounded by lr * max_grad_norm.
        assert np.linalg.norm(p.data) <= 0.1 + 1e-12

    def test_none_grad_skipped(self):
        p = Parameter(np.ones(2))
        q = Parameter(np.ones(2))
        opt = SGD([p, q], lr=0.5)
        opt.zero_grad()
        (p * 2.0).sum().backward()  # q gets no gradient
        opt.step()
        np.testing.assert_allclose(q.data, 1.0)
        assert (p.data != 1.0).all()

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestRiemannianSGD:
    def test_lorentz_param_stays_on_manifold(self):
        manifold = Lorentz()
        rng = np.random.default_rng(0)
        p = Parameter.random((8, 5), manifold, rng)
        target = Tensor(manifold.random((8, 5), rng))
        opt = RiemannianSGD([p], lr=0.1)
        for _ in range(50):
            opt.zero_grad()
            Lorentz.sqdist(p, target).sum().backward()
            opt.step()
            np.testing.assert_allclose(Lorentz.inner_np(p.data, p.data),
                                       -1.0, atol=1e-8)

    def test_lorentz_sqdist_decreases(self):
        manifold = Lorentz()
        rng = np.random.default_rng(1)
        p = Parameter.random((4, 4), manifold, rng)
        target = Tensor(manifold.random((4, 4), rng))
        opt = RiemannianSGD([p], lr=0.1)

        def current():
            return Lorentz.sqdist(Tensor(p.data), target).data.sum()

        before = current()
        for _ in range(100):
            opt.zero_grad()
            Lorentz.sqdist(p, target).sum().backward()
            opt.step()
        assert current() < before * 0.1

    def test_poincare_param_stays_in_ball(self):
        ball = PoincareBall()
        rng = np.random.default_rng(2)
        p = Parameter.random((6, 3), ball, rng, scale=0.3)
        target = Tensor(ball.random((6, 3), rng, scale=0.3))
        opt = RiemannianSGD([p], lr=0.5)
        for _ in range(50):
            opt.zero_grad()
            PoincareBall.distance(p, target).sum().backward()
            opt.step()
            assert (np.linalg.norm(p.data, axis=1) < 1.0).all()

    def test_poincare_distance_decreases(self):
        ball = PoincareBall()
        rng = np.random.default_rng(3)
        p = Parameter.random((5, 3), ball, rng, scale=0.4)
        target = Tensor(ball.random((5, 3), rng, scale=0.4))
        opt = RiemannianSGD([p], lr=0.3)

        def current():
            return PoincareBall.distance(Tensor(p.data),
                                         target).data.sum()

        before = current()
        for _ in range(150):
            opt.zero_grad()
            PoincareBall.distance(p, target).sum().backward()
            opt.step()
        assert current() < before * 0.5

    def test_nonfinite_gradient_skipped(self):
        p = Parameter(np.ones(2))
        opt = RiemannianSGD([p], lr=0.1, max_grad_norm=None)
        p.grad = np.array([np.nan, 1.0])
        opt.step()
        np.testing.assert_allclose(p.data, 1.0)  # update skipped

    def test_euclidean_param_reduces_to_sgd(self):
        p = Parameter(np.array([10.0]))
        opt = RiemannianSGD([p], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        # SGD step: 10 - 0.1 * 20 = 8.
        np.testing.assert_allclose(p.data, [8.0])


class TestRiemannianAdam:
    def test_lorentz_constraint_preserved(self):
        manifold = Lorentz()
        rng = np.random.default_rng(4)
        p = Parameter.random((6, 4), manifold, rng)
        target = Tensor(manifold.random((6, 4), rng))
        opt = RiemannianAdam([p], lr=0.05)
        for _ in range(60):
            opt.zero_grad()
            Lorentz.sqdist(p, target).sum().backward()
            opt.step()
            np.testing.assert_allclose(Lorentz.inner_np(p.data, p.data),
                                       -1.0, atol=1e-8)

    def test_converges_on_quadratic(self):
        final, target = _quadratic_step(RiemannianAdam, lr=0.1)
        np.testing.assert_allclose(final, target, atol=1e-2)


class TestParameter:
    def test_random_on_manifold(self):
        p = Parameter.random((5, 4), Lorentz(), np.random.default_rng(0))
        np.testing.assert_allclose(Lorentz.inner_np(p.data, p.data), -1.0,
                                   atol=1e-9)

    def test_requires_grad_set(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_default_manifold_euclidean(self):
        p = Parameter(np.zeros(3))
        assert p.manifold.name == "euclidean"

    def test_repr(self):
        p = Parameter(np.zeros((2, 3)), name="emb")
        assert "emb" in repr(p)
        assert "(2, 3)" in repr(p)
