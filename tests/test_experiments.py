"""Integration tests for the experiment harness (tiny budgets)."""

import numpy as np
import pytest

from repro.core import LogiRecConfig, LogiRecPP
from repro.data import load_dataset, temporal_split
from repro.eval import Evaluator
from repro.experiments import (ABLATIONS, build_model, case_studies,
                               embedding_projection,
                               format_comparison_table, run_ablation,
                               run_comparison, run_lambda_sweep, run_model,
                               tag_separation_scores,
                               tag_types_vs_origin_distance,
                               user_tag_type_distribution)
from repro.experiments.ablation import format_ablation_table
from repro.experiments.cases import format_case_table
from repro.experiments.runner import (ALL_MODEL_NAMES,
                                      significance_vs_best_baseline)


@pytest.fixture(scope="module")
def small():
    ds = load_dataset("ciao", scale=0.5)
    return ds, temporal_split(ds)


@pytest.fixture(scope="module")
def trained_pp(small):
    ds, split = small
    model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                      LogiRecConfig(dim=8, epochs=10, batch_size=2048,
                                    seed=0))
    model.fit(ds, split)
    return model


class TestModelZoo:
    def test_zoo_covers_all_paper_models(self):
        expected = {"BPRMF", "NeuMF", "CML", "SML", "HyperML", "CMLF",
                    "AMF", "TransC", "AGCN", "LightGCN", "HGCF", "GDCF",
                    "HRCF", "LogiRec", "LogiRec++"}
        assert set(ALL_MODEL_NAMES) == expected

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_build_model(self, small, name):
        ds, _ = small
        model = build_model(name, ds)
        assert model.n_users == ds.n_users

    def test_unknown_model_raises(self, small):
        ds, _ = small
        with pytest.raises(KeyError):
            build_model("SVD++", ds)

    def test_run_model_returns_metrics(self, small):
        ds, split = small
        model = build_model("BPRMF", ds)
        model.config.epochs = 5
        evaluator = Evaluator(ds, split)
        model.fit(ds, split)
        result = evaluator.evaluate_test(model)
        assert set(result.means) == {"recall@10", "recall@20",
                                     "ndcg@10", "ndcg@20"}


class TestComparison:
    def test_run_comparison_structure(self):
        results = run_comparison(model_names=["BPRMF", "LogiRec++"],
                                 dataset_names=["ciao"], seeds=(0,),
                                 epochs_override=4)
        assert "ciao" in results
        assert "BPRMF" in results["ciao"]
        mean, std = results["ciao"]["BPRMF"]["recall@10"]
        assert 0.0 <= mean <= 100.0
        assert std == 0.0  # one seed

    def test_format_table_renders(self):
        results = run_comparison(model_names=["BPRMF", "LogiRec++"],
                                 dataset_names=["ciao"], seeds=(0,),
                                 epochs_override=3)
        text = format_comparison_table(results)
        assert "BPRMF" in text
        assert "recall@10" in text

    def test_significance_helper(self):
        per_user = {
            "BPRMF": {"recall@10": np.full(30, 0.1)},
            "LogiRec++": {"recall@10": np.full(30, 0.1) + 0.05},
        }
        out = significance_vs_best_baseline(per_user)
        assert out["best_baseline"] == "BPRMF"
        assert out["significant"]


class TestAblation:
    def test_all_variants_run(self):
        results = run_ablation(dataset_names=["ciao"],
                               variants=["LogiRec++", "w/o L_Ex",
                                         "w/o HGCN", "w/o Hyper",
                                         "w/o LRM"],
                               epochs=4)
        assert set(results["ciao"]) == {"LogiRec++", "w/o L_Ex",
                                        "w/o HGCN", "w/o Hyper",
                                        "w/o LRM"}

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            run_ablation(dataset_names=["ciao"], variants=["w/o magic"],
                         epochs=2)

    def test_ablation_list_matches_paper(self):
        for variant in ["w/o L_Mem", "w/o L_Hie", "w/o L_Ex", "w/o HGCN",
                        "w/o LRM", "w/o Hyper"]:
            assert variant in ABLATIONS

    def test_format_ablation(self):
        results = run_ablation(dataset_names=["ciao"],
                               variants=["LogiRec++"], epochs=2)
        assert "LogiRec++" in format_ablation_table(results)


class TestSweeps:
    def test_lambda_sweep_structure(self):
        results = run_lambda_sweep(dataset_names=["ciao"],
                                   lambdas=(0.0, 1.0), epochs=4)
        assert set(results["ciao"]["series"]) == {0.0, 1.0}
        assert "recall@10" in results["ciao"]["baseline"]


class TestFigures:
    def test_tag_type_distribution(self, small):
        ds, split = small
        out = user_tag_type_distribution(ds, split)
        assert out["hist_values"].sum() == len(out["tag_type_counts"])

    def test_origin_distance_correlation(self, small, trained_pp):
        ds, split = small
        out = tag_types_vs_origin_distance(trained_pp, ds, split)
        assert -1.0 <= out["spearman_corr"] <= 1.0
        assert len(out["tag_types"]) == len(out["distances"])

    def test_embedding_projection_in_disk(self, small, trained_pp):
        ds, _ = small
        out = embedding_projection(trained_pp, ds)
        assert out["coords"].shape == (ds.n_items, 2)
        norms = np.linalg.norm(out["coords"], axis=1)
        assert (norms < 1.0).all()
        assert len(out["labels"]) == ds.n_items

    def test_separation_scores(self, small, trained_pp):
        ds, _ = small
        out = tag_separation_scores(trained_pp, ds)
        assert -1.0 <= out["mean_score"] <= 1.0
        assert len(out["scores"]) == len(out["is_overlapping_pair"])


class TestCases:
    def test_case_studies_rows(self, small, trained_pp):
        ds, split = small
        rows = case_studies(trained_pp, ds, split)
        assert 2 <= len(rows) <= 4
        for row in rows:
            assert set(row) >= {"user", "con", "gr", "alpha",
                                "profile_tags", "recommended_items",
                                "recommended_tags"}

    def test_case_studies_explicit_users(self, small, trained_pp):
        ds, split = small
        rows = case_studies(trained_pp, ds, split, user_ids=[0, 1])
        assert [r["user"] for r in rows] == [0, 1]

    def test_format_case_table(self, small, trained_pp):
        ds, split = small
        rows = case_studies(trained_pp, ds, split, user_ids=[0])
        text = format_case_table(rows)
        assert "CON=" in text and "alpha=" in text
