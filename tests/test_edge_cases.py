"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.core.weighting import consistency_weights
from repro.data import InteractionDataset, TripletSampler, temporal_split
from repro.manifolds import Lorentz, PoincareBall, enclosing_ball
from repro.optim import Adam, Parameter, RiemannianSGD, SGD
from repro.taxonomy import LogicalRelations, Taxonomy, extract_relations
from repro.tensor import Tensor, arcosh, norm


def _minimal_dataset(n_users=3, n_items=6):
    """Smallest dataset that trains: one root tag, two leaves."""
    taxonomy = Taxonomy([-1, 0, 0])
    q = sp.csr_matrix((np.ones(n_items),
                       (np.arange(n_items),
                        1 + np.arange(n_items) % 2)),
                      shape=(n_items, 3))
    users, items, times = [], [], []
    for u in range(n_users):
        for k in range(5):
            users.append(u)
            items.append((u + k) % n_items)
            times.append(k)
    return InteractionDataset(np.array(users), np.array(items),
                              np.array(times), n_users, n_items, q,
                              taxonomy)


class TestDegenerateData:
    def test_minimal_dataset_trains(self):
        ds = _minimal_dataset()
        split = temporal_split(ds, min_interactions=3)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          LogiRecConfig(dim=4, epochs=3, batch_size=64,
                                        seed=0))
        model.fit(ds, split)
        assert np.isfinite(model.score_users(np.array([0]))).all()

    def test_user_with_every_item(self):
        """Negative sampling must not loop forever when a user has
        interacted with (almost) the whole catalog."""
        n_items = 5
        users = np.zeros(n_items, dtype=np.int64)
        items = np.arange(n_items)
        q = sp.csr_matrix(np.ones((n_items, 1)))
        ds = InteractionDataset(users, items, np.arange(n_items), 1,
                                n_items, q, Taxonomy([-1]))
        sampler = TripletSampler(ds, np.arange(n_items),
                                 rng=np.random.default_rng(0))
        # Sampler gives up after bounded rounds and returns *something*.
        batch = next(sampler.epoch(8))
        assert len(batch[0]) == n_items

    def test_dataset_without_exclusions(self):
        taxonomy = Taxonomy([-1, 0])  # single chain: no siblings
        q = sp.csr_matrix(np.ones((4, 2)))
        rel = extract_relations(taxonomy, q)
        assert rel.counts["n_exclusion"] == 0
        con = consistency_weights({0: np.array([0, 1])}, rel, 1)
        np.testing.assert_allclose(con, 1.0)

    def test_logirec_with_no_relations(self):
        """All logic losses empty -> trains as a pure hyperbolic GCN."""
        taxonomy = Taxonomy([-1])
        q = sp.csr_matrix((6, 1))  # no memberships at all
        users = np.repeat(np.arange(3), 5)
        items = np.tile(np.arange(5), 3)
        ds = InteractionDataset(users, items,
                                np.tile(np.arange(5), 3), 3, 6, q,
                                taxonomy)
        split = temporal_split(ds, min_interactions=3)
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags,
                        LogiRecConfig(dim=4, epochs=3, batch_size=32,
                                      lam=1.0, seed=0))
        model.fit(ds, split)
        assert np.isfinite(model.score_users(np.array([0]))).all()

    def test_empty_split_part(self):
        ds = _minimal_dataset()
        split = temporal_split(ds, min_interactions=100)
        assert len(split.valid) == 0
        assert len(split.test) == 0


class TestNumericalFailureInjection:
    def test_optimizer_survives_nan_gradient(self):
        p = Parameter(np.ones(3))
        opt = RiemannianSGD([p], lr=0.1)
        p.grad = np.array([np.nan, np.inf, 1.0])
        opt.step()  # must not corrupt the parameter
        np.testing.assert_allclose(p.data, 1.0)

    def test_arcosh_far_below_domain(self):
        x = Tensor(np.array([-100.0, 0.0, 0.999]), requires_grad=True)
        out = arcosh(x)
        assert np.isfinite(out.data).all()
        out.sum().backward()
        assert np.isfinite(x.grad).all()

    def test_poincare_distance_at_boundary(self):
        ball = PoincareBall()
        x = ball.project(np.array([[1.0, 0.0]]))  # clipped to boundary
        y = np.array([[0.0, 0.0]])
        d = PoincareBall.distance(Tensor(x), Tensor(y))
        assert np.isfinite(d.data).all()

    def test_lorentz_distance_identical_points(self):
        manifold = Lorentz()
        x = manifold.random((4, 4), np.random.default_rng(0))
        d = Lorentz.distance(Tensor(x), Tensor(x.copy()))
        assert np.isfinite(d.data).all()
        assert (d.data >= 0).all()

    def test_enclosing_ball_near_origin_center(self):
        """Centers below CENTER_MIN_NORM are clamped, not exploded."""
        c = Tensor(np.array([[1e-9, 0.0]]), requires_grad=True)
        o, r = enclosing_ball(c)
        assert np.isfinite(o.data).all()
        assert np.isfinite(r.data).all()
        (o.sum() + r.sum()).backward()
        assert np.isfinite(c.grad).all()

    def test_norm_gradient_zero_vector(self):
        x = Tensor(np.zeros((3, 4)), requires_grad=True)
        norm(x, axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, 0.0)

    def test_adam_extreme_gradients(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1, max_grad_norm=None)
        for scale in (1e12, 1e-12, 1e12):
            opt.zero_grad()
            (p * scale + scale).sum().backward()
            opt.step()
        assert np.isfinite(p.data).all()

    def test_sgd_huge_loss_with_clipping(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1, max_grad_norm=1.0)
        opt.zero_grad()
        (p * 1e30).sum().backward()
        opt.step()
        assert np.isfinite(p.data).all()
        assert np.linalg.norm(p.data) <= 0.1 + 1e-9


class TestRelationEdgeCases:
    def test_relations_with_empty_arrays(self):
        rel = LogicalRelations(
            membership=np.zeros((0, 2), dtype=np.int64),
            hierarchy=np.zeros((0, 2), dtype=np.int64),
            exclusion=np.zeros((0, 2), dtype=np.int64))
        assert rel.counts["n_membership"] == 0
        assert rel.exclusion_set() == set()

    def test_single_tag_taxonomy(self):
        taxonomy = Taxonomy([-1], names=["<All>"])
        assert taxonomy.depth == 1
        assert taxonomy.siblings(0) == []
        q = sp.csr_matrix(np.ones((3, 1)))
        rel = extract_relations(taxonomy, q)
        assert rel.counts["n_hierarchy"] == 0
        assert rel.counts["n_exclusion"] == 0

    def test_deep_chain_taxonomy(self):
        """A 50-deep chain: level computation must not blow up."""
        parents = [-1] + list(range(49))
        taxonomy = Taxonomy(parents)
        assert taxonomy.depth == 50
        assert taxonomy.ancestors(49) == list(range(48, -1, -1))

    def test_wide_taxonomy_exclusions_quadratic(self):
        """100 sibling leaves under one root -> C(100,2) exclusions."""
        taxonomy = Taxonomy([-1] + [0] * 100)
        pairs, levels = __import__(
            "repro.taxonomy.relations",
            fromlist=["extract_exclusions"]).extract_exclusions(taxonomy)
        assert len(pairs) == 100 * 99 // 2
        assert (levels == 2).all()
