"""Tests for the four LogiRec objectives and the hyperbolic GCN."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (exclusion_loss, hierarchy_loss, hyperbolic_gcn,
                        euclidean_gcn, membership_loss,
                        recommendation_loss)
from repro.core.losses import euclidean_recommendation_loss
from repro.manifolds import Lorentz, enclosing_ball
from repro.manifolds.hyperplane import enclosing_ball_np
from repro.optim import Parameter, RiemannianSGD
from repro.tensor import Tensor

RNG = np.random.default_rng(11)


def _tag_balls(centers):
    return enclosing_ball(Tensor(centers) if not isinstance(
        centers, Tensor) else centers)


class TestMembershipLoss:
    def test_zero_when_satisfied(self):
        # Item at the ball's center direction, well inside.
        center = np.array([[0.5, 0.0]])
        o, r = enclosing_ball_np(center)
        inside_point = o[0] * 0.99999 - np.array([r[0, 0] * 0.9, 0.0])
        # Construct a point inside B(o, r): o - 0.9r along x.
        item = (o - np.array([[r[0, 0] * 0.5, 0.0]]))
        # Clip into the unit ball for realism.
        item = item / max(np.linalg.norm(item) * 1.2, 1.0)
        # Guarantee: recompute and only assert hinge >= 0 and equals
        # violation formula.
        loss = membership_loss(Tensor(item), _tag_balls(center),
                               np.array([[0, 0]]))
        expected = max(0.0, np.linalg.norm(item - o) - r[0, 0])
        assert loss.item() == pytest.approx(expected, abs=1e-9)

    def test_positive_when_outside(self):
        center = np.array([[0.5, 0.0]])
        item = np.array([[-0.9, 0.0]])  # far side of the ball
        loss = membership_loss(Tensor(item), _tag_balls(center),
                               np.array([[0, 0]]))
        assert loss.item() > 0

    def test_empty_pairs(self):
        loss = membership_loss(Tensor(np.zeros((2, 2))),
                               _tag_balls(np.array([[0.5, 0.0]])),
                               np.zeros((0, 2), dtype=np.int64))
        assert loss.item() == 0.0

    def test_gradient_pulls_item_into_region(self):
        center = np.array([[0.5, 0.0]])
        item = Parameter(np.array([[-0.5, 0.0]]))
        o, r = enclosing_ball_np(center)
        before = np.linalg.norm(item.data - o) - r[0, 0]
        opt = RiemannianSGD([item], lr=0.1)
        for _ in range(50):
            opt.zero_grad()
            membership_loss(item, _tag_balls(center),
                            np.array([[0, 0]])).backward()
            opt.step()
        after = np.linalg.norm(item.data - o) - r[0, 0]
        assert after < before


class TestHierarchyLoss:
    def test_zero_when_contained(self):
        # Parent near origin (big radius), child farther out (small).
        centers = np.array([[0.2, 0.0], [0.21, 0.0]])
        o, r = enclosing_ball_np(centers)
        gap = np.linalg.norm(o[0] - o[1])
        if gap + r[1, 0] < r[0, 0]:
            loss = hierarchy_loss(_tag_balls(centers),
                                  np.array([[0, 1]]))
            assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_positive_when_violated(self):
        # Parent far out (small ball), child near origin (huge ball):
        # containment impossible.
        centers = np.array([[0.9, 0.0], [0.05, 0.0]])
        loss = hierarchy_loss(_tag_balls(centers), np.array([[0, 1]]))
        assert loss.item() > 0

    def test_training_restores_containment(self):
        centers = Parameter(np.array([[0.8, 0.0], [0.1, 0.0]]))
        pairs = np.array([[0, 1]])
        opt = RiemannianSGD([centers], lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = hierarchy_loss(enclosing_ball(centers), pairs)
            if loss.item() < 1e-6:
                break
            loss.backward()
            opt.step()
        assert loss.item() < 0.05


class TestExclusionLoss:
    def test_zero_when_disjoint(self):
        # Opposite directions, far out: small balls, far apart.
        centers = np.array([[0.8, 0.0], [-0.8, 0.0]])
        loss = exclusion_loss(_tag_balls(centers), np.array([[0, 1]]))
        assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_positive_when_overlapping(self):
        centers = np.array([[0.3, 0.0], [0.31, 0.0]])
        loss = exclusion_loss(_tag_balls(centers), np.array([[0, 1]]))
        assert loss.item() > 0

    def test_pair_weights_scale_loss(self):
        centers = np.array([[0.3, 0.0], [0.31, 0.0]])
        balls = _tag_balls(centers)
        pairs = np.array([[0, 1]])
        base = exclusion_loss(balls, pairs).item()
        halved = exclusion_loss(balls, pairs,
                                pair_weights=np.array([0.5])).item()
        assert halved == pytest.approx(base * 0.5)

    def test_training_separates_balls(self):
        centers = Parameter(np.array([[0.4, 0.05], [0.4, -0.05]]))
        pairs = np.array([[0, 1]])
        opt = RiemannianSGD([centers], lr=0.05)
        start = exclusion_loss(enclosing_ball(centers), pairs).item()
        assert start > 0
        for _ in range(300):
            opt.zero_grad()
            loss = exclusion_loss(enclosing_ball(centers), pairs)
            if loss.item() < 1e-8:
                break
            loss.backward()
            opt.step()
        assert loss.item() < start * 0.5


class TestRecommendationLoss:
    def _triplet(self):
        manifold = Lorentz()
        u = Tensor(manifold.random((6, 5), RNG))
        p = Tensor(manifold.random((6, 5), RNG))
        q = Tensor(manifold.random((6, 5), RNG))
        return u, p, q

    def test_nonnegative(self):
        u, p, q = self._triplet()
        assert recommendation_loss(u, p, q, margin=0.1).item() >= 0

    def test_zero_when_positive_much_closer(self):
        manifold = Lorentz()
        u_data = manifold.random((3, 4), RNG)
        far = manifold.random((3, 4), np.random.default_rng(99),
                              scale=3.0)
        loss = recommendation_loss(Tensor(u_data), Tensor(u_data),
                                   Tensor(far), margin=0.0)
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_user_weights_applied(self):
        u, p, q = self._triplet()
        base = recommendation_loss(u, p, q, margin=1.0).item()
        doubled = recommendation_loss(
            u, p, q, margin=1.0, user_weights=np.full(6, 2.0)).item()
        assert doubled == pytest.approx(base * 2.0, rel=1e-9)

    def test_margin_monotonicity(self):
        u, p, q = self._triplet()
        small = recommendation_loss(u, p, q, margin=0.1).item()
        large = recommendation_loss(u, p, q, margin=5.0).item()
        assert large >= small

    def test_euclidean_variant(self):
        u = Tensor(RNG.normal(size=(4, 3)))
        p = Tensor(RNG.normal(size=(4, 3)))
        q = Tensor(RNG.normal(size=(4, 3)))
        loss = euclidean_recommendation_loss(u, p, q, margin=0.5)
        assert loss.item() >= 0
        weighted = euclidean_recommendation_loss(
            u, p, q, margin=0.5, user_weights=np.zeros(4))
        assert weighted.item() == 0.0


class TestHyperbolicGCN:
    def _setup(self, n_users=6, n_items=8, d=4):
        manifold = Lorentz()
        users = Tensor(manifold.random((n_users, d + 1), RNG))
        items = Tensor(manifold.random((n_items, d + 1), RNG))
        mat = sp.random(n_users, n_items, density=0.4, random_state=1,
                        format="csr")
        mat.data[:] = 1.0
        deg_u = np.maximum(np.asarray(mat.sum(axis=1)).ravel(), 1)
        deg_i = np.maximum(np.asarray(mat.sum(axis=0)).ravel(), 1)
        a_ui = sp.diags(1.0 / deg_u) @ mat
        a_iu = sp.diags(1.0 / deg_i) @ mat.T
        return users, items, a_ui.tocsr(), a_iu.tocsr()

    def test_outputs_on_hyperboloid(self):
        users, items, a_ui, a_iu = self._setup()
        out_u, out_v = hyperbolic_gcn(users, items, a_ui, a_iu, 3)
        np.testing.assert_allclose(
            Lorentz.inner_np(out_u.data, out_u.data), -1.0, atol=1e-8)
        np.testing.assert_allclose(
            Lorentz.inner_np(out_v.data, out_v.data), -1.0, atol=1e-8)

    def test_zero_layers_identity(self):
        users, items, a_ui, a_iu = self._setup()
        out_u, out_v = hyperbolic_gcn(users, items, a_ui, a_iu, 0)
        np.testing.assert_allclose(out_u.data, users.data)
        np.testing.assert_allclose(out_v.data, items.data)

    def test_gradient_flows_to_inputs(self):
        users, items, a_ui, a_iu = self._setup()
        users.requires_grad = True
        out_u, out_v = hyperbolic_gcn(users, items, a_ui, a_iu, 2)
        Lorentz.sqdist(out_u[0:1], out_v[0:1]).sum().backward()
        assert users.grad is not None
        assert np.isfinite(users.grad).all()

    def test_isolated_node_unchanged_direction(self):
        """A user with no interactions keeps its own (scaled) embedding."""
        users, items, a_ui, a_iu = self._setup()
        a_ui_z = a_ui.tolil()
        a_ui_z[0, :] = 0.0
        out_u, _ = hyperbolic_gcn(users, items, a_ui_z.tocsr(), a_iu, 2)
        z0 = Lorentz.logmap0(users).data[0, 1:]
        z_out = Lorentz.logmap0(out_u).data[0, 1:]
        cos = z0 @ z_out / (np.linalg.norm(z0) * np.linalg.norm(z_out))
        assert cos == pytest.approx(1.0, abs=1e-9)

    def test_euclidean_gcn_matches_manual(self):
        u = Tensor(np.ones((2, 3)))
        v = Tensor(np.ones((3, 3)) * 2.0)
        a_ui = sp.csr_matrix(np.array([[1.0, 0, 0], [0, 0.5, 0.5]]))
        a_iu = sp.csr_matrix(np.array([[1.0, 0], [0, 1.0], [0, 1.0]]))
        out_u, out_v = euclidean_gcn(u, v, a_ui, a_iu, 1)
        # z_u^1 = z_u^0 + A z_v^0 = 1 + 2 = 3 everywhere; sum/1 = 3.
        np.testing.assert_allclose(out_u.data, 3.0)
