"""Multi-worker serving front-end: sharding, admission, supervision.

The load-bearing guarantees under test:

* **Sharding is invisible** — a shard attached from shared memory
  scores bit-identically to the original index (embeddings, CSR seen
  masks, popularity), including empty shards and single-user shards.
* **An admitted request always gets an answer** — worker kills and
  stalls surface as degraded popularity fallbacks and supervisor
  restarts, never as client-visible errors; graceful drain resolves
  every in-flight future.
* **Deadlines propagate end to end** — dead-on-arrival requests are
  rejected at admission, requests that expire waiting in a queue are
  shed without scoring, and requests that expire mid-scoring feed the
  engine's ``timeouts`` counter.

The worker fleet uses real forked processes and shared memory, so the
process-spawning tests share one module-scoped index and keep their
request counts small; timing margins are generous for 1-CPU CI boxes.
"""

import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.robust import FaultPlan, FaultSpec
from repro.serve import RecommendService, ServiceConfig
from repro.serve.engine import popularity_items
from repro.serve.frontend import (FrontendConfig, ServingFrontend,
                                  attach_shard, create_shards,
                                  estimate_capacity, run_open_loop,
                                  shard_boundaries)
from repro.serve.index import RetrievalIndex


def toy_index(n_users=50, n_items=40, dim=8, seed=0) -> RetrievalIndex:
    """A small ``dot``-kind index with random CSR seen lists.

    Users whose drawn interaction count is zero exercise the
    zero-interaction regression: their CSR row is empty and scoring
    must not mask anything.
    """
    rng = np.random.default_rng(seed)
    user = rng.normal(size=(n_users, dim))
    item = rng.normal(size=(n_items, dim))
    indptr = [0]
    indices = []
    for _ in range(n_users):
        seen = rng.choice(n_items, size=rng.integers(0, 5), replace=False)
        indices.extend(sorted(int(i) for i in seen))
        indptr.append(len(indices))
    counts = np.bincount(np.array(indices, dtype=np.int64),
                         minlength=n_items)
    popularity = np.argsort(-counts, kind="stable").astype(np.int64)
    return RetrievalIndex(
        kind="dot", arrays={"user": user, "item": item}, scalars={},
        train_indptr=np.array(indptr, dtype=np.int64),
        train_indices=np.array(indices, dtype=np.int64),
        popularity=popularity,
        meta={"n_users": n_users, "n_items": n_items})


@pytest.fixture(scope="module")
def index() -> RetrievalIndex:
    return toy_index()


def _config(**overrides) -> FrontendConfig:
    base = dict(n_workers=2, service=ServiceConfig(k=10, cache_size=0),
                batch_window_ms=1.0, start_timeout_s=60.0)
    base.update(overrides)
    return FrontendConfig(**base)


# ----------------------------------------------------------------------
# Sharding: boundaries, bit-identity, hostile shapes
# ----------------------------------------------------------------------
class TestSharding:
    def test_boundaries_partition_the_user_space(self):
        for n_users, n_shards in [(50, 2), (7, 3), (3, 5), (1, 1)]:
            bounds = shard_boundaries(n_users, n_shards)
            assert len(bounds) == n_shards
            assert bounds[0][0] == 0 and bounds[-1][1] == n_users
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo
        with pytest.raises(ValueError):
            shard_boundaries(10, 0)

    def test_attached_shards_score_bit_identically(self, index):
        arena = create_shards(index, 3)
        try:
            for spec in arena.layout.shards:
                shard = attach_shard(arena.layout, spec.shard_id)
                try:
                    for uid in range(spec.lo, spec.hi):
                        local = uid - spec.lo
                        assert np.array_equal(
                            shard.index.score_user(local),
                            index.score_user(uid))
                        assert np.array_equal(
                            shard.index.seen_items(local),
                            index.seen_items(uid))
                    assert np.array_equal(shard.index.popularity,
                                          index.popularity)
                finally:
                    shard.close()
        finally:
            arena.close()

    def test_more_shards_than_users(self):
        tiny = toy_index(n_users=3, n_items=10)
        arena = create_shards(tiny, 5)
        try:
            layout = arena.layout
            populated = [s for s in layout.shards if s.n_users]
            empty = [s for s in layout.shards if not s.n_users]
            assert len(populated) == 3 and len(empty) == 2
            # Single-user shards score their one row correctly ...
            for spec in populated:
                shard = attach_shard(layout, spec.shard_id)
                try:
                    assert np.array_equal(shard.index.score_user(0),
                                          tiny.score_user(spec.lo))
                finally:
                    shard.close()
            # ... and empty shards attach without blowing up.
            shard = attach_shard(layout, empty[0].shard_id)
            try:
                assert shard.index.n_users == 0
            finally:
                shard.close()
        finally:
            arena.close()

    def test_shard_for_user(self, index):
        arena = create_shards(index, 4)
        try:
            layout = arena.layout
            for uid in range(index.n_users):
                spec = layout.shards[layout.shard_for_user(uid)]
                assert spec.lo <= uid < spec.hi
            with pytest.raises(KeyError):
                layout.shard_for_user(index.n_users)
        finally:
            arena.close()


# ----------------------------------------------------------------------
# Front-end parity and admission
# ----------------------------------------------------------------------
class TestFrontend:
    def test_answers_match_the_inprocess_engine(self, index):
        reference = RecommendService(index,
                                     ServiceConfig(k=10, cache_size=0))
        expected = reference.query_batch(range(index.n_users))
        with ServingFrontend(index, _config()) as frontend:
            futures = [frontend.submit(uid, 10)
                       for uid in range(index.n_users)]
            for uid, future in enumerate(futures):
                resolution = future.result(timeout=30.0)
                assert resolution["status"] == "ok"
                result = resolution["result"]
                assert result["items"] == expected[uid]["items"]
                assert result["source"] == "index"
                assert not result["degraded"]

    def test_duplicate_concurrent_requests(self, index):
        """The same (user, k) in flight many times answers identically."""
        with ServingFrontend(index, _config()) as frontend:
            futures = [frontend.submit(7, 10) for _ in range(32)]
            items = {tuple(f.result(30.0)["result"]["items"])
                     for f in futures}
            assert len(items) == 1

    def test_unknown_user_served_at_the_edge(self, index):
        with ServingFrontend(index, _config()) as frontend:
            resolution = frontend.query(index.n_users + 5, 10)
            assert resolution["status"] == "ok"
            result = resolution["result"]
            assert result["source"] == "popularity"
            assert result["items"] == [
                int(i) for i in index.popularity[:10]]
            assert frontend.counters["unknown_users"] == 1

    def test_queue_full_sheds(self, index):
        # One-slot queue, huge batch window: the second concurrent
        # request must shed with queue_full while the first waits.
        config = _config(max_queue_depth=1, batch_window_ms=200.0)
        with ServingFrontend(index, config) as frontend:
            first = frontend.submit(0, 10)
            second = frontend.submit(1, 10)
            assert second.result(1.0) == {"status": "shed",
                                          "reason": "queue_full"}
            assert first.result(30.0)["status"] == "ok"
            assert frontend.counters["shed_queue_full"] == 1
            assert frontend.counters["shed_requests"] == 1

    def test_fleet_health_aggregates_breakers(self, index):
        with ServingFrontend(index, _config()) as frontend:
            for uid in range(10):
                frontend.query(uid, 10)
            fleet = frontend.supervisor.fleet_health()
            assert fleet["n_workers"] == 2 and fleet["ready"] == 2
            assert fleet["breaker_states"] == {"closed": 2}
            assert not fleet["any_breaker_open"]
            snaps = fleet["shards"]
            assert set(snaps) == {"0", "1"}
            for snap in snaps.values():
                assert snap["state"] == "ready"
                assert snap["breaker"]["state"] == "closed"


# ----------------------------------------------------------------------
# Deadline propagation matrix
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_dead_on_arrival_rejected_at_admission(self, index):
        with ServingFrontend(index, _config()) as frontend:
            resolution = frontend.query(0, 10, deadline_ms=0.0)
            assert resolution == {"status": "shed", "reason": "deadline"}
            assert frontend.counters["shed_deadline"] == 1
            # Nothing was admitted, so nothing reached a worker.
            assert frontend.counters["admitted"] == 0

    def test_expiry_in_queue_sheds_without_scoring(self, index):
        # The batch window (150 ms) outlives the deadline (30 ms): the
        # dispatcher must shed the request before it touches a worker.
        config = _config(batch_window_ms=150.0)
        with ServingFrontend(index, config) as frontend:
            resolution = frontend.query(0, 10, deadline_ms=30.0)
            assert resolution == {"status": "shed", "reason": "deadline"}
            time.sleep(0.3)   # let worker heartbeats report stats
            fleet = frontend.supervisor.fleet_health()
            scored = sum(s["stats"].get("requests", 0)
                         for s in fleet["shards"].values())
            assert scored == 0

    def test_expiry_mid_scoring_counts_a_timeout(self, index):
        # Engine-level leg of the matrix: the deadline the front-end
        # threads through query_batch() is checked between retry
        # attempts, so an expired one degrades and counts a timeout.
        engine = RecommendService(index, ServiceConfig(k=10,
                                                       cache_size=0))
        past = time.monotonic() - 1.0
        results = engine.query_batch([0, 1], deadlines=[past, None])
        assert engine.stats["timeouts"] == 1
        assert results[0]["degraded"] and results[0]["fallback"]
        assert results[1]["source"] == "index"


# ----------------------------------------------------------------------
# Worker failure drills: kill, stall, failover
# ----------------------------------------------------------------------
class TestSupervision:
    def test_worker_kill_restart_and_failover(self, index):
        plan = FaultPlan([FaultSpec("worker_kill", after_requests=5,
                                    worker=0)])
        with ServingFrontend(index, _config(),
                             faults=plan) as frontend:
            lo, hi = 0, index.n_users // 2   # shard 0's user range
            futures = [frontend.submit(lo + (i % (hi - lo)), 10)
                       for i in range(30)]
            for future in futures:
                resolution = future.result(timeout=30.0)
                assert resolution["status"] == "ok"   # never an error
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                fleet = frontend.supervisor.fleet_health()
                if fleet["ready"] == 2:
                    break
                time.sleep(0.05)
            assert fleet["ready"] == 2, "fleet never recovered"
            assert frontend.supervisor.total_restarts == 1
            assert frontend.counters["degraded_fallbacks"] > 0
            # The replacement serves real scores again (the once-only
            # kill fault must not re-fire in the new generation).
            result = frontend.query(lo, 10, deadline_ms=None)["result"]
            assert result["source"] == "index"

    def test_worker_stall_detected_by_heartbeat_age(self, index):
        plan = FaultPlan([FaultSpec("worker_stall", after_requests=3,
                                    delay_s=5.0, worker=0)])
        config = _config(stall_after_s=0.5)
        with ServingFrontend(index, config, faults=plan) as frontend:
            futures = [frontend.submit(i % 5, 10, deadline_ms=None)
                       for i in range(10)]
            for future in futures:
                assert future.result(timeout=30.0)["status"] == "ok"
            assert frontend.supervisor.total_restarts >= 1

    def test_graceful_drain_resolves_every_inflight(self, index):
        plan = FaultPlan([FaultSpec("slow_shard", rate=1.0,
                                    delay_s=0.05)])
        with ServingFrontend(index, _config(),
                             faults=plan) as frontend:
            futures = [frontend.submit(i, 10, deadline_ms=None)
                       for i in range(20)]
            drained = frontend.drain(timeout=30.0)
            assert drained >= 0
            for future in futures:
                assert future.done()
                assert future.result()["status"] == "ok"
            assert frontend.submit(0, 10).result() == {
                "status": "draining"}
            assert frontend.counters["draining_rejects"] == 1


# ----------------------------------------------------------------------
# Telemetry: queue-wait + latency histograms (single-writer parent)
# ----------------------------------------------------------------------
def test_histograms_include_queue_wait(index, tmp_path):
    run = obs.start_run(run_dir=tmp_path)
    try:
        with ServingFrontend(index, _config()) as frontend:
            for uid in range(20):
                frontend.query(uid, 10)
    finally:
        obs.finish_run()
    manifest = obs.read_manifest(run.dir)
    hdr = manifest["metrics"]["hdr"]
    assert hdr["serve/latency_ms"]["count"] == 20
    assert hdr["serve/queue_wait_ms"]["count"] == 20
    # Queue wait is a component of latency, never exceeds it.
    assert (hdr["serve/queue_wait_ms"]["p50"]
            <= hdr["serve/latency_ms"]["p99"])
    assert manifest["metrics"]["counters"]["serve/requests"] == 20


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
def test_open_loop_classifies_every_offer(index):
    with ServingFrontend(index, _config()) as frontend:
        capacity = estimate_capacity(frontend, range(index.n_users), 10,
                                     duration_s=0.3)
        assert capacity > 0
        outcome = run_open_loop(frontend, range(index.n_users), 10,
                                offered_qps=50.0, duration_s=0.5)
    assert outcome["n_offered"] == 25
    accounted = (outcome["completed"] + outcome["shed"]
                 + outcome["draining"] + outcome["hard_failures"])
    assert accounted == outcome["n_offered"]
    assert outcome["hard_failures"] == 0
    assert outcome["p99_ms"] is None or outcome["p99_ms"] > 0


# ----------------------------------------------------------------------
# HTTP edge (in-process asyncio server)
# ----------------------------------------------------------------------
def test_http_server_serves_and_drains(index):
    import asyncio

    from repro.serve.frontend import HttpFrontendServer

    frontend = ServingFrontend(index, _config()).start()
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        server = HttpFrontendServer(frontend, port=0)
        port = asyncio.run_coroutine_threadsafe(
            server.start(), loop).result(timeout=30.0)
        drain_task = asyncio.run_coroutine_threadsafe(
            server.serve_until_drained(), loop)

        def _get(path):
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}",
                    timeout=10.0) as response:
                return response.status, response.read()

        status, body = _get("/recommend?user=3&k=5")
        assert status == 200 and b'"items"' in body
        status, _ = _get("/health")
        assert status == 200
        status, body = _get("/status")
        assert status == 200 and b'"fleet"' in body
        with pytest.raises(urllib.error.HTTPError) as err:
            _get("/recommend?user=abc")
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _get("/nope")
        assert err.value.code == 404

        loop.call_soon_threadsafe(server.request_drain)
        assert drain_task.result(timeout=30.0) is None
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        loop.close()
        frontend.stop()


# ----------------------------------------------------------------------
# Fault-spec surface for the process kinds
# ----------------------------------------------------------------------
class TestProcessFaultSpecs:
    def test_kill_and_stall_require_after_requests(self):
        with pytest.raises(ValueError):
            FaultSpec("worker_kill")
        with pytest.raises(ValueError):
            FaultSpec("worker_stall", after_requests=3)   # no delay
        with pytest.raises(ValueError):
            FaultSpec("slow_shard", rate=0.5)             # no delay
        with pytest.raises(ValueError):
            FaultSpec("slow_shard", rate=1.5, delay_s=0.1)

    def test_valid_specs_round_out(self):
        kill = FaultSpec("worker_kill", after_requests=5, worker=1)
        assert not kill.exhausted()
        kill.fired = 1
        assert kill.exhausted()           # once-by-default, like kills
        slow = FaultSpec("slow_shard", rate=0.2, delay_s=0.01, shard=0)
        assert slow.shard == 0 and not slow.exhausted()
