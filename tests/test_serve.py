"""Serving subsystem: checkpoints, retrieval index, inference engine, CLI.

The two load-bearing guarantees under test:

* **Checkpoint round trips are bit-exact** — for every registered model,
  a saved-then-loaded model returns identical ``recommend`` lists and
  identical ``score_users`` matrices, and *resuming training* from the
  checkpoint reproduces the live model's continued loss history
  bit-for-bit (parameters + RNG state + loss history all restored).
* **Serving equals the live model** — ``RecommendService`` responses are
  exactly ``model.recommend(u, k, exclude=<train items>)``, with the
  cache on or off, because index and model share the same score-formula
  functions and the engine scores per-row with the same shapes.
"""

import json

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.experiments.runner import ALL_MODEL_NAMES, build_model
from repro.serve import (CheckpointError, IndexFormatError,
                         RecommendService, ServiceConfig, build_index,
                         load_checkpoint, load_index, save_checkpoint)


@pytest.fixture(scope="module")
def setup():
    ds = generate_dataset(SyntheticConfig(n_users=40, n_items=60,
                                          depth=3, branching=3,
                                          mean_interactions=10.0, seed=4))
    return ds, temporal_split(ds)


def _trained(name, ds, split, epochs=2):
    model = build_model(name, ds, seed=0)
    model.config.epochs = epochs
    model.fit(ds, split)
    return model


# ----------------------------------------------------------------------
# Checkpoint round trips, parametrized over the full model registry
# ----------------------------------------------------------------------
class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_scores_and_resume_bit_identical(self, setup, tmp_path,
                                             name):
        ds, split = setup
        model = _trained(name, ds, split)
        path = save_checkpoint(model, tmp_path / "ck", dataset=ds)
        loaded = load_checkpoint(path, dataset=ds, split=split)

        users = np.arange(ds.n_users)
        assert np.array_equal(model.score_users(users),
                              loaded.score_users(users))
        for uid in range(0, ds.n_users, 7):
            assert np.array_equal(model.recommend(uid, 10),
                                  loaded.recommend(uid, 10))
        assert loaded.loss_history == model.loss_history

        # Resume: the loaded model continues training exactly as the
        # never-serialized live model does (same RNG stream, same
        # parameters, same appended losses).
        model.fit(ds, split)
        loaded.fit(ds, split)
        assert loaded.loss_history == model.loss_history
        assert np.array_equal(model.score_users(users),
                              loaded.score_users(users))

    def test_checkpoint_records_provenance(self, setup, tmp_path):
        ds, split = setup
        model = _trained("BPRMF", ds, split)
        path = save_checkpoint(model, tmp_path / "ck", dataset=ds)
        meta = json.loads((path / "checkpoint.json").read_text())
        assert meta["format_version"] == 1
        assert meta["model_class"] == "BPRMF"
        assert meta["dataset"]["n_users"] == ds.n_users
        assert meta["extra_init"] == {"l2": model.l2}


class TestCheckpointRejection:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "nope")

    def test_version_mismatch(self, setup, tmp_path):
        ds, split = setup
        path = save_checkpoint(_trained("BPRMF", ds, split),
                               tmp_path / "ck", dataset=ds)
        meta_path = path / "checkpoint.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="format_version"):
            load_checkpoint(path)

    def test_corrupted_arrays(self, setup, tmp_path):
        ds, split = setup
        path = save_checkpoint(_trained("BPRMF", ds, split),
                               tmp_path / "ck", dataset=ds)
        arrays_path = path / "arrays.npz"
        blob = bytearray(arrays_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        arrays_path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="corrupted"):
            load_checkpoint(path)

    def test_unknown_model_class(self, setup, tmp_path):
        ds, split = setup
        path = save_checkpoint(_trained("BPRMF", ds, split),
                               tmp_path / "ck", dataset=ds)
        meta_path = path / "checkpoint.json"
        meta = json.loads(meta_path.read_text())
        meta["model_class"] = "NotAModel"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="unknown model class"):
            load_checkpoint(path)

    def test_truncated_json(self, setup, tmp_path):
        ds, split = setup
        path = save_checkpoint(_trained("BPRMF", ds, split),
                               tmp_path / "ck", dataset=ds)
        (path / "checkpoint.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)


# ----------------------------------------------------------------------
# Retrieval index + engine
# ----------------------------------------------------------------------
class TestIndexAndEngine:
    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_service_matches_live_recommend(self, setup, tmp_path, name):
        """Engine responses are bit-identical to the live model's,
        through an index save/load round trip, cache on or off."""
        ds, split = setup
        model = _trained(name, ds, split)
        index = build_index(model, ds, split)
        index.save(tmp_path / "idx")
        index = load_index(tmp_path / "idx")
        train_items = ds.items_of_user(split.train)
        users = list(range(0, ds.n_users, 5))
        for cache_size in (0, 128):
            service = RecommendService(
                index, ServiceConfig(k=10, cache_size=cache_size))
            responses = service.query_batch(users)
            for uid, response in zip(users, responses):
                live = model.recommend(uid, 10,
                                       exclude=train_items.get(uid, ()))
                assert response["items"] == [int(i) for i in live], (
                    f"{name}: user {uid} diverges from live recommend")
                assert not response["fallback"]
            # Second pass: served from cache (when enabled), same items.
            again = service.query_batch(users)
            assert [r["items"] for r in again] == [
                r["items"] for r in responses]
            assert all(r["cached"] for r in again) == (cache_size > 0)

    def test_unknown_user_popularity_fallback(self, setup):
        ds, split = setup
        model = _trained("BPRMF", ds, split)
        index = build_index(model, ds, split)
        service = RecommendService(index, ServiceConfig(k=5))
        for bad in (-1, ds.n_users, 10**9):
            response = service.query(bad)
            assert response["fallback"]
            assert response["items"] == [int(i) for i in
                                         index.popularity[:5]]
        assert service.stats["fallbacks"] == 3

    def test_cache_eviction_and_counters(self, setup):
        ds, split = setup
        model = _trained("BPRMF", ds, split)
        index = build_index(model, ds, split)
        service = RecommendService(index, ServiceConfig(k=5,
                                                        cache_size=4))
        service.query_batch(range(8))
        info = service.cache_info()
        assert info["size"] == 4
        assert info["cache_misses"] == 8
        service.query(7)                       # still cached
        assert service.stats["cache_hits"] == 1
        service.query(0)                       # evicted -> rescored
        assert service.stats["cache_misses"] == 9

    def test_index_corruption_rejected(self, setup, tmp_path):
        ds, split = setup
        model = _trained("BPRMF", ds, split)
        build_index(model, ds, split).save(tmp_path / "idx")
        npz = tmp_path / "idx" / "index.npz"
        blob = bytearray(npz.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        npz.write_bytes(bytes(blob))
        with pytest.raises(IndexFormatError, match="corrupted"):
            load_index(tmp_path / "idx")

    def test_missing_index(self, tmp_path):
        with pytest.raises(IndexFormatError, match="no index"):
            load_index(tmp_path / "nope")


# ----------------------------------------------------------------------
# CLI flow + friendly obs errors
# ----------------------------------------------------------------------
class TestCli:
    def test_train_save_export_query_flow(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["train", "BPRMF", "--dataset", "ciao", "--epochs",
                     "2", "--save", "ck"]) == 0
        out = capsys.readouterr().out
        assert "[checkpoint] saved to ck" in out
        assert main(["serve", "export", "ck"]) == 0
        assert "written to" in capsys.readouterr().out
        assert main(["serve", "query", "ck/index",
                     "--users", "0,1,2,3,4"]) == 0
        first = capsys.readouterr().out
        assert first.count("user ") == 5
        assert main(["serve", "query", "ck/index",
                     "--users", "0,1,2,3,4", "--no-cache"]) == 0
        assert capsys.readouterr().out == first  # deterministic

    def test_serve_errors_are_friendly(self, tmp_path, capsys,
                                       monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["serve", "export", "nope"]) == 2
        assert "no checkpoint" in capsys.readouterr().err
        assert main(["serve", "query", "nope", "--users", "0"]) == 2
        assert "no index" in capsys.readouterr().err

    def test_obs_missing_and_empty_run_dirs(self, tmp_path, capsys,
                                            monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["obs", "summarize", "missing"]) == 2
        assert "no run directory" in capsys.readouterr().err
        assert main(["obs", "list", "--run-dir", "missing"]) == 2
        assert "no run directory" in capsys.readouterr().err
        (tmp_path / "empty").mkdir()
        assert main(["obs", "summarize", "empty"]) == 2
        assert "no run artifacts" in capsys.readouterr().err
        assert main(["obs", "list", "--run-dir", "empty"]) == 2
        assert "no runs recorded" in capsys.readouterr().err
