"""Cross-module integration tests: full pipelines at small scale."""

import numpy as np
import pytest

from repro.core import (LogiRec, LogiRecConfig, LogiRecPP,
                        mined_relation_report)
from repro.data import (SyntheticConfig, generate_dataset, load_dataset,
                        load_dataset_file, save_dataset, temporal_split)
from repro.eval import Evaluator, beyond_accuracy_report
from repro.experiments import tag_separation_scores
from repro.manifolds import Lorentz, frechet_mean


class TestEndToEndPipeline:
    """Generate -> split -> train -> evaluate -> analyze, one flow."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        dataset = generate_dataset(SyntheticConfig(
            n_users=60, n_items=90, depth=3, branching=3,
            mean_interactions=12.0, overlap_pair_frac=0.3, seed=17))
        split = temporal_split(dataset)
        evaluator = Evaluator(dataset, split)
        model = LogiRecPP(dataset.n_users, dataset.n_items,
                          dataset.n_tags,
                          LogiRecConfig(dim=8, epochs=30, lam=1.0,
                                        seed=0))
        model.fit(dataset, split, evaluator=evaluator)
        return dataset, split, evaluator, model

    def test_metrics_computed(self, pipeline):
        dataset, split, evaluator, model = pipeline
        result = evaluator.evaluate_test(model)
        assert result["recall@10"] > 0.0

    def test_logic_training_beats_logic_free(self, pipeline):
        """Integration-level sanity: λ > 0 helps on tag-structured data."""
        dataset, split, evaluator, model = pipeline
        logic_free = LogiRecPP(dataset.n_users, dataset.n_items,
                               dataset.n_tags,
                               LogiRecConfig(dim=8, epochs=30, lam=0.0,
                                             seed=0))
        logic_free.fit(dataset, split, evaluator=evaluator)
        with_logic = evaluator.evaluate_test(model)["recall@20"]
        without = evaluator.evaluate_test(logic_free)["recall@20"]
        assert with_logic > without * 0.8  # should usually be >, never <<

    def test_analysis_stack_runs(self, pipeline):
        dataset, split, evaluator, model = pipeline
        separation = tag_separation_scores(model, dataset)
        assert np.isfinite(separation["mean_score"])
        report = mined_relation_report(model, dataset)
        assert len(report["rows"]) == len(dataset.relations.exclusion)
        beyond = beyond_accuracy_report(model, dataset, split, k=5)
        assert 0.0 <= beyond["tag_consistency"] <= 1.0

    def test_user_embedding_centroid_is_finite(self, pipeline):
        dataset, split, evaluator, model = pipeline
        user_emb, _ = model.final_embeddings()
        mean = frechet_mean(user_emb[:20])
        assert np.isfinite(mean).all()
        assert Lorentz.inner_np(mean[None], mean[None])[0] == (
            pytest.approx(-1.0, abs=1e-6))


class TestPersistenceRoundtrip:
    def test_dataset_save_train_load_train_identical(self, tmp_path):
        """A saved+reloaded dataset trains to the identical model."""
        dataset = generate_dataset(SyntheticConfig(n_users=30,
                                                   n_items=50, seed=19))
        path = str(tmp_path / "ds")
        save_dataset(dataset, path)
        reloaded = load_dataset_file(path)

        def train(ds):
            split = temporal_split(ds)
            model = LogiRec(ds.n_users, ds.n_items, ds.n_tags,
                            LogiRecConfig(dim=8, epochs=5, seed=0))
            model.fit(ds, split)
            return model.score_users(np.array([0]))

        np.testing.assert_allclose(train(dataset), train(reloaded))


class TestSeedStability:
    def test_different_seeds_different_models(self):
        dataset = load_dataset("ciao", scale=0.4)
        split = temporal_split(dataset)
        scores = []
        for seed in (0, 1):
            model = LogiRecPP(dataset.n_users, dataset.n_items,
                              dataset.n_tags,
                              LogiRecConfig(dim=8, epochs=5, seed=seed))
            model.fit(dataset, split)
            scores.append(model.score_users(np.array([0])))
        assert not np.allclose(scores[0], scores[1])

    def test_metric_variance_across_seeds_bounded(self):
        """Multi-seed runs land in a sane band (no divergent seeds)."""
        dataset = load_dataset("ciao", scale=0.4)
        split = temporal_split(dataset)
        evaluator = Evaluator(dataset, split)
        values = []
        for seed in (0, 1, 2):
            model = LogiRecPP(dataset.n_users, dataset.n_items,
                              dataset.n_tags,
                              LogiRecConfig(dim=8, epochs=25, seed=seed))
            model.fit(dataset, split)
            values.append(evaluator.evaluate_test(model)["recall@10"])
        values = np.asarray(values)
        assert values.std() < 15.0
        assert (values > 0).all()


class TestColdStartBehaviour:
    def test_items_without_train_interactions_still_ranked(self):
        """Tag membership gives cold items a meaningful position — the
        sparsity story of the paper's introduction."""
        dataset = generate_dataset(SyntheticConfig(
            n_users=50, n_items=120, mean_interactions=8.0, seed=29))
        split = temporal_split(dataset)
        train_items = set(dataset.item_ids[split.train].tolist())
        cold = [i for i in range(dataset.n_items)
                if i not in train_items]
        if not cold:
            pytest.skip("no cold items in this realization")
        model = LogiRecPP(dataset.n_users, dataset.n_items,
                          dataset.n_tags,
                          LogiRecConfig(dim=8, epochs=20, lam=2.0,
                                        seed=0))
        model.fit(dataset, split)
        scores = model.score_users(np.array([0]))[0]
        assert np.isfinite(scores[cold]).all()
        # Cold items should not be uniformly last: their tag-driven
        # positions must interleave with warm items for some user.
        ranks = np.argsort(np.argsort(-scores))
        assert ranks[cold].min() < dataset.n_items - len(cold)
