"""Fault injection, rollback/resume, and serving degradation.

The two acceptance bars of the robustness subsystem:

* **Kill-then-resume is bit-identical** — for every registry model, a
  training run killed mid-way and resumed from its auto-checkpoint ends
  with exactly the loss history and parameters of an uninterrupted run
  (also proving a ``supervisor`` leaves the numerics untouched).
* **Failures never reach the caller** — under injected scoring faults
  every request still gets a valid ranked list; retries, timeouts,
  breaker trips, and fallbacks land in counters instead of exceptions.
"""

import warnings
import zlib

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.experiments.runner import ALL_MODEL_NAMES, build_model
from repro.robust import (BreakerPolicy, CircuitBreaker, FaultPlan,
                          FaultSpec, FaultyIndex, ResilienceConfig,
                          RetryPolicy, SimulatedCrash,
                          TrainingDivergedError, TrainingSupervisor,
                          has_fit_state)
from repro.serve import (RecommendService, ServiceConfig, build_index,
                         load_checkpoint, save_checkpoint)

EPOCHS = 3


@pytest.fixture(scope="module")
def setup():
    ds = generate_dataset(SyntheticConfig(n_users=40, n_items=60,
                                          depth=3, branching=3,
                                          mean_interactions=10.0, seed=4))
    return ds, temporal_split(ds)


@pytest.fixture(scope="module")
def served(setup):
    """A clean trained index + its exact expected responses."""
    ds, split = setup
    model = build_model("BPRMF", ds, seed=0)
    model.config.epochs = 2
    model.fit(ds, split)
    index = build_index(model, ds, split)
    clean = RecommendService(index, ServiceConfig(k=10, cache_size=0))
    expected = [r["items"] for r in clean.query_batch(range(ds.n_users))]
    return ds, split, index, expected


def _supervised(config, **kwargs):
    return TrainingSupervisor(ResilienceConfig(**config), **kwargs)


# ----------------------------------------------------------------------
# FaultPlan mechanics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_kind_and_missing_epoch_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor")
        with pytest.raises(ValueError, match="needs an epoch"):
            FaultSpec("kill")
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("score_error", rate=1.5)

    def test_scoring_draws_are_seed_deterministic(self):
        def draws(seed):
            plan = FaultPlan([FaultSpec("score_error", rate=0.5,
                                        max_faults=None)], seed=seed)
            return [plan.draw_scoring_fault() is not None
                    for _ in range(40)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_training_faults_fire_once_by_default(self):
        plan = FaultPlan([FaultSpec("nan_grad", epoch=2)])
        assert plan.take_nan_grad(1) is None
        assert plan.take_nan_grad(2) is not None
        assert plan.take_nan_grad(2) is None      # fired; retry is clean
        assert plan.counts() == {"nan_grad": 1}

    def test_corrupt_file_flips_one_seeded_byte(self, tmp_path):
        target = tmp_path / "blob.bin"
        target.write_bytes(bytes(range(256)))
        offset = FaultPlan.corrupt_file(target, seed=3)
        assert FaultPlan.corrupt_file(target, seed=3) == offset
        assert target.read_bytes() == bytes(range(256))  # flipped twice


class TestCircuitBreaker:
    POLICY = BreakerPolicy(window=8, threshold=0.5, min_requests=2,
                           cooldown=3)

    def test_opens_on_failure_rate_then_recovers(self):
        breaker = CircuitBreaker(self.POLICY)
        assert breaker.record(False) is False     # below min_requests
        assert breaker.record(False) is True      # trips
        assert breaker.state == "open"
        assert [breaker.allow() for _ in range(3)] == [False] * 3
        assert breaker.allow() is True            # half-open probe
        assert breaker.state == "half_open"
        assert breaker.record(True) is False      # probe ok -> closed
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(self.POLICY)
        breaker.record(False), breaker.record(False)
        for _ in range(3):
            breaker.allow()
        breaker.allow()                           # probe
        assert breaker.record(False) is True      # counts as a new open
        assert breaker.state == "open"
        assert breaker.opens == 2


# ----------------------------------------------------------------------
# Kill + resume, registry-wide
# ----------------------------------------------------------------------
class TestKillResume:
    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_resumed_run_bit_identical(self, setup, tmp_path, name):
        ds, split = setup
        # Model-dependent but process-stable kill point (hash() is
        # salted per process; crc32 is not).
        kill_epoch = zlib.crc32(name.encode()) % (EPOCHS - 1)
        config = {"checkpoint_dir": tmp_path / "ck",
                  "checkpoint_every": 1}

        killed = build_model(name, ds, seed=0)
        killed.config.epochs = EPOCHS
        plan = FaultPlan([FaultSpec("kill", epoch=kill_epoch)])
        with pytest.raises(SimulatedCrash):
            killed.fit(ds, split,
                       supervisor=_supervised(config, fault_plan=plan))
        assert len(killed.loss_history) == kill_epoch + 1
        assert has_fit_state(tmp_path / "ck")

        resumed = load_checkpoint(tmp_path / "ck", dataset=ds,
                                  split=split)
        supervisor = _supervised({**config, "resume": True})
        resumed.fit(ds, split, supervisor=supervisor)
        assert supervisor.resumed

        reference = build_model(name, ds, seed=0)
        reference.config.epochs = EPOCHS
        reference.fit(ds, split)            # plain fit, no supervisor

        assert resumed.loss_history == reference.loss_history, (
            f"{name}: resumed loss history diverges")
        for key, value in reference.state_dict().items():
            assert np.array_equal(resumed.state_dict()[key], value), (
                f"{name}: parameter {key} not bit-identical after "
                f"kill/resume")


# ----------------------------------------------------------------------
# Divergence rollback
# ----------------------------------------------------------------------
class TestRollback:
    def test_nan_grad_rolls_back_and_completes(self, setup, tmp_path):
        ds, split = setup
        model = build_model("BPRMF", ds, seed=0)
        model.config.epochs = 4
        plan = FaultPlan([FaultSpec("nan_grad", epoch=2)])
        supervisor = _supervised(
            {"checkpoint_dir": tmp_path / "ck", "checkpoint_every": 1},
            fault_plan=plan)
        model.fit(ds, split, supervisor=supervisor)
        summary = supervisor.summary()
        assert summary["rollbacks"] == 1
        assert summary["retries_left"] == 2
        assert len(model.loss_history) == 4
        assert np.isfinite(model.loss_history).all()
        assert all(np.isfinite(p.data).all() for p in model.parameters())
        kinds = [kind for kind, _ in summary["events"]]
        assert "rollback" in kinds

    def test_nan_param_diverges_riemannian_model_too(self, setup,
                                                     tmp_path):
        # RSGD skips non-finite *gradients*, so nan_param is the fault
        # that proves rollback covers the hyperbolic models as well.
        ds, split = setup
        model = build_model("HGCF", ds, seed=0)
        model.config.epochs = 3
        plan = FaultPlan([FaultSpec("nan_param", epoch=1)])
        supervisor = _supervised(
            {"checkpoint_dir": tmp_path / "ck", "checkpoint_every": 1},
            fault_plan=plan)
        model.fit(ds, split, supervisor=supervisor)
        assert supervisor.summary()["rollbacks"] == 1
        assert np.isfinite(model.loss_history).all()

    def test_retry_budget_exhaustion_raises(self, setup, tmp_path):
        ds, split = setup
        model = build_model("BPRMF", ds, seed=0)
        model.config.epochs = 4
        # once=False: the fault re-fires after every rollback, so the
        # budget must run out.
        plan = FaultPlan([FaultSpec("nan_param", epoch=1, once=False)])
        supervisor = _supervised(
            {"checkpoint_dir": tmp_path / "ck", "checkpoint_every": 1,
             "max_retries": 1},
            fault_plan=plan)
        with pytest.raises(TrainingDivergedError, match="no rollback "
                                                        "budget"):
            model.fit(ds, split, supervisor=supervisor)
        assert supervisor.summary()["rollbacks"] == 1

    def test_lr_backoff_compounds_across_rollbacks(self, setup,
                                                   tmp_path):
        ds, split = setup
        model = build_model("BPRMF", ds, seed=0)
        model.config.epochs = 4
        base_lr = model.config.lr
        plan = FaultPlan([FaultSpec("nan_param", epoch=1),
                          FaultSpec("nan_param", epoch=1)])
        supervisor = _supervised(
            {"checkpoint_dir": tmp_path / "ck", "checkpoint_every": 1,
             "lr_backoff": 0.5},
            fault_plan=plan)
        model.fit(ds, split, supervisor=supervisor)
        lrs = [detail["lr"] for kind, detail in supervisor.events
               if kind == "rollback"]
        assert lrs == [base_lr * 0.5, base_lr * 0.25]


# ----------------------------------------------------------------------
# Serving resilience
# ----------------------------------------------------------------------
def _assert_all_valid(responses, k, n_items):
    for response in responses:
        items = response["items"]
        assert len(items) == k and len(set(items)) == k
        assert all(0 <= i < n_items for i in items)


class TestServingResilience:
    def test_injected_failures_still_serve_everyone(self, served):
        ds, _, index, expected = served
        plan = FaultPlan([FaultSpec("score_error", rate=0.1)], seed=1)
        service = RecommendService(
            FaultyIndex(index, plan),
            ServiceConfig(k=10, cache_size=0,
                          retry=RetryPolicy(retries=2, backoff_s=0.0)))
        responses = service.query_batch(range(ds.n_users))
        _assert_all_valid(responses, 10, ds.n_items)
        assert plan.counts().get("score_error", 0) > 0
        # Requests whose retries succeeded are bit-identical to the
        # clean service; the rest are marked degraded.
        for uid, response in enumerate(responses):
            if not response["fallback"]:
                assert response["items"] == expected[uid]
            else:
                assert response["degraded"]
        assert service.stats["scoring_failures"] == \
            plan.counts()["score_error"]

    def test_breaker_trips_to_fallback(self, served):
        ds, _, index, _ = served
        plan = FaultPlan([FaultSpec("score_error", rate=1.0)], seed=0)
        service = RecommendService(
            FaultyIndex(index, plan),
            ServiceConfig(k=10, cache_size=0,
                          retry=RetryPolicy(retries=0),
                          breaker=BreakerPolicy(window=10, threshold=0.5,
                                                min_requests=3,
                                                cooldown=4)))
        responses = service.query_batch(range(ds.n_users))
        _assert_all_valid(responses, 10, ds.n_items)
        assert all(r["degraded"] for r in responses)
        assert service.breaker.opens >= 1
        assert service.stats["breaker_opens"] == service.breaker.opens
        assert service.stats["breaker_short_circuits"] > 0
        # Short-circuited requests never touched the index.
        assert service.stats["scoring_failures"] < ds.n_users

    def test_timeouts_count_and_degrade(self, served):
        ds, _, index, _ = served
        plan = FaultPlan([FaultSpec("score_delay", rate=1.0,
                                    delay_s=0.005)], seed=0)
        service = RecommendService(
            FaultyIndex(index, plan),
            ServiceConfig(k=10, cache_size=0,
                          retry=RetryPolicy(retries=0,
                                            timeout_s=1e-4)))
        responses = service.query_batch(range(8))
        _assert_all_valid(responses, 10, ds.n_items)
        assert all(r["degraded"] for r in responses)
        assert service.stats["timeouts"] > 0

    def test_stale_index_fallback_serves_old_scores(self, served):
        ds, _, index, expected = served
        plan = FaultPlan([FaultSpec("score_error", rate=1.0)], seed=0)
        service = RecommendService(
            FaultyIndex(index, plan),
            ServiceConfig(k=10, cache_size=0, fallback="stale_index",
                          retry=RetryPolicy(retries=0),
                          breaker=BreakerPolicy(min_requests=10**6)),
            fallback_index=index)
        responses = service.query_batch(range(ds.n_users))
        assert all(r["source"] == "stale_index" for r in responses)
        assert service.stats["stale_index_hits"] == ds.n_users
        # The "stale" index is actually the fresh one here, so the
        # degraded answers must equal the clean ones exactly.
        assert [r["items"] for r in responses] == expected

    def test_unknown_user_is_fallback_but_not_degraded(self, served):
        ds, _, index, _ = served
        service = RecommendService(index, ServiceConfig(k=5))
        response = service.query(ds.n_users + 5)
        assert response["fallback"] and not response["degraded"]
        assert response["items"] == [int(i) for i in
                                     index.popularity[:5]]


class TestConfigShims:
    def test_legacy_kwargs_warn_and_forward(self, served):
        _, _, index, _ = served
        with pytest.warns(DeprecationWarning, match="deprecated"):
            service = RecommendService(index, k=7, cache_size=0)
        assert service.k == 7 and service.cache_size == 0
        assert service.config.k == 7

    def test_legacy_kwargs_conflict_with_config(self, served):
        _, _, index, _ = served
        with pytest.raises(TypeError, match="not both"):
            RecommendService(index, ServiceConfig(), k=7)

    def test_checkpoint_positional_args_warn(self, setup, tmp_path):
        ds, split = setup
        model = build_model("BPRMF", ds, seed=0)
        model.config.epochs = 1
        model.fit(ds, split)
        with pytest.warns(DeprecationWarning, match="positionally"):
            path = save_checkpoint(model, tmp_path / "ck", ds)
        with pytest.warns(DeprecationWarning, match="positionally"):
            loaded = load_checkpoint(path, ds, split)
        users = np.arange(ds.n_users)
        assert np.array_equal(model.score_users(users),
                              loaded.score_users(users))

    def test_service_config_validation(self):
        with pytest.raises(ValueError, match="fallback"):
            ServiceConfig(fallback="coin_flip")
        with pytest.raises(ValueError, match="k must be positive"):
            ServiceConfig(k=0)
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="threshold"):
            BreakerPolicy(threshold=2.0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCliRobust:
    def test_inject_train_kill_then_resume(self, tmp_path, capsys,
                                           monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["robust", "inject", "train", "--epochs", "4",
                     "--kill-epoch", "1", "--checkpoint-dir", "ck"]) == 3
        assert "crashed" in capsys.readouterr().out
        assert main(["robust", "inject", "train", "--epochs", "4",
                     "--checkpoint-dir", "ck", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out and "resumed_from: 2" in out

    def test_inject_serve_reports_validity(self, tmp_path, capsys,
                                           monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["robust", "inject", "serve", "--requests", "40",
                     "--fail-rate", "0.2", "--epochs", "1"]) == 0
        assert "all responses valid" in capsys.readouterr().out

    def test_inject_checkpoint_detects_corruption(self, tmp_path,
                                                  capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["train", "BPRMF", "--dataset", "ciao", "--epochs",
                     "1", "--save", "ck"]) == 0
        capsys.readouterr()
        assert main(["robust", "inject", "checkpoint", "ck"]) == 0
        assert "corruption detected" in capsys.readouterr().out

    def test_train_resume_requires_checkpoint_dir(self, capsys):
        from repro.cli import main

        assert main(["train", "BPRMF", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_serve_bench_missing_index_exits_2(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["serve", "bench", "--index", "nope"]) == 2
        assert "no index" in capsys.readouterr().err
