"""Tests for observability v2 (ISSUE 7).

Covers the request-scoped layer on top of the PR2 telemetry core:

* **HDR histograms** — the bounded-relative-error guarantee under a
  randomized workload, shard-merge equivalence, the sparse wire form,
  rolling windows under a fake clock, and the pinned percentile edge
  cases (shared with the reservoir histogram).
* **Trace contexts** — contextvars propagation, span stamping, and the
  engine threading one context per request through retries, breaker
  transitions, and fallbacks.
* **Chrome-trace export** — a golden file pinning the exact translation
  of handcrafted events, plus the structural validator both ways.
* **SLO evaluation** — the pass/fail/no-data matrix, burn rates, config
  validation, and the CLI's 0/1/2 exit-code contract.
* **Sampling profiler** — smoke (a busy function shows up) and span
  attribution when a run is active.
* **Thread safety** — concurrent counter/HDR mutation loses no updates.
* **Overhead** — the new disabled-path helpers priced like the old ones.
"""

from __future__ import annotations

import json
import math
import pathlib
import threading
import time

import pytest

from repro import obs
from repro.obs.hdr import HdrHistogram, WindowedHdrHistogram
from repro.obs.slo import (SloConfigError, evaluate_serve_results,
                           evaluate_slos, load_slo_config)
from repro.obs.trace_context import reset_trace_ids

GOLDEN_TRACE = pathlib.Path(__file__).parent / "data" / "trace_golden.json"


@pytest.fixture(autouse=True)
def _obs_reset():
    """Every test starts and ends with telemetry off and fresh trace ids."""
    obs.disable()
    reset_trace_ids()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# HDR histograms
# ----------------------------------------------------------------------
def test_hdr_percentiles_within_relative_error_bound():
    import random
    rng = random.Random(7)
    values = sorted(rng.lognormvariate(1.0, 1.5) for _ in range(5000))
    for rel_error in (0.01, 0.005):
        hist = HdrHistogram("h", rel_error=rel_error, min_value=1e-3,
                            max_value=1e6)
        for v in values:
            hist.observe(v)
        for q in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
            exact = values[max(0, math.ceil(q / 100 * len(values)) - 1)]
            got = hist.percentile(q)
            assert abs(got - exact) / exact <= rel_error, (
                f"rel_error={rel_error} q={q}: {got} vs exact {exact}")


def test_hdr_counts_are_exact_and_mean_exact():
    hist = HdrHistogram("h")
    for v in range(1, 1001):
        hist.observe(float(v))
    assert hist.count == 1000
    assert hist.mean == pytest.approx(500.5)
    assert hist.min == 1.0 and hist.max == 1000.0


def test_hdr_edge_cases_pinned():
    hist = HdrHistogram("h")
    assert math.isnan(hist.percentile(50))          # empty -> NaN
    with pytest.raises(ValueError):
        hist.percentile(-1)
    with pytest.raises(ValueError):
        hist.percentile(100.5)
    hist.observe(42.0)                              # single observation
    for q in (0, 37, 50, 100):
        assert hist.percentile(q) == 42.0
    hist.observe(7.0)
    assert hist.percentile(0) == 7.0                # exact observed min
    assert hist.percentile(100) == 42.0             # exact observed max


def test_hdr_underflow_overflow_buckets():
    hist = HdrHistogram("h", min_value=1.0, max_value=100.0)
    hist.observe(0.25)      # below range -> underflow
    hist.observe(5000.0)    # above range -> overflow
    assert hist.count == 2
    assert hist.percentile(25) == 0.25      # exact observed extremes
    assert hist.percentile(99) == 5000.0


def test_hdr_merge_of_shards_equals_whole():
    whole = HdrHistogram("lat")
    shards = [HdrHistogram("lat") for _ in range(4)]
    for i in range(1, 2001):
        whole.observe(float(i))
        shards[i % 4].observe(float(i))
    merged = HdrHistogram("lat")
    for shard in shards:
        merged.merge(shard)
    assert merged.count == whole.count
    assert merged.total == pytest.approx(whole.total)
    assert merged.counts == whole.counts
    for q in (50, 95, 99):
        assert merged.percentile(q) == whole.percentile(q)


def test_hdr_merge_rejects_geometry_mismatch():
    a = HdrHistogram("a", rel_error=0.01)
    b = HdrHistogram("b", rel_error=0.005)
    with pytest.raises(ValueError, match="geometry"):
        a.merge(b)
    c = HdrHistogram("c", min_value=1e-2)
    with pytest.raises(ValueError, match="geometry"):
        a.merge(c)


def test_hdr_dict_round_trip_is_json_safe():
    hist = HdrHistogram("h")
    for v in (0.5, 3.0, 3.1, 250.0, 1e9):
        hist.observe(v)
    wire = json.loads(json.dumps(hist.to_dict()))   # survives JSON
    back = HdrHistogram.from_dict(wire)
    assert back.count == hist.count
    assert back.counts == hist.counts
    for q in (0, 50, 99, 100):
        assert back.percentile(q) == hist.percentile(q)


def test_windowed_hdr_expires_old_slices():
    clock = [0.0]
    win = WindowedHdrHistogram("w", window_s=60.0, n_slices=6,
                               clock=lambda: clock[0])
    for _ in range(100):
        win.observe(1000.0)             # slow requests at t=0
    clock[0] = 30.0
    for _ in range(100):
        win.observe(1.0)                # fast requests at t=30
    snap = win.snapshot()
    assert snap.count == 200            # both slices inside the window
    assert snap.percentile(99) > 500
    clock[0] = 65.0                     # t=0 slice now outside [5, 65]
    snap = win.snapshot()
    assert snap.count == 100
    assert snap.percentile(99) < 2.0
    clock[0] = 1000.0                   # everything expired
    assert win.snapshot().count == 0
    assert win.summary() == {"count": 0, "window_s": 60.0}


def test_registry_hdr_get_or_create_and_snapshot_section():
    reg = obs.MetricsRegistry()
    reg.hdr("serve/latency_ms").observe(12.0)
    assert reg.hdr("serve/latency_ms").count == 1   # same object
    with pytest.raises(TypeError):
        reg.histogram("serve/latency_ms")           # type confusion
    snap = reg.snapshot()
    assert snap["hdr"]["serve/latency_ms"]["count"] == 1
    assert "serve/latency_ms" not in snap["histograms"]


# ----------------------------------------------------------------------
# Pinned reservoir-histogram percentile edge cases (satellite 2)
# ----------------------------------------------------------------------
def test_reservoir_percentile_edge_cases_pinned():
    reg = obs.MetricsRegistry()
    hist = reg.histogram("h")
    assert math.isnan(hist.percentile(50))          # empty -> NaN
    with pytest.raises(ValueError):
        hist.percentile(-0.001)
    with pytest.raises(ValueError):
        hist.percentile(101)
    hist.observe(5.0)
    for q in (0, 13, 50, 99, 100):                  # single observation
        assert hist.percentile(q) == 5.0
    hist.observe(1.0)
    hist.observe(9.0)
    assert hist.percentile(0) == 1.0                # exact min
    assert hist.percentile(100) == 9.0              # exact max
    assert hist.percentile(50) == 5.0


# ----------------------------------------------------------------------
# Thread safety (satellite 1)
# ----------------------------------------------------------------------
def test_concurrent_metric_mutation_loses_nothing():
    reg = obs.MetricsRegistry()
    n_threads, per_thread = 8, 4000

    def work() -> None:
        for i in range(per_thread):
            reg.counter("c").inc()
            reg.gauge("g").set(float(i))
            reg.histogram("h").observe(float(i))
            reg.hdr("l").observe(1.0 + i % 7)

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected = n_threads * per_thread
    assert reg.counter("c").value == expected
    assert reg.histogram("h").count == expected
    assert reg.hdr("l").count == expected
    assert sum(reg.hdr("l").counts) == expected


# ----------------------------------------------------------------------
# Trace contexts
# ----------------------------------------------------------------------
def test_trace_ids_deterministic_and_context_propagates():
    ctx1 = obs.new_trace("serve/request", user=3)
    ctx2 = obs.new_trace("serve/request")
    assert (ctx1.trace_id, ctx2.trace_id) == ("00000001", "00000002")
    assert obs.current_trace() is None
    with obs.bind_trace(ctx1):
        assert obs.current_trace() is ctx1
        with obs.bind_trace(ctx2):                  # re-binding nests
            assert obs.current_trace() is ctx2
        assert obs.current_trace() is ctx1
    assert obs.current_trace() is None
    with obs.bind_trace(None):                      # disabled-mode no-op
        assert obs.current_trace() is None


def test_spans_and_trace_events_stamped_with_trace(tmp_path):
    run = obs.start_run(run_dir=tmp_path)
    ctx = obs.new_trace("serve/request", user=1)
    with obs.bind_trace(ctx):
        with obs.trace("serve/score", user=1):
            pass
        obs.trace_event("serve/retry", user=1, attempt=1)
    with obs.trace("fit"):                          # outside any trace
        pass
    obs.trace_event("orphan")                       # no trace bound
    obs.finish_run()
    events = obs.read_events(run.dir)
    spans = {e["name"]: e for e in events if e["type"] == "span"}
    assert spans["serve/score"]["meta"]["trace"] == ctx.trace_id
    assert "trace" not in spans["fit"].get("meta", {})
    tes = {e["name"]: e for e in events if e["type"] == "trace_event"}
    assert tes["serve/retry"]["trace"] == ctx.trace_id
    assert tes["serve/retry"]["span"] == ctx.span_id
    assert "trace" not in tes["orphan"]


# ----------------------------------------------------------------------
# Engine integration: one trace per request through failure machinery
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving():
    from repro.data import SyntheticConfig, generate_dataset, temporal_split
    from repro.experiments.runner import build_model
    from repro.serve import build_index

    ds = generate_dataset(SyntheticConfig(n_users=24, n_items=40, depth=2,
                                          branching=3,
                                          mean_interactions=8.0, seed=4))
    split = temporal_split(ds)
    model = build_model("BPRMF", ds, seed=0)
    model.config.epochs = 1
    model.fit(ds, split)
    return build_index(model, ds, split)


class _FailingIndex:
    """Proxy whose score_user always raises (breaker-drill workload)."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def score_user(self, uid):
        raise RuntimeError("scorer down")


def test_engine_emits_request_traces_and_breaker_events(tmp_path, serving):
    from repro.robust.policies import BreakerPolicy, RetryPolicy
    from repro.serve import RecommendService, ServiceConfig

    run = obs.start_run(run_dir=tmp_path)
    service = RecommendService(
        _FailingIndex(serving),
        ServiceConfig(k=5, cache_size=0,
                      retry=RetryPolicy(retries=1, backoff_s=0.0),
                      breaker=BreakerPolicy(window=4, min_requests=2,
                                            threshold=0.5, cooldown=2)))
    responses = service.query_batch(range(8))
    obs.finish_run()
    assert all(len(r["items"]) == 5 for r in responses)  # contract holds

    events = obs.read_events(run.dir)
    te = [e for e in events if e["type"] == "trace_event"]
    by_name = {}
    for e in te:
        by_name.setdefault(e["name"], []).append(e)
    assert "serve/scoring_error" in by_name
    assert "serve/retry" in by_name
    assert "serve/fallback" in by_name
    assert "serve/short_circuit" in by_name          # breaker cooldown
    transitions = [(e["old"], e["new"])
                   for e in by_name["serve/breaker_transition"]]
    assert ("closed", "open") in transitions
    assert ("open", "half_open") in transitions
    # Every failure-path event carries its request's trace id.
    assert all("trace" in e for e in by_name["serve/scoring_error"])
    # One request span per request, each on its own trace.
    reqs = [e for e in events
            if e["type"] == "span" and e["name"] == "serve/request"]
    assert len(reqs) == 8
    assert len({r["meta"]["trace"] for r in reqs}) == 8
    assert all(r["meta"]["source"] == "popularity" for r in reqs)

    manifest = obs.read_manifest(run.dir)
    hdr = manifest["metrics"]["hdr"]["serve/latency_ms"]
    assert hdr["count"] == 8
    counters = manifest["metrics"]["counters"]
    assert counters["serve/degraded"] >= 1
    assert counters["serve/breaker_opens"] >= 1


def test_engine_trace_disabled_has_no_contexts(serving):
    from repro.serve import RecommendService, ServiceConfig

    service = RecommendService(serving, ServiceConfig(k=5, cache_size=8))
    responses = service.query_batch([0, 1])
    responses += service.query_batch([0])
    assert obs.current_trace() is None
    assert [r["source"] for r in responses] == ["index", "index", "cache"]


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
def _handcrafted_events():
    """A fixed event log exercising every translation branch."""
    return [
        {"type": "event", "name": "run_start", "t0": 0.0,
         "run_id": "golden"},
        {"type": "span", "name": "fit", "id": 1, "parent": None,
         "t0": 0.001, "dur": 0.5, "meta": {"model": "LogiRecPP"}},
        {"type": "span", "name": "epoch", "id": 2, "parent": 1,
         "t0": 0.002, "dur": 0.25, "count": 3, "meta": {}},
        {"type": "span", "name": "serve/request", "id": 3, "parent": None,
         "t0": 0.6, "dur": 0.01,
         "meta": {"user": 7, "source": "index", "trace": "0000002a"}},
        {"type": "trace_event", "name": "serve/retry", "t0": 0.605,
         "trace": "0000002a", "span": 1, "user": 7, "attempt": 1},
        {"type": "event", "name": "run_end", "t0": 0.7, "n_events": 5},
    ]


def test_chrome_trace_matches_golden_file():
    doc = obs.build_chrome_trace(
        _handcrafted_events(),
        manifest={"run_id": "golden", "git_sha": "abc1234",
                  "started_at": "2026-01-01T00:00:00", "wall_s": 0.7})
    golden = json.loads(GOLDEN_TRACE.read_text(encoding="utf-8"))
    assert doc == golden


def test_chrome_trace_structure_and_lanes():
    doc = obs.build_chrome_trace(_handcrafted_events())
    assert obs.validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    lanes = {e["args"]["name"]: e["tid"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert lanes["main"] == 1
    assert lanes["request 0000002a"] == 2
    fit = next(e for e in events if e.get("name") == "fit")
    assert (fit["ph"], fit["tid"], fit["ts"], fit["dur"]) == \
        ("X", 1, 1000.0, 500000.0)                   # microseconds
    req = next(e for e in events if e.get("name") == "serve/request")
    assert req["tid"] == 2 and req["cat"] == "serve"
    assert "trace" not in req["args"]                # identity, not arg
    retry = next(e for e in events if e.get("name") == "serve/retry")
    assert (retry["ph"], retry["s"], retry["tid"]) == ("i", "t", 2)
    start = next(e for e in events if e.get("name") == "run_start")
    assert (start["ph"], start["s"], start["tid"]) == ("i", "g", 1)
    epoch = next(e for e in events if e.get("name") == "epoch")
    assert epoch["args"]["count"] == 3               # aggregated spans


def test_validator_flags_malformed_documents():
    assert obs.validate_chrome_trace([]) != []           # not an object
    assert obs.validate_chrome_trace({}) != []           # no traceEvents
    bad = {"traceEvents": [
        {"ph": "Z", "name": "x", "pid": 1, "tid": 1},    # unknown phase
        {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0},  # no dur
        {"ph": "i", "name": "x", "pid": 1, "tid": 1, "ts": 0,
         "s": "q"},                                      # bad scope
        {"ph": "X", "name": 3, "pid": "1", "tid": 1, "ts": 0,
         "dur": 1},                                      # wrong types
    ]}
    errors = obs.validate_chrome_trace(bad)
    assert len(errors) >= 4


def test_export_chrome_trace_round_trip(tmp_path):
    run = obs.start_run(run_dir=tmp_path)
    with obs.trace("fit"):
        pass
    obs.finish_run()
    out = obs.export_chrome_trace(run.dir)
    doc = json.loads(out.read_text(encoding="utf-8"))
    assert obs.validate_chrome_trace(doc) == []
    assert doc["otherData"]["run_id"] == pathlib.Path(run.dir).name
    with pytest.raises(FileNotFoundError):
        obs.export_chrome_trace(tmp_path / "empty")


# ----------------------------------------------------------------------
# SLO evaluation
# ----------------------------------------------------------------------
def test_slo_matrix_pass_fail_no_data():
    objectives = load_slo_config(None)               # the built-in three
    passing = evaluate_slos(objectives,
                            latency_p99_ms={"serve/latency_ms": 50.0},
                            requests=1000, degraded=0)
    assert [r.ok for r in passing] == [True, True, True]
    assert passing[0].burn_rate == pytest.approx(0.2)

    failing = evaluate_slos(objectives,
                            latency_p99_ms={"serve/latency_ms": 500.0},
                            requests=1000, degraded=100)
    assert [r.ok for r in failing] == [False, False, False]
    assert failing[0].burn_rate == pytest.approx(2.0)     # 500/250
    assert failing[1].burn_rate == pytest.approx(100.0)   # 10% vs 0.1%
    assert failing[2].burn_rate == pytest.approx(10.0)    # 10% vs 1%

    no_data = evaluate_slos(objectives, latency_p99_ms={},
                            requests=None, degraded=None)
    assert [r.ok for r in no_data] == [None, None, None]


def test_slo_availability_boundary_exact():
    objectives = [{"name": "a", "kind": "availability",
                   "objective": 0.99}]
    at = evaluate_slos(objectives, requests=100, degraded=1)
    assert at[0].ok is True                          # exactly at objective
    assert at[0].burn_rate == pytest.approx(1.0)
    over = evaluate_slos(objectives, requests=100, degraded=2)
    assert over[0].ok is False


def test_slo_config_validation(tmp_path):
    good = tmp_path / "slo.json"
    good.write_text(json.dumps({"slos": [
        {"name": "lat", "kind": "latency_p99", "objective_ms": 10.0}]}))
    assert load_slo_config(good)[0]["objective_ms"] == 10.0
    for payload in ("not json{", json.dumps({}), json.dumps({"slos": []}),
                    json.dumps({"slos": [{"kind": "latency_p99"}]}),
                    json.dumps({"slos": [{"name": "x", "kind": "nope"}]}),
                    json.dumps({"slos": [{"name": "x",
                                          "kind": "latency_p99"}]})):
        bad = tmp_path / "bad.json"
        bad.write_text(payload)
        with pytest.raises(SloConfigError):
            load_slo_config(bad)
    with pytest.raises(SloConfigError):
        load_slo_config(tmp_path / "missing.json")


def test_slo_on_serve_bench_results():
    results = {"indexed": {"p99_ms": 12.0},
               "service_stats": {"requests": 400, "degraded": 0}}
    report = evaluate_serve_results(results)
    assert report["passed"] and report["n_violations"] == 0
    results["service_stats"]["degraded"] = 200
    report = evaluate_serve_results(results)
    assert not report["passed"]


def _write_manifest_run(tmp_path, name, metrics):
    run_dir = tmp_path / name
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text(json.dumps(
        {"run_id": name, "wall_s": 1.0, "metrics": metrics}))
    return run_dir


def test_cli_slo_exit_code_contract(tmp_path, capsys):
    from repro.cli import main

    ok_dir = _write_manifest_run(tmp_path, "ok", {
        "counters": {"serve/requests": 1000, "serve/degraded": 0},
        "hdr": {"serve/latency_ms": {"count": 1000, "p99": 20.0}}})
    bad_dir = _write_manifest_run(tmp_path, "bad", {
        "counters": {"serve/requests": 1000, "serve/degraded": 400},
        "hdr": {"serve/latency_ms": {"count": 1000, "p99": 9000.0}}})
    train_dir = _write_manifest_run(tmp_path, "train", {"counters": {}})

    assert main(["obs", "slo", str(ok_dir)]) == 0
    assert "PASS" in capsys.readouterr().out
    assert main(["obs", "slo", str(bad_dir)]) == 1
    assert "FAIL" in capsys.readouterr().out
    assert main(["obs", "slo", str(train_dir)]) == 2     # nothing evaluable
    capsys.readouterr()
    assert main(["obs", "slo", str(tmp_path / "missing")]) == 2
    capsys.readouterr()

    # --json emits the machine-readable report.
    assert main(["obs", "slo", str(bad_dir), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["n_violations"] >= 1

    # A run-local slo.json overrides the defaults.
    (bad_dir / "slo.json").write_text(json.dumps({"slos": [
        {"name": "soft", "kind": "latency_p99",
         "objective_ms": 10000.0}]}))
    assert main(["obs", "slo", str(bad_dir)]) == 0
    capsys.readouterr()

    # A malformed --config is a usage error, not a violation.
    cfg = tmp_path / "broken.json"
    cfg.write_text("{")
    assert main(["obs", "slo", str(ok_dir), "--config", str(cfg)]) == 2
    capsys.readouterr()


# ----------------------------------------------------------------------
# CLI: summarize --json, export-trace, profile
# ----------------------------------------------------------------------
def test_cli_summarize_json_and_export_trace(tmp_path, capsys):
    from repro.cli import main

    run = obs.start_run(run_dir=tmp_path / "runs")
    with obs.trace("fit"):
        with obs.trace("epoch"):
            pass
    obs.finish_run()
    run_dir = str(run.dir)

    assert main(["obs", "summarize", run_dir, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["finished"] is True
    assert summary["spans"][0]["name"] == "fit"
    assert summary["spans"][0]["children"][0]["name"] == "epoch"

    assert main(["obs", "export-trace", run_dir]) == 0
    capsys.readouterr()
    doc = json.loads((pathlib.Path(run_dir) / "trace.json").read_text())
    assert obs.validate_chrome_trace(doc) == []

    # Exit-2 contract on missing/empty run dirs, for every subcommand.
    missing = str(tmp_path / "nope")
    assert main(["obs", "summarize", missing]) == 2
    assert main(["obs", "summarize", missing, "--json"]) == 2
    assert main(["obs", "export-trace", missing]) == 2
    assert main(["obs", "profile", missing]) == 2
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["obs", "export-trace", str(empty)]) == 2
    assert main(["obs", "profile", str(empty)]) == 2
    capsys.readouterr()


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
def _spin(seconds: float) -> int:
    acc = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        for i in range(500):
            acc += i * i
    return acc


def test_profiler_samples_busy_function(tmp_path):
    profiler = obs.SamplingProfiler(interval_s=0.001)
    with profiler:
        _spin(0.25)
    assert profiler.n_samples > 10
    collapsed = "\n".join(profiler.collapsed())
    assert "_spin" in collapsed
    # Round trip through the collapsed-stack file.
    from repro.obs.profile import read_collapsed, render_profile
    path = profiler.write(tmp_path)
    assert path.name == "profile.collapsed"
    samples = read_collapsed(path)
    assert sum(samples.values()) == profiler.n_samples
    rendered = render_profile(path, top=5)
    assert "samples" in rendered and "_spin" in rendered


def test_profiler_attributes_samples_to_open_spans(tmp_path):
    obs.start_run(run_dir=tmp_path)
    profiler = obs.SamplingProfiler(interval_s=0.001)
    with profiler:
        with obs.trace("fit"):
            with obs.trace("epoch"):
                _spin(0.25)
    obs.finish_run()
    tagged = [s for s in profiler.samples
              if s.startswith("span:fit>epoch;")]
    assert tagged, f"no span-tagged samples in {list(profiler.samples)[:3]}"


def test_profiler_rejects_bad_interval_and_double_start():
    with pytest.raises(ValueError):
        obs.SamplingProfiler(interval_s=0.0)
    profiler = obs.SamplingProfiler(interval_s=0.05)
    profiler.start()
    try:
        with pytest.raises(RuntimeError):
            profiler.start()
    finally:
        profiler.stop()
    profiler.stop()                                  # idempotent


# ----------------------------------------------------------------------
# Bench percentiles now HDR-derived
# ----------------------------------------------------------------------
def test_bench_percentiles_are_hdr_derived():
    from repro.serve.bench import _percentiles_ms
    times_s = [i / 1000.0 for i in range(1, 1001)]   # 1..1000 ms
    out = _percentiles_ms(times_s)
    assert out["hdr_rel_error"] == 0.005
    assert out["p50_ms"] == pytest.approx(500.0, rel=0.011)
    assert out["p99_ms"] == pytest.approx(990.0, rel=0.011)
    assert out["mean_ms"] == pytest.approx(500.5)    # mean stays exact


# ----------------------------------------------------------------------
# Disabled-path overhead of the new helpers
# ----------------------------------------------------------------------
def test_disabled_v2_helpers_are_cheap():
    """trace_event/observe_hdr priced like count/trace: ~a None check."""
    n = 20000

    def price(fn) -> float:
        best = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(n):
                fn()
            best = min(best, (time.perf_counter() - t0) / n)
        return best

    assert price(lambda: obs.trace_event("serve/retry", user=1)) < 2e-6
    assert price(lambda: obs.observe_hdr("serve/latency_ms", 1.0)) < 2e-6
    assert price(lambda: obs.current_trace()) < 2e-6
