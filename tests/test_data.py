"""Tests for datasets, synthetic generation, splits, and sampling."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (DATASET_CONFIGS, InteractionDataset, Split,
                        SyntheticConfig, TripletSampler, dataset_statistics,
                        generate_dataset, load_dataset, temporal_split)
from repro.taxonomy import Taxonomy


def _tiny_dataset():
    taxonomy = Taxonomy([-1, 0, 0])
    q = sp.csr_matrix(np.array([[0, 1, 0],
                                [0, 0, 1],
                                [0, 1, 0],
                                [1, 0, 0]]))
    # user 0: items 0,1,2 over time; user 1: items 2,3.
    return InteractionDataset(
        user_ids=np.array([0, 0, 0, 1, 1]),
        item_ids=np.array([0, 1, 2, 2, 3]),
        timestamps=np.array([0, 1, 2, 0, 1]),
        n_users=2, n_items=4, item_tags=q, taxonomy=taxonomy,
        name="tiny")


class TestInteractionDataset:
    def test_basic_counts(self):
        ds = _tiny_dataset()
        assert ds.n_interactions == 5
        assert ds.n_tags == 3
        assert ds.density == pytest.approx(100 * 5 / 8)

    def test_validation(self):
        taxonomy = Taxonomy([-1])
        q = sp.csr_matrix(np.ones((2, 1)))
        with pytest.raises(ValueError, match="equal length"):
            InteractionDataset(np.array([0]), np.array([0, 1]),
                               np.array([0]), 2, 2, q, taxonomy)
        with pytest.raises(ValueError, match="user id"):
            InteractionDataset(np.array([5]), np.array([0]),
                               np.array([0]), 2, 2, q, taxonomy)
        with pytest.raises(ValueError, match="item id"):
            InteractionDataset(np.array([0]), np.array([7]),
                               np.array([0]), 2, 2, q, taxonomy)

    def test_items_of_user(self):
        ds = _tiny_dataset()
        per_user = ds.items_of_user()
        np.testing.assert_array_equal(np.sort(per_user[0]), [0, 1, 2])
        np.testing.assert_array_equal(np.sort(per_user[1]), [2, 3])

    def test_items_of_user_subset(self):
        ds = _tiny_dataset()
        per_user = ds.items_of_user(np.array([0, 3]))
        np.testing.assert_array_equal(per_user[0], [0])
        np.testing.assert_array_equal(per_user[1], [2])

    def test_interaction_matrix_binary(self):
        ds = _tiny_dataset()
        mat = ds.interaction_matrix()
        assert mat.shape == (2, 4)
        assert mat[0, 1] == 1.0
        assert mat[1, 0] == 0.0
        assert set(np.unique(mat.data)) == {1.0}

    def test_tags_of_items(self):
        ds = _tiny_dataset()
        tags = ds.tags_of_items(np.array([0, 3]))
        np.testing.assert_array_equal(tags[0], [1])
        np.testing.assert_array_equal(tags[1], [0])

    def test_user_tag_lists_multiplicity(self):
        ds = _tiny_dataset()
        lists = ds.user_tag_lists()
        # user 0 touched items 0 (tag 1), 1 (tag 2), 2 (tag 1).
        np.testing.assert_array_equal(np.sort(lists[0]), [1, 1, 2])

    def test_statistics_shape(self):
        stats = _tiny_dataset().statistics()
        for key in ("n_users", "n_items", "n_interactions", "density_pct",
                    "n_tags", "n_membership", "n_hierarchy",
                    "n_exclusion"):
            assert key in stats


class TestTemporalSplit:
    def test_fractions_and_order(self):
        ds = _tiny_dataset()
        split = temporal_split(ds, 0.6, 0.2, min_interactions=2)
        # All indices used exactly once across the three parts.
        all_idx = np.concatenate([split.train, split.valid, split.test])
        assert sorted(all_idx) == list(range(5))
        # Train events precede valid precede test per user (timestamps).
        for u in range(2):
            t_train = ds.timestamps[[i for i in split.train
                                     if ds.user_ids[i] == u]]
            t_test = ds.timestamps[[i for i in split.test
                                    if ds.user_ids[i] == u]]
            if len(t_train) and len(t_test):
                assert t_train.max() < t_test.min()

    def test_small_users_go_to_train(self):
        ds = _tiny_dataset()
        split = temporal_split(ds, min_interactions=5)
        # Both users have < 5 events: everything is training data.
        assert len(split.train) == 5
        assert len(split.valid) == 0

    def test_invalid_fractions(self):
        ds = _tiny_dataset()
        with pytest.raises(ValueError):
            temporal_split(ds, train_frac=0.0)
        with pytest.raises(ValueError):
            temporal_split(ds, train_frac=0.8, valid_frac=0.3)

    def test_each_split_user_has_all_three(self):
        ds = load_dataset("ciao")
        split = temporal_split(ds)
        valid_users = set(ds.user_ids[split.valid])
        test_users = set(ds.user_ids[split.test])
        train_users = set(ds.user_ids[split.train])
        assert valid_users <= train_users
        assert test_users <= train_users


class TestSynthetic:
    def test_generation_deterministic(self):
        cfg = SyntheticConfig(n_users=30, n_items=40, seed=5)
        a = generate_dataset(cfg)
        b = generate_dataset(cfg)
        np.testing.assert_array_equal(a.user_ids, b.user_ids)
        np.testing.assert_array_equal(a.item_ids, b.item_ids)
        assert (a.item_tags != b.item_tags).nnz == 0

    def test_seed_changes_data(self):
        a = generate_dataset(SyntheticConfig(n_users=30, n_items=40,
                                             seed=1))
        b = generate_dataset(SyntheticConfig(n_users=30, n_items=40,
                                             seed=2))
        assert not np.array_equal(a.item_ids, b.item_ids)

    def test_every_item_has_a_leaf_tag(self):
        ds = generate_dataset(SyntheticConfig(n_users=20, n_items=50,
                                              seed=0))
        leaves = set(ds.taxonomy.leaves)
        csr = ds.item_tags
        for item in range(ds.n_items):
            tags = set(csr.indices[csr.indptr[item]:csr.indptr[item + 1]])
            assert tags & leaves

    def test_min_interactions_respected(self):
        cfg = SyntheticConfig(n_users=25, n_items=60,
                              mean_interactions=8.0, min_interactions=6,
                              seed=3)
        ds = generate_dataset(cfg)
        counts = np.bincount(ds.user_ids, minlength=cfg.n_users)
        assert (counts >= cfg.min_interactions).all()

    def test_no_duplicate_interactions_per_user(self):
        ds = generate_dataset(SyntheticConfig(n_users=20, n_items=50,
                                              seed=0))
        pairs = set(zip(ds.user_ids.tolist(), ds.item_ids.tolist()))
        assert len(pairs) == ds.n_interactions

    def test_planted_traits_attached(self):
        ds = generate_dataset(SyntheticConfig(n_users=15, n_items=40,
                                              seed=0))
        assert len(ds.user_consistency) == 15
        assert len(ds.user_focus) == 15
        assert (ds.user_consistency >= 0).all()
        assert (ds.user_consistency <= 1).all()

    def test_overlapping_pairs_share_items(self):
        cfg = SyntheticConfig(n_users=20, n_items=200,
                              overlap_pair_frac=0.5,
                              overlap_item_frac=0.9, seed=0)
        ds = generate_dataset(cfg)
        csc = ds.item_tags.tocsc()
        shared_counts = []
        for a, b in ds.overlapping_pairs:
            items_a = set(csc.indices[csc.indptr[a]:csc.indptr[a + 1]])
            items_b = set(csc.indices[csc.indptr[b]:csc.indptr[b + 1]])
            shared_counts.append(len(items_a & items_b))
        assert sum(shared_counts) > 0

    def test_overlapping_pairs_still_extracted_as_exclusive(self):
        """The planted noise: structurally exclusive despite item overlap."""
        cfg = SyntheticConfig(n_users=20, n_items=200,
                              overlap_pair_frac=0.5, seed=0)
        ds = generate_dataset(cfg)
        exclusions = ds.relations.exclusion_set()
        for pair in ds.overlapping_pairs:
            assert frozenset(map(int, pair)) in exclusions


class TestRegistry:
    def test_all_configs_load(self):
        for name in DATASET_CONFIGS:
            ds = load_dataset(name, scale=0.3)
            assert ds.n_interactions > 0
            assert ds.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("netflix")

    def test_density_ordering_mirrors_paper(self):
        """Table I's ordering: ciao is far denser than the Amazon sets."""
        stats = {s["name"]: s for s in dataset_statistics()}
        assert stats["ciao"]["density_pct"] > stats["cd"]["density_pct"]
        assert stats["ciao"]["density_pct"] > stats["book"]["density_pct"]

    def test_tag_richness_ordering(self):
        """Clothing has the most tags and exclusions, ciao the fewest."""
        stats = {s["name"]: s for s in dataset_statistics()}
        assert stats["clothing"]["n_tags"] > stats["cd"]["n_tags"]
        assert stats["clothing"]["n_exclusion"] > stats["cd"]["n_exclusion"]
        assert stats["ciao"]["n_tags"] < stats["cd"]["n_tags"]

    def test_scale_parameter(self):
        small = load_dataset("cd", scale=0.5)
        full = load_dataset("cd")
        assert small.n_users < full.n_users

    def test_seed_override(self):
        a = load_dataset("cd", seed=1)
        b = load_dataset("cd", seed=2)
        assert not np.array_equal(a.item_ids, b.item_ids)


class TestTripletSampler:
    def test_negatives_are_not_positives(self):
        ds = load_dataset("ciao", scale=0.5)
        split = temporal_split(ds)
        sampler = TripletSampler(ds, split.train,
                                 rng=np.random.default_rng(0))
        for users, pos, neg in sampler.epoch(512):
            assert not sampler._is_positive(users, neg).any()

    def test_epoch_covers_all_positives(self):
        ds = load_dataset("ciao", scale=0.5)
        split = temporal_split(ds)
        sampler = TripletSampler(ds, split.train,
                                 rng=np.random.default_rng(0))
        seen = 0
        for users, pos, neg in sampler.epoch(128):
            assert len(users) == len(pos) == len(neg)
            seen += len(users)
        assert seen == len(split.train)

    def test_n_negatives_multiplies_triplets(self):
        ds = load_dataset("ciao", scale=0.5)
        split = temporal_split(ds)
        sampler = TripletSampler(ds, split.train,
                                 rng=np.random.default_rng(0),
                                 n_negatives=3)
        total = sum(len(u) for u, _, _ in sampler.epoch(4096))
        assert total == 3 * len(split.train)

    def test_deterministic_with_seed(self):
        ds = load_dataset("ciao", scale=0.5)
        split = temporal_split(ds)
        def first_batch(seed):
            s = TripletSampler(ds, split.train,
                               rng=np.random.default_rng(seed))
            return next(s.epoch(64))
        u1, p1, n1 = first_batch(9)
        u2, p2, n2 = first_batch(9)
        np.testing.assert_array_equal(u1, u2)
        np.testing.assert_array_equal(n1, n2)


class TestPropertyBased:
    @given(st.integers(10, 40), st.integers(20, 80), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_generator_counts_property(self, n_users, n_items, seed):
        ds = generate_dataset(SyntheticConfig(n_users=n_users,
                                              n_items=n_items, seed=seed))
        assert ds.n_users == n_users
        assert ds.n_items == n_items
        assert ds.user_ids.max() < n_users
        assert ds.item_ids.max() < n_items

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_split_partition_property(self, seed):
        ds = generate_dataset(SyntheticConfig(n_users=25, n_items=50,
                                              seed=seed))
        split = temporal_split(ds)
        combined = np.sort(np.concatenate([split.train, split.valid,
                                           split.test]))
        np.testing.assert_array_equal(combined,
                                      np.arange(ds.n_interactions))
