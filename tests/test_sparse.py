"""Tests for the sparse matmul op used by graph convolutions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import Tensor, sparse_matmul

RNG = np.random.default_rng(31)


class TestSparseMatmul:
    def test_matches_dense(self):
        a = sp.random(6, 4, density=0.5, random_state=1, format="csr")
        x = Tensor(RNG.normal(size=(4, 3)))
        out = sparse_matmul(a, x)
        np.testing.assert_allclose(out.data, a.todense() @ x.data,
                                   atol=1e-12)

    def test_backward_is_transpose(self):
        a = sp.random(5, 7, density=0.4, random_state=2, format="csr")
        x = Tensor(RNG.normal(size=(7, 2)), requires_grad=True)
        sparse_matmul(a, x).sum().backward()
        expected = np.asarray(a.T.todense() @ np.ones((5, 2)))
        np.testing.assert_allclose(x.grad, expected, atol=1e-12)

    def test_gradcheck(self):
        a = sp.random(4, 4, density=0.6, random_state=3, format="csr")
        x_data = RNG.normal(size=(4, 3))
        x = Tensor(x_data.copy(), requires_grad=True)
        (sparse_matmul(a, x) ** 2).sum().backward()
        eps = 1e-6
        num = np.zeros_like(x_data)
        for i in range(4):
            for j in range(3):
                for sign in (1, -1):
                    pert = x_data.copy()
                    pert[i, j] += sign * eps
                    val = (np.asarray(a @ pert) ** 2).sum()
                    num[i, j] += sign * val / (2 * eps)
        np.testing.assert_allclose(x.grad, num, atol=1e-5)

    def test_accepts_all_sparse_formats(self):
        dense = np.eye(3)
        x = Tensor(RNG.normal(size=(3, 2)))
        for fmt in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix):
            out = sparse_matmul(fmt(dense), x)
            np.testing.assert_allclose(out.data, x.data)

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError):
            sparse_matmul(np.eye(3), Tensor(np.ones((3, 1))))

    def test_shape_mismatch(self):
        a = sp.eye(3, format="csr")
        with pytest.raises(ValueError):
            sparse_matmul(a, Tensor(np.ones((4, 2))))

    def test_empty_matrix(self):
        a = sp.csr_matrix((3, 5))
        out = sparse_matmul(a, Tensor(np.ones((5, 2))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_chained_through_graph(self):
        """Gradient flows through two stacked sparse matmuls (as in a
        2-layer GCN)."""
        a = sp.random(6, 6, density=0.5, random_state=5, format="csr")
        x = Tensor(RNG.normal(size=(6, 2)), requires_grad=True)
        out = sparse_matmul(a, sparse_matmul(a, x))
        out.sum().backward()
        expected = np.asarray((a.T @ (a.T @ np.ones((6, 2)))))
        np.testing.assert_allclose(x.grad, expected, atol=1e-12)
