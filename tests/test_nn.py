"""Tests for the neural layer module."""

import numpy as np
import pytest

from repro.optim import Adam
from repro.tensor import Tensor
from repro.tensor.nn import MLP, Embedding, Linear

RNG = np.random.default_rng(41)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=RNG)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_matches_manual(self):
        layer = Linear(2, 2, rng=RNG)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_parameters_trainable(self):
        layer = Linear(3, 1, rng=RNG)
        x_data = RNG.normal(size=(16, 3))
        w_true = np.array([[1.0], [-2.0], [0.5]])
        x = Tensor(x_data)
        target = Tensor(x_data @ w_true + 0.3)  # realizable mapping
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            loss = ((layer(x) - target) ** 2).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3

    def test_init_schemes(self):
        he = Linear(100, 10, rng=np.random.default_rng(0), init="he")
        glorot = Linear(100, 10, rng=np.random.default_rng(0),
                        init="glorot")
        assert he.weight.data.std() > glorot.weight.data.std()
        with pytest.raises(ValueError):
            Linear(2, 2, init="magic")


class TestMLP:
    def test_forward_shape(self):
        mlp = MLP((4, 8, 2), rng=RNG)
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_parameter_count(self):
        mlp = MLP((4, 8, 2), rng=RNG)
        assert len(mlp.parameters()) == 4  # 2 layers x (W, b)

    def test_single_layer_no_activation(self):
        """The last layer is linear: a (2, 2) MLP equals its Linear."""
        mlp = MLP((2, 2), rng=np.random.default_rng(7))
        x = np.array([[-5.0, -5.0]])  # relu would zero this if applied
        out = mlp(Tensor(x)).data
        expected = x @ mlp.layers[0].weight.data + mlp.layers[0].bias.data
        np.testing.assert_allclose(out, expected)

    def test_learns_xor(self):
        x = Tensor(np.array([[0, 0], [0, 1], [1, 0], [1, 1]],
                            dtype=float))
        y = Tensor(np.array([[0.0], [1.0], [1.0], [0.0]]))
        mlp = MLP((2, 8, 1), rng=np.random.default_rng(3))
        opt = Adam(mlp.parameters(), lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            loss = ((mlp(x) - y) ** 2).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05

    def test_too_few_sizes_rejected(self):
        with pytest.raises(ValueError):
            MLP((4,))


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(5, 3, rng=RNG)
        out = emb(np.array([0, 2, 0]))
        np.testing.assert_allclose(out.data[0], out.data[2])
        np.testing.assert_allclose(out.data[1], emb.data[2])

    def test_duplicate_gradient_accumulates(self):
        emb = Embedding(4, 2, rng=RNG)
        out = emb(np.array([1, 1, 3]))
        out.sum().backward()
        grad = emb.table.grad
        np.testing.assert_allclose(grad[1], [2.0, 2.0])
        np.testing.assert_allclose(grad[3], [1.0, 1.0])
        np.testing.assert_allclose(grad[0], [0.0, 0.0])
