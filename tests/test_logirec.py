"""Model-level tests for LogiRec and LogiRec++ (fast, tiny budgets)."""

import numpy as np
import pytest

from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.eval import Evaluator


@pytest.fixture(scope="module")
def small_setup():
    ds = generate_dataset(SyntheticConfig(n_users=40, n_items=60,
                                          depth=3, branching=3,
                                          mean_interactions=10.0, seed=7))
    split = temporal_split(ds)
    return ds, split


def _cfg(**kw):
    base = dict(dim=8, epochs=5, batch_size=1024, lr=0.01, lam=1.0,
                margin=0.5, n_negatives=1, n_layers=2, seed=0)
    base.update(kw)
    return LogiRecConfig(**base)


class TestLogiRecTraining:
    def test_fit_and_score_shapes(self, small_setup):
        ds, split = small_setup
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags, _cfg())
        model.fit(ds, split)
        scores = model.score_users(np.array([0, 1, 2]))
        assert scores.shape == (3, ds.n_items)
        assert np.isfinite(scores).all()

    def test_loss_decreases(self, small_setup):
        ds, split = small_setup
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags,
                        _cfg(epochs=15))
        model.fit(ds, split)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_deterministic_given_seed(self, small_setup):
        ds, split = small_setup
        runs = []
        for _ in range(2):
            m = LogiRec(ds.n_users, ds.n_items, ds.n_tags, _cfg())
            m.fit(ds, split)
            runs.append(m.score_users(np.array([0])))
        np.testing.assert_allclose(runs[0], runs[1])

    def test_recommend_excludes_seen(self, small_setup):
        ds, split = small_setup
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags, _cfg())
        model.fit(ds, split)
        seen = ds.items_of_user(split.train)[0]
        recs = model.recommend(0, k=10, exclude=seen)
        assert len(set(recs) & set(seen)) == 0

    def test_final_embeddings_on_manifold(self, small_setup):
        ds, split = small_setup
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags, _cfg())
        model.fit(ds, split)
        user_emb, item_emb = model.final_embeddings()
        from repro.manifolds import Lorentz
        np.testing.assert_allclose(Lorentz.inner_np(user_emb, user_emb),
                                   -1.0, atol=1e-8)
        np.testing.assert_allclose(Lorentz.inner_np(item_emb, item_emb),
                                   -1.0, atol=1e-8)

    def test_manifold_parameterization_trains(self, small_setup):
        ds, split = small_setup
        cfg = _cfg(parameterization="manifold", lr=1.0)
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags, cfg)
        model.fit(ds, split)
        assert np.isfinite(model.score_users(np.array([0]))).all()
        # Manifold constraints hold after training.
        from repro.manifolds import Lorentz
        np.testing.assert_allclose(
            Lorentz.inner_np(model.user_emb.data, model.user_emb.data),
            -1.0, atol=1e-7)
        assert (np.linalg.norm(model.item_emb.data, axis=1) < 1.0).all()

    def test_euclidean_variant_trains(self, small_setup):
        ds, split = small_setup
        cfg = _cfg(hyperbolic=False)
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags, cfg)
        model.fit(ds, split)
        assert np.isfinite(model.score_users(np.array([0, 1]))).all()

    def test_invalid_parameterization_rejected(self, small_setup):
        ds, _ = small_setup
        with pytest.raises(ValueError):
            LogiRec(ds.n_users, ds.n_items, ds.n_tags,
                    _cfg(parameterization="spherical"))

    def test_lam_zero_skips_logic_loss(self, small_setup):
        ds, split = small_setup
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags, _cfg(lam=0.0))
        model.prepare(ds, split)
        loss = model._logic_loss(model._manifold_points()[1])
        assert loss.item() == 0.0

    def test_ablation_switches_disable_losses(self, small_setup):
        ds, split = small_setup
        cfg = _cfg(use_membership=False, use_hierarchy=False,
                   use_exclusion=False)
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags, cfg)
        model.prepare(ds, split)
        loss = model._logic_loss(model._manifold_points()[1])
        assert loss.item() == 0.0

    def test_exclusion_margins_shape(self, small_setup):
        ds, split = small_setup
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags, _cfg())
        model.fit(ds, split)
        margins = model.exclusion_margins()
        assert len(margins) == len(ds.relations.exclusion)

    def test_zero_layer_hgcn_ablation(self, small_setup):
        ds, split = small_setup
        model = LogiRec(ds.n_users, ds.n_items, ds.n_tags,
                        _cfg(n_layers=0))
        model.fit(ds, split)
        assert np.isfinite(model.score_users(np.array([0]))).all()


class TestLogiRecPP:
    def test_alpha_refreshed_and_positive(self, small_setup):
        ds, split = small_setup
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags, _cfg())
        model.fit(ds, split)
        weights = model.user_weights()
        assert (weights["alpha"] > 0).all()
        assert (weights["con"] > 0).all()
        assert (weights["con"] <= 1).all()
        assert (weights["gr"] >= 0).all()

    def test_alpha_mean_normalized(self, small_setup):
        ds, split = small_setup
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags, _cfg())
        model.fit(ds, split)
        alpha = model.user_weights()["alpha"]
        assert alpha.mean() == pytest.approx(1.0, rel=0.2)

    def test_rec_weights_indexed_by_user(self, small_setup):
        ds, split = small_setup
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags, _cfg())
        model.prepare(ds, split)
        model._refresh_alpha()
        users = np.array([3, 3, 5])
        w = model._rec_weights(users)
        assert w[0] == w[1]
        np.testing.assert_allclose(w, model._alpha[users])

    def test_consistency_reflects_planted_traits(self):
        """Users planted with diverse preferences should get lower CON
        on average than strongly consistent users."""
        ds = generate_dataset(SyntheticConfig(
            n_users=120, n_items=150, depth=4, branching=3,
            mean_interactions=18.0, seed=3))
        split = temporal_split(ds)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags, _cfg())
        model.prepare(ds, split)
        con = model._con
        planted = ds.user_consistency
        top = con[planted > np.quantile(planted, 0.8)].mean()
        bottom = con[planted < np.quantile(planted, 0.2)].mean()
        assert top > bottom

    def test_weighting_changes_training(self, small_setup):
        ds, split = small_setup
        plain = LogiRec(ds.n_users, ds.n_items, ds.n_tags,
                        _cfg(epochs=8))
        plain.fit(ds, split)
        weighted = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                             _cfg(epochs=8))
        weighted.fit(ds, split)
        assert not np.allclose(plain.score_users(np.array([0])),
                               weighted.score_users(np.array([0])))

    def test_euclidean_pp_variant(self, small_setup):
        ds, split = small_setup
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          _cfg(hyperbolic=False))
        model.fit(ds, split)
        assert np.isfinite(model.score_users(np.array([0]))).all()

    def test_evaluator_checkpointing(self, small_setup):
        ds, split = small_setup
        evaluator = Evaluator(ds, split)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          _cfg(epochs=6))
        model.fit(ds, split, evaluator=evaluator, eval_every=2)
        result = evaluator.evaluate_test(model)
        assert 0.0 <= result["recall@10"] <= 100.0


class TestLogicalRelationMining:
    def test_overlapping_pairs_less_separated(self):
        """The headline mining claim (Fig. 7/8, case studies): after
        LogiRec++ training, planted-overlap ("falsely exclusive") tag
        pairs end up less geometrically separated than genuine ones."""
        ds = generate_dataset(SyntheticConfig(
            n_users=100, n_items=150, depth=3, branching=3,
            mean_interactions=15.0, overlap_pair_frac=0.4,
            overlap_item_frac=0.7, seed=11))
        split = temporal_split(ds)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          _cfg(epochs=40, lam=2.0))
        model.fit(ds, split)
        margins = model.exclusion_margins()
        pairs = ds.relations.exclusion
        overlap_set = {frozenset(map(int, p)) for p in
                       ds.overlapping_pairs}
        flags = np.array([frozenset(map(int, p)) in overlap_set
                          for p in pairs])
        if flags.any() and (~flags).any():
            assert margins[flags].mean() < margins[~flags].mean() + 0.5
