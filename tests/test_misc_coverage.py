"""Coverage-widening tests for smaller code paths across the stack."""

import numpy as np
import pytest

from repro.core import LogiRecConfig, LogiRecPP
from repro.data import load_dataset, temporal_split
from repro.experiments.figures import (_item_embedding_array,
                                       _primary_tags)
from repro.models import BPRMF, HGCF, TrainConfig
from repro.taxonomy import Taxonomy
from repro.tensor import Tensor, logsumexp, stack, where


class TestTensorMiscPaths:
    def test_logsumexp_keepdims(self):
        x = Tensor(np.zeros((2, 3)))
        out = logsumexp(x, axis=1, keepdims=True)
        assert out.shape == (2, 1)
        np.testing.assert_allclose(out.data, np.log(3.0))

    def test_stack_axis1(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3))
        out = stack([a, b], axis=1)
        assert out.shape == (3, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_where_with_broadcast_condition(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((2, 2)))
        cond = np.array([[True, False], [False, True]])
        out = where(cond, a, b)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, cond.astype(float))

    def test_tensor_repr_and_len(self):
        t = Tensor(np.zeros(4), requires_grad=True)
        assert "requires_grad=True" in repr(t)
        assert len(t) == 4

    def test_comparison_operators_return_numpy(self):
        a = Tensor(np.array([1.0, 3.0]))
        assert (a > 2.0).tolist() == [False, True]
        assert (a <= 3.0).all()
        assert (a >= 1.0).all()
        assert (a < 0.0).sum() == 0

    def test_tensor_size_and_ndim(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.size == 6
        assert t.ndim == 2
        assert t.numpy() is t.data


class TestTaxonomyMiscPaths:
    def test_multiple_roots_are_siblings(self):
        forest = Taxonomy([-1, -1, -1])
        assert set(forest.siblings(0)) == {1, 2}

    def test_repr(self):
        tax = Taxonomy.balanced(2, 2)
        text = repr(tax)
        assert "n_tags=3" in text
        assert "depth=2" in text


class TestFigureHelpers:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = load_dataset("ciao", scale=0.4)
        split = temporal_split(ds)
        return ds, split

    def test_primary_tags_prefers_deepest(self, setup):
        ds, _ = setup
        labels = _primary_tags(ds)
        levels = ds.taxonomy.levels
        csr = ds.item_tags
        for item in range(min(ds.n_items, 30)):
            tags = csr.indices[csr.indptr[item]:csr.indptr[item + 1]]
            if len(tags):
                assert levels[labels[item]] == levels[tags].max()

    def test_item_embedding_extraction_models(self, setup):
        ds, split = setup
        cfg = TrainConfig(dim=8, epochs=2, batch_size=1024, seed=0)
        bpr = BPRMF(ds.n_users, ds.n_items, cfg)
        bpr.fit(ds, split)
        emb = _item_embedding_array(bpr)
        assert emb.shape[0] == ds.n_items
        hgcf = HGCF(ds.n_users, ds.n_items, cfg)
        hgcf.fit(ds, split)
        emb2 = _item_embedding_array(hgcf)
        assert emb2.shape[0] == ds.n_items

    def test_item_embedding_extraction_rejects_unknown(self):
        with pytest.raises(TypeError):
            _item_embedding_array(object())


class TestCLICommands:
    def test_compare_command(self, capsys):
        from repro.cli import main
        code = main(["compare", "--models", "BPRMF", "LogiRec++",
                     "--datasets", "ciao", "--epochs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "BPRMF" in out and "LogiRec++" in out

    def test_ablation_command(self, capsys):
        from repro.cli import main
        code = main(["ablation", "--dataset", "ciao", "--epochs", "2"])
        assert code == 0
        assert "w/o" in capsys.readouterr().out

    def test_cases_command(self, capsys):
        from repro.cli import main
        code = main(["cases", "--dataset", "ciao", "--epochs", "3"])
        assert code == 0
        assert "CON=" in capsys.readouterr().out


class TestRecommendPaths:
    def test_recommend_without_exclusions(self):
        ds = load_dataset("ciao", scale=0.4)
        split = temporal_split(ds)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          LogiRecConfig(dim=8, epochs=2,
                                        batch_size=1024, seed=0))
        model.fit(ds, split)
        recs = model.recommend(0, k=5)
        assert len(recs) == 5

    def test_evaluation_result_getitem(self):
        from repro.eval import Evaluator
        ds = load_dataset("ciao", scale=0.4)
        split = temporal_split(ds)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          LogiRecConfig(dim=8, epochs=2,
                                        batch_size=1024, seed=0))
        model.fit(ds, split)
        result = Evaluator(ds, split).evaluate_test(model)
        assert result["recall@10"] == result.means["recall@10"]
