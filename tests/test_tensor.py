"""Tests for the autograd engine: every op's forward and backward."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (Tensor, arcosh, cat, clamp, clamp_min, cosh, dot,
                          exp, gather_rows, is_grad_enabled, log, logsumexp,
                          matmul, maximum, mean, no_grad, norm, relu,
                          sigmoid, sinh, softplus, sqrt, stack, tanh, tsum,
                          where)

RNG = np.random.default_rng(42)


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = grad.ravel()
    x_flat = x.ravel()
    for i in range(x.size):
        orig = x_flat[i]
        x_flat[i] = orig + eps
        f_plus = fn(x.copy())
        x_flat[i] = orig - eps
        f_minus = fn(x.copy())
        x_flat[i] = orig
        flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_grad(op, x_data, atol=1e-5):
    """Compare analytic vs numerical gradient for a unary op."""
    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x).sum()
    out.backward()
    num = numerical_grad(lambda arr: op(Tensor(arr)).sum().item(),
                         x_data.copy())
    np.testing.assert_allclose(x.grad, num, atol=atol)


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([1.0], requires_grad=True)
        ((-a) - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-2.0])

    def test_div_backward(self):
        check_grad(lambda x: x / 3.0, RNG.normal(1.0, 0.1, (4,)))
        a = Tensor([4.0], requires_grad=True)
        (8.0 / a).backward()
        np.testing.assert_allclose(a.grad, [-8.0 / 16.0])

    def test_pow_backward(self):
        check_grad(lambda x: x ** 3, RNG.normal(1.0, 0.2, (5,)))

    def test_scalar_broadcast(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        (a * 2.0 + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((3, 2), 2.0))

    def test_broadcast_row_vector(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((1, 3)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((1, 3), 4.0))

    def test_matmul_backward(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad,
                                   np.ones((3, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad,
                                   a.data.T @ np.ones((3, 2)))

    def test_repeated_use_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward()  # d(a^2)/da = 2a
        np.testing.assert_allclose(a.grad, [4.0])

    def test_diamond_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        (b + c).backward()
        np.testing.assert_allclose(a.grad, [5.0])


class TestElementwiseOps:
    @pytest.mark.parametrize("op", [exp, tanh, sigmoid, cosh, sinh,
                                    softplus])
    def test_smooth_ops_grad(self, op):
        check_grad(op, RNG.normal(0.0, 0.5, (6,)))

    def test_log_grad(self):
        check_grad(log, RNG.uniform(0.5, 2.0, (6,)))

    def test_sqrt_grad(self):
        check_grad(sqrt, RNG.uniform(0.5, 2.0, (6,)))

    def test_sqrt_at_zero_no_nan(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        sqrt(x).sum().backward()
        assert np.isfinite(x.grad).all()

    def test_arcosh_grad(self):
        check_grad(arcosh, RNG.uniform(1.5, 3.0, (6,)))

    def test_arcosh_clamps_below_domain(self):
        x = Tensor(np.array([0.5, 1.0, 2.0]), requires_grad=True)
        out = arcosh(x)
        assert np.isfinite(out.data).all()
        assert out.data[0] == pytest.approx(0.0, abs=1e-5)
        out.sum().backward()
        assert np.isfinite(x.grad).all()

    def test_relu(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_clamp_min_grad_masks(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        clamp_min(x, 0.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_clamp_two_sided(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        out = clamp(x, -1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_routes_gradient(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_where(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0]), requires_grad=True)
        out = where(np.array([True, False]), a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_mean_grad(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 0.1))

    def test_mean_axis(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 0.2))

    def test_norm_grad(self):
        check_grad(lambda x: norm(x, axis=-1),
                   RNG.normal(1.0, 0.3, (4, 3)))

    def test_norm_at_zero_is_finite(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        norm(x, axis=-1).sum().backward()
        assert np.isfinite(x.grad).all()

    def test_logsumexp_matches_numpy(self):
        x_data = RNG.normal(size=(3, 5))
        out = logsumexp(Tensor(x_data), axis=1)
        expected = np.log(np.exp(x_data).sum(axis=1))
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_logsumexp_grad(self):
        check_grad(lambda x: logsumexp(x, axis=-1),
                   RNG.normal(size=(2, 4)))

    def test_dot(self):
        a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0, 4.0]]))
        out = dot(a, b)
        np.testing.assert_allclose(out.data, [11.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[3.0, 4.0]])


class TestIndexing:
    def test_gather_rows_forward(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        out = gather_rows(x, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_gather_rows_duplicate_accumulates(self):
        x = Tensor(np.zeros((3, 2)), requires_grad=True)
        gather_rows(x, np.array([1, 1, 2])).sum().backward()
        np.testing.assert_allclose(x.grad,
                                   [[0, 0], [2, 2], [1, 1]])

    def test_getitem_backward(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x[0].sum().backward()
        np.testing.assert_allclose(x.grad, [[1, 1, 1], [0, 0, 0]])

    def test_slice_last_axis(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        x[..., 1:].sum().backward()
        expected = np.ones((3, 4))
        expected[:, 0] = 0
        np.testing.assert_allclose(x.grad, expected)

    def test_cat_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = cat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose(self):
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        assert x.T.shape == (3, 2)
        x.T.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_nesting(self):
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data  # shares storage

    def test_backward_on_nonscalar_requires_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_without_requires_grad_raises(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        a.zero_grad()
        assert a.grad is None


class TestPropertyBased:
    @given(st.lists(st.floats(-3, 3), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_exp_log_inverse(self, values):
        x = np.asarray(values)
        out = log(exp(Tensor(x)))
        np.testing.assert_allclose(out.data, x, atol=1e-9)

    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_sum_linearity_of_grad(self, values):
        x_data = np.asarray(values)
        x = Tensor(x_data, requires_grad=True)
        (x.sum() * 3.0).backward()
        np.testing.assert_allclose(x.grad, np.full_like(x_data, 3.0))

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_matmul_shape(self, n, m):
        a = Tensor(np.ones((n, 4)))
        b = Tensor(np.ones((4, m)))
        assert (a @ b).shape == (n, m)

    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_norm_nonnegative_and_triangle(self, values):
        x = np.asarray(values)
        n1 = norm(Tensor(x), axis=-1).item()
        n2 = norm(Tensor(-x), axis=-1).item()
        assert n1 >= 0
        assert n1 == pytest.approx(n2)
        both = norm(Tensor(x + x), axis=-1).item()
        assert both <= n1 + n2 + 1e-9
