"""Tests for LogiRec++'s weighting mechanisms (Eq. 11-14)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weighting import (consistency_weights, granularity_weights,
                                  personalized_weights, tag_frequencies)
from repro.taxonomy import LogicalRelations


def _relations(exclusions, levels=None):
    pairs = np.asarray(exclusions, dtype=np.int64).reshape(-1, 2)
    if levels is None:
        levels = np.full(len(pairs), 2, dtype=np.int64)
    return LogicalRelations(
        membership=np.zeros((0, 2), dtype=np.int64),
        hierarchy=np.zeros((0, 2), dtype=np.int64),
        exclusion=pairs,
        exclusion_levels=np.asarray(levels, dtype=np.int64))


class TestTagFrequencies:
    def test_formula(self):
        tags = np.array([1, 1, 2])
        tf = tag_frequencies(tags)
        assert tf[1] == pytest.approx(np.log(3) / np.log(3))
        assert tf[2] == pytest.approx(np.log(2) / np.log(3))

    def test_empty_and_singleton(self):
        assert tag_frequencies(np.array([])) == {}
        assert tag_frequencies(np.array([5])) == {}

    def test_more_frequent_tag_higher_tf(self):
        tf = tag_frequencies(np.array([1, 1, 1, 2]))
        assert tf[1] > tf[2]


class TestConsistency:
    def test_no_exclusions_gives_one(self):
        rel = _relations(np.zeros((0, 2)))
        con = consistency_weights({0: np.array([1, 2, 3])}, rel, 1)
        np.testing.assert_allclose(con, 1.0)

    def test_user_without_exclusive_tags_gets_one(self):
        rel = _relations([[1, 2]])
        con = consistency_weights({0: np.array([3, 4, 5])}, rel, 1)
        assert con[0] == pytest.approx(1.0)

    def test_exclusive_pair_lowers_consistency(self):
        rel = _relations([[1, 2]])
        consistent = consistency_weights({0: np.array([1, 1, 3])}, rel, 2)
        diverse = consistency_weights({1: np.array([1, 2, 1, 2])}, rel, 2)
        assert diverse[1] < consistent[0]
        assert consistent[0] == pytest.approx(1.0)  # pair not co-present

    def test_lower_level_exclusion_penalized_harder(self):
        """Eq. 12's exp(eta - k): an abstract (level-2) conflict hurts
        more than a deep (level-4) one."""
        tags = {0: np.array([1, 2, 1, 2])}
        shallow = consistency_weights(tags, _relations([[1, 2]], [2]), 1,
                                      eta=4)
        deep = consistency_weights(tags, _relations([[1, 2]], [4]), 1,
                                   eta=4)
        assert shallow[0] < deep[0]

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(0)
        tags = {u: rng.integers(0, 10, size=20) for u in range(5)}
        rel = _relations([[i, j] for i in range(10) for j in
                          range(i + 1, 10)])
        con = consistency_weights(tags, rel, 5)
        assert (con > 0).all()
        assert (con <= 1).all()

    def test_missing_users_default_one(self):
        rel = _relations([[1, 2]])
        con = consistency_weights({}, rel, 3)
        np.testing.assert_allclose(con, 1.0)


class TestGranularity:
    def test_origin_zero(self):
        origin = np.array([[1.0, 0.0, 0.0]])
        np.testing.assert_allclose(granularity_weights(origin), 0.0)

    def test_monotone_in_time_coordinate(self):
        points = np.array([[1.0, 0.0], [2.0, np.sqrt(3.0)],
                           [5.0, np.sqrt(24.0)]])
        gr = granularity_weights(points)
        assert gr[0] < gr[1] < gr[2]

    def test_equals_arccosh_of_x0(self):
        pts = np.array([[3.0, np.sqrt(8.0)]])
        assert granularity_weights(pts)[0] == pytest.approx(np.arccosh(3))


class TestPersonalizedWeights:
    def test_geometric_mean(self):
        alpha = personalized_weights(np.array([0.81]), np.array([0.25]),
                                     normalize=False, clip=None)
        assert alpha[0] == pytest.approx(np.sqrt(0.81 * 0.25))

    def test_normalization_mean_one(self):
        rng = np.random.default_rng(1)
        con = rng.uniform(0.1, 1.0, 50)
        gr = rng.uniform(0.1, 2.0, 50)
        alpha = personalized_weights(con, gr)
        assert alpha.mean() == pytest.approx(1.0, rel=1e-6)

    def test_clip_bounds_dynamic_range(self):
        con = np.array([1e-9, 1.0])
        gr = np.array([1e-9, 1.0])
        alpha = personalized_weights(con, gr, clip=(0.3, 3.0))
        # Dynamic range bounded by the clip ratio even after renormalizing.
        assert alpha.max() / alpha.min() <= 10.0 + 1e-9
        assert (alpha > 0).all()

    def test_ablation_switches(self):
        con = np.array([0.5, 1.0])
        gr = np.array([1.0, 1.0])
        only_gr = personalized_weights(con, gr, use_consistency=False,
                                       normalize=False, clip=None)
        np.testing.assert_allclose(only_gr, 1.0)
        only_con = personalized_weights(con, gr, use_granularity=False,
                                        normalize=False, clip=None)
        np.testing.assert_allclose(only_con, np.sqrt(con))

    def test_ordering_preserved_by_clip(self):
        rng = np.random.default_rng(2)
        con = rng.uniform(0.01, 1.0, 30)
        gr = rng.uniform(0.1, 2.0, 30)
        raw = personalized_weights(con, gr, normalize=False, clip=None)
        clipped = personalized_weights(con, gr)
        # Where the clip does not bind, ordering must match.
        order_raw = np.argsort(raw)
        assert (np.diff(clipped[order_raw]) >= -1e-12).all()


class TestPropertyBased:
    @given(st.lists(st.integers(0, 5), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_tf_bounded(self, tags):
        tf = tag_frequencies(np.asarray(tags))
        for value in tf.values():
            assert 0 < value <= np.log(len(tags) + 1) / np.log(len(tags))

    @given(st.integers(1, 8), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_alpha_positive(self, n_users, seed):
        rng = np.random.default_rng(seed)
        con = rng.uniform(0.0, 1.0, n_users)
        gr = rng.uniform(0.0, 3.0, n_users)
        alpha = personalized_weights(con, gr)
        assert (alpha > 0).all()
