"""Tests for hyperbolic geometry: distances, maps, predicates, gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.manifolds import (Lorentz, PoincareBall, ball_contains_ball,
                             ball_contains_point, balls_disjoint,
                             enclosing_ball, lorentz_to_poincare,
                             poincare_to_lorentz)
from repro.manifolds.base import Euclidean
from repro.manifolds.hyperplane import enclosing_ball_np
from repro.manifolds.maps import (lorentz_to_poincare_np,
                                  poincare_to_lorentz_np)
from repro.tensor import Tensor

RNG = np.random.default_rng(7)


def _poincare_points(n, d, scale=0.2):
    return PoincareBall().random((n, d), RNG, scale=scale)


def _lorentz_points(n, d, scale=0.3):
    return Lorentz().random((n, d + 1), RNG, scale=scale)


class TestPoincare:
    def test_distance_symmetry(self):
        x, y = _poincare_points(5, 4), _poincare_points(5, 4)
        d_xy = PoincareBall.distance(Tensor(x), Tensor(y)).data
        d_yx = PoincareBall.distance(Tensor(y), Tensor(x)).data
        np.testing.assert_allclose(d_xy, d_yx, atol=1e-12)

    def test_distance_identity_zero(self):
        x = _poincare_points(4, 3)
        d = PoincareBall.distance(Tensor(x), Tensor(x)).data
        np.testing.assert_allclose(d, 0.0, atol=1e-5)

    def test_distance_positive(self):
        x, y = _poincare_points(10, 3), _poincare_points(10, 3)
        d = PoincareBall.distance(Tensor(x), Tensor(y)).data
        assert (d >= 0).all()

    def test_triangle_inequality(self):
        x, y, z = (_poincare_points(20, 3) for _ in range(3))
        d = lambda a, b: PoincareBall.distance(Tensor(a), Tensor(b)).data
        assert (d(x, z) <= d(x, y) + d(y, z) + 1e-9).all()

    def test_distance_matches_known_value(self):
        # d(0, x) = 2 artanh(||x||)
        x = np.array([[0.5, 0.0]])
        origin = np.zeros((1, 2))
        d = PoincareBall.distance(Tensor(origin), Tensor(x)).item()
        assert d == pytest.approx(2 * np.arctanh(0.5), rel=1e-9)

    def test_mobius_add_zero_identity(self):
        x = _poincare_points(5, 3)
        out = PoincareBall.mobius_add(Tensor(x),
                                      Tensor(np.zeros_like(x))).data
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_mobius_add_left_inverse(self):
        x = _poincare_points(5, 3)
        out = PoincareBall.mobius_add(Tensor(-x), Tensor(x)).data
        np.testing.assert_allclose(out, 0.0, atol=1e-9)

    def test_expmap_stays_in_ball(self):
        ball = PoincareBall()
        x = _poincare_points(10, 4)
        v = RNG.normal(0, 2.0, (10, 4))
        out = PoincareBall.expmap(Tensor(x), Tensor(v)).data
        assert (np.linalg.norm(out, axis=1) < 1.0).all()

    def test_project_clips_outside_points(self):
        ball = PoincareBall()
        x = RNG.normal(0, 3.0, (20, 4))
        proj = ball.project(x)
        assert (np.linalg.norm(proj, axis=1) < 1.0).all()

    def test_project_keeps_inside_points(self):
        ball = PoincareBall()
        x = _poincare_points(10, 4, scale=0.1)
        np.testing.assert_allclose(ball.project(x), x)

    def test_egrad2rgrad_conformal_factor(self):
        ball = PoincareBall()
        x = np.zeros((1, 3))
        grad = np.ones((1, 3))
        # At the origin the factor is (1/2)^2 = 0.25.
        np.testing.assert_allclose(ball.egrad2rgrad(x, grad), 0.25)

    def test_retract_moves_toward_negative_gradient(self):
        ball = PoincareBall()
        x = np.array([[0.3, 0.0]])
        tangent = np.array([[-0.1, 0.0]])
        out = ball.retract(x, tangent)
        assert out[0, 0] < 0.3

    def test_dist_to_origin_monotone_in_norm(self):
        near = PoincareBall.dist_to_origin(
            Tensor(np.array([[0.1, 0.0]]))).item()
        far = PoincareBall.dist_to_origin(
            Tensor(np.array([[0.8, 0.0]]))).item()
        assert far > near


class TestLorentz:
    def test_points_on_hyperboloid(self):
        pts = _lorentz_points(10, 5)
        inner = Lorentz.inner_np(pts, pts)
        np.testing.assert_allclose(inner, -1.0, atol=1e-9)

    def test_distance_symmetry_and_identity(self):
        x, y = _lorentz_points(6, 4), _lorentz_points(6, 4)
        d_xy = Lorentz.distance(Tensor(x), Tensor(y)).data
        d_yx = Lorentz.distance(Tensor(y), Tensor(x)).data
        np.testing.assert_allclose(d_xy, d_yx, atol=1e-12)
        d_xx = Lorentz.distance(Tensor(x), Tensor(x)).data
        np.testing.assert_allclose(d_xx, 0.0, atol=1e-4)

    def test_sqdist_monotone_with_distance(self):
        x = _lorentz_points(50, 4)
        y = _lorentz_points(50, 4)
        d = Lorentz.distance(Tensor(x), Tensor(y)).data
        sq = Lorentz.sqdist(Tensor(x), Tensor(y)).data
        order_d = np.argsort(d)
        order_sq = np.argsort(sq)
        np.testing.assert_array_equal(order_d, order_sq)

    def test_sqdist_formula(self):
        x, y = _lorentz_points(5, 3), _lorentz_points(5, 3)
        sq = Lorentz.sqdist(Tensor(x), Tensor(y)).data
        d = Lorentz.distance(Tensor(x), Tensor(y)).data
        np.testing.assert_allclose(sq, 2 * (np.cosh(d) - 1), atol=1e-6)

    def test_logmap_expmap_roundtrip(self):
        pts = _lorentz_points(8, 5)
        z = Lorentz.logmap0(Tensor(pts))
        back = Lorentz.expmap0(z).data
        np.testing.assert_allclose(back, pts, atol=1e-9)

    def test_logmap0_time_coordinate_zero(self):
        pts = _lorentz_points(8, 5)
        z = Lorentz.logmap0(Tensor(pts)).data
        np.testing.assert_allclose(z[:, 0], 0.0, atol=1e-12)

    def test_expmap0_lands_on_hyperboloid(self):
        v = np.concatenate([np.zeros((6, 1)),
                            RNG.normal(0, 1, (6, 4))], axis=1)
        out = Lorentz.expmap0(Tensor(v)).data
        np.testing.assert_allclose(Lorentz.inner_np(out, out), -1.0,
                                   atol=1e-9)

    def test_project_restores_constraint(self):
        manifold = Lorentz()
        x = RNG.normal(0, 1, (10, 5))
        proj = manifold.project(x)
        np.testing.assert_allclose(Lorentz.inner_np(proj, proj), -1.0,
                                   atol=1e-9)
        assert (proj[:, 0] > 0).all()

    def test_project_caps_runaway_points(self):
        manifold = Lorentz()
        x = np.zeros((1, 3))
        x[0, 1] = 1e30
        proj = manifold.project(x)
        assert np.isfinite(proj).all()
        assert Lorentz.inner_np(proj, proj) == pytest.approx(-1.0,
                                                             abs=1e-6)

    def test_egrad2rgrad_tangency(self):
        manifold = Lorentz()
        x = _lorentz_points(5, 4)
        grad = RNG.normal(size=(5, 5))
        rgrad = manifold.egrad2rgrad(x, grad)
        # Riemannian gradient must be tangent: <x, rgrad>_L = 0.
        np.testing.assert_allclose(Lorentz.inner_np(x, rgrad), 0.0,
                                   atol=1e-9)

    def test_proj_tangent(self):
        manifold = Lorentz()
        x = _lorentz_points(5, 4)
        v = RNG.normal(size=(5, 5))
        t = manifold.proj_tangent(x, v)
        np.testing.assert_allclose(Lorentz.inner_np(x, t), 0.0, atol=1e-9)

    def test_retract_stays_on_manifold(self):
        manifold = Lorentz()
        x = _lorentz_points(5, 4)
        tangent = manifold.proj_tangent(x, RNG.normal(size=(5, 5)))
        out = manifold.retract(x, 0.1 * tangent)
        np.testing.assert_allclose(Lorentz.inner_np(out, out), -1.0,
                                   atol=1e-8)

    def test_dist_to_origin(self):
        pts = _lorentz_points(6, 3)
        d = Lorentz.dist_to_origin(Tensor(pts)).data
        np.testing.assert_allclose(d, np.arccosh(pts[:, 0]), atol=1e-12)


class TestDiffeomorphisms:
    def test_roundtrip_lorentz(self):
        pts = _lorentz_points(10, 4)
        back = poincare_to_lorentz(lorentz_to_poincare(Tensor(pts))).data
        np.testing.assert_allclose(back, pts, atol=1e-9)

    def test_roundtrip_poincare(self):
        pts = _poincare_points(10, 4)
        back = lorentz_to_poincare(poincare_to_lorentz(Tensor(pts))).data
        np.testing.assert_allclose(back, pts, atol=1e-12)

    def test_maps_preserve_distances(self):
        """The diffeomorphism is an isometry: d_P(x,y) == d_H(p^-1 x, p^-1 y)."""
        x, y = _poincare_points(8, 3), _poincare_points(8, 3)
        d_p = PoincareBall.distance(Tensor(x), Tensor(y)).data
        d_h = Lorentz.distance(poincare_to_lorentz(Tensor(x)),
                               poincare_to_lorentz(Tensor(y))).data
        np.testing.assert_allclose(d_p, d_h, atol=1e-7)

    def test_numpy_mirrors_match_tensor_versions(self):
        pts = _lorentz_points(5, 4)
        np.testing.assert_allclose(lorentz_to_poincare_np(pts),
                                   lorentz_to_poincare(Tensor(pts)).data)
        ball_pts = _poincare_points(5, 4)
        np.testing.assert_allclose(poincare_to_lorentz_np(ball_pts),
                                   poincare_to_lorentz(
                                       Tensor(ball_pts)).data)

    def test_origin_maps_to_origin(self):
        origin_l = np.array([[1.0, 0.0, 0.0]])
        p = lorentz_to_poincare(Tensor(origin_l)).data
        np.testing.assert_allclose(p, 0.0, atol=1e-12)


class TestHyperplanes:
    def test_enclosing_ball_formulas(self):
        c = np.array([[0.5, 0.0]])
        o, r = enclosing_ball_np(c)
        # ||o|| = (1 + 0.25) / (2 * 0.5) = 1.25, along c's direction.
        np.testing.assert_allclose(o, [[1.25, 0.0]])
        assert r[0, 0] == pytest.approx((1 - 0.25) / (2 * 0.5))

    def test_ball_center_outside_unit_ball(self):
        """o_c always lies outside P^d (perpendicular intersection)."""
        c = _poincare_points(20, 3, scale=0.4)
        norms = np.linalg.norm(c, axis=1)
        mask = norms > 1e-3
        o, _ = enclosing_ball_np(c[mask])
        assert (np.linalg.norm(o, axis=1) > 1.0).all()

    def test_perpendicularity_identity(self):
        """||o_c||^2 = 1 + r_c^2 — the perpendicular-intersection identity."""
        c = _poincare_points(20, 3, scale=0.4)
        c = c[np.linalg.norm(c, axis=1) > 1e-2]
        o, r = enclosing_ball_np(c)
        np.testing.assert_allclose(np.sum(o * o, axis=1),
                                   1.0 + r[:, 0] ** 2, atol=1e-9)

    def test_tensor_and_numpy_agree(self):
        c = _poincare_points(10, 4, scale=0.4)
        o_t, r_t = enclosing_ball(Tensor(c))
        o_n, r_n = enclosing_ball_np(c)
        np.testing.assert_allclose(o_t.data, o_n, atol=1e-12)
        np.testing.assert_allclose(r_t.data, r_n, atol=1e-12)

    def test_gradient_flows_through_ball(self):
        c = Tensor(np.array([[0.5, 0.1]]), requires_grad=True)
        o, r = enclosing_ball(c)
        (o.sum() + r.sum()).backward()
        assert c.grad is not None
        assert np.isfinite(c.grad).all()

    def test_membership_predicate(self):
        o = np.array([[2.0, 0.0]])
        r = np.array([[1.5]])
        inside = np.array([[1.0, 0.0]])
        outside = np.array([[-1.0, 0.0]])
        assert ball_contains_point(o, r, inside).all()
        assert not ball_contains_point(o, r, outside).any()

    def test_containment_predicate(self):
        o_big = np.array([[0.0, 0.0]])
        r_big = np.array([[2.0]])
        o_small = np.array([[0.5, 0.0]])
        r_small = np.array([[0.5]])
        assert ball_contains_ball(o_big, r_big, o_small, r_small).all()
        assert not ball_contains_ball(o_small, r_small, o_big,
                                      r_big).any()

    def test_disjoint_predicate(self):
        o_i = np.array([[0.0, 0.0]])
        o_j = np.array([[5.0, 0.0]])
        r = np.array([[1.0]])
        assert balls_disjoint(o_i, r, o_j, r).all()
        assert not balls_disjoint(o_i, r, o_i, r).any()

    def test_radius_shrinks_with_center_norm(self):
        """Fine-grained tags (far centers) get small regions — the
        granularity geometry of Section V-B."""
        near = enclosing_ball_np(np.array([[0.3, 0.0]]))[1][0, 0]
        far = enclosing_ball_np(np.array([[0.9, 0.0]]))[1][0, 0]
        assert far < near


class TestEuclideanManifold:
    def test_noop_projection_and_retraction(self):
        m = Euclidean()
        x = RNG.normal(size=(3, 2))
        np.testing.assert_allclose(m.project(x), x)
        np.testing.assert_allclose(m.retract(x, -x), 0.0)
        np.testing.assert_allclose(m.egrad2rgrad(x, x), x)


class TestPropertyBased:
    @given(st.lists(st.floats(-0.5, 0.5), min_size=2, max_size=2))
    @settings(max_examples=50, deadline=None)
    def test_poincare_lorentz_roundtrip_property(self, coords):
        x = np.asarray([coords])
        if np.linalg.norm(x) >= 0.95:
            return
        back = lorentz_to_poincare(poincare_to_lorentz(Tensor(x))).data
        np.testing.assert_allclose(back, x, atol=1e-9)

    @given(st.floats(0.05, 0.9))
    @settings(max_examples=50, deadline=None)
    def test_enclosing_ball_identity_property(self, c_norm):
        c = np.array([[c_norm, 0.0]])
        o, r = enclosing_ball_np(c)
        assert np.sum(o * o) == pytest.approx(1.0 + r[0, 0] ** 2,
                                              rel=1e-9)

    @given(st.integers(2, 6), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_lorentz_random_valid(self, d, seed):
        pts = Lorentz().random((4, d + 1), np.random.default_rng(seed))
        np.testing.assert_allclose(Lorentz.inner_np(pts, pts), -1.0,
                                   atol=1e-9)
