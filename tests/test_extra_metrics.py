"""Tests for the beyond-accuracy metrics."""

import numpy as np
import pytest

from repro.core import LogiRecConfig, LogiRecPP
from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.eval.extra_metrics import (average_precision_at_k,
                                      beyond_accuracy_report,
                                      catalog_coverage,
                                      exclusion_violation_at_k,
                                      precision_at_k, reciprocal_rank,
                                      tag_consistency_at_k)


class TestPrecisionFamily:
    def test_precision(self):
        ranked = np.array([1, 2, 3, 4])
        assert precision_at_k(ranked, {1, 3}, 4) == 0.5
        assert precision_at_k(ranked, {1}, 2) == 0.5

    def test_precision_empty_truth_raises(self):
        with pytest.raises(ValueError):
            precision_at_k(np.array([1]), set(), 1)

    def test_average_precision_perfect(self):
        assert average_precision_at_k(np.array([5, 6]), {5, 6},
                                      2) == pytest.approx(1.0)

    def test_average_precision_order_matters(self):
        early = average_precision_at_k(np.array([5, 9, 9]), {5}, 3)
        late = average_precision_at_k(np.array([9, 9, 5]), {5}, 3)
        assert early > late

    def test_reciprocal_rank(self):
        assert reciprocal_rank(np.array([9, 5, 7]), {5}) == 0.5
        assert reciprocal_rank(np.array([9, 8]), {5}) == 0.0
        assert reciprocal_rank(np.array([5]), {5}) == 1.0

    def test_catalog_coverage(self):
        lists = [np.array([0, 1]), np.array([1, 2])]
        assert catalog_coverage(lists, 10) == pytest.approx(0.3)


class TestTagAwareMetrics:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(SyntheticConfig(n_users=20, n_items=60,
                                                depth=3, branching=3,
                                                seed=6))

    def test_tag_consistency_full_when_same_tags(self, dataset):
        # Recommend items carrying exactly the user's tags.
        csr = dataset.item_tags
        item0_tags = set(csr.indices[csr.indptr[0]:csr.indptr[1]])
        score = tag_consistency_at_k(np.array([0]), item0_tags, dataset,
                                     k=1)
        assert score == 1.0

    def test_tag_consistency_zero_without_user_tags(self, dataset):
        assert tag_consistency_at_k(np.array([0]), set(), dataset,
                                    k=1) == 0.0

    def test_exclusion_violation_detects_conflicts(self, dataset):
        exclusions = dataset.relations.exclusion
        if len(exclusions) == 0:
            pytest.skip("no exclusions in this realization")
        t_i, t_j = map(int, exclusions[0])
        csc = dataset.item_tags.tocsc()
        items_j = csc.indices[csc.indptr[t_j]:csc.indptr[t_j + 1]]
        # Only count items carrying t_j but NOT t_i (overlap items carry
        # both and never violate for a {t_i}-user).
        clean = [i for i in items_j
                 if dataset.item_tags[i, t_i] == 0]
        if not clean:
            pytest.skip("all items of the pair overlap")
        violation = exclusion_violation_at_k(
            np.array(clean[:1]), {t_i}, dataset, k=1)
        assert violation == 1.0

    def test_exclusion_violation_zero_for_consistent(self, dataset):
        exclusions = dataset.relations.exclusion
        if len(exclusions) == 0:
            pytest.skip("no exclusions in this realization")
        t_i = int(exclusions[0][0])
        csc = dataset.item_tags.tocsc()
        items_i = csc.indices[csc.indptr[t_i]:csc.indptr[t_i + 1]]
        exclusion_set = dataset.relations.exclusion_set()
        clean = [item for item in items_i
                 if not any(frozenset((int(t), t_i)) in exclusion_set
                            for t in dataset.tags_of_items(
                                np.array([item]))[0])]
        if not clean:
            pytest.skip("no clean item found")
        violation = exclusion_violation_at_k(
            np.array(clean[:1]), {t_i}, dataset, k=1)
        assert violation == 0.0


class TestBeyondAccuracyReport:
    def test_report_keys_and_ranges(self):
        ds = generate_dataset(SyntheticConfig(n_users=25, n_items=50,
                                              seed=12))
        split = temporal_split(ds)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          LogiRecConfig(dim=8, epochs=8, seed=0))
        model.fit(ds, split)
        report = beyond_accuracy_report(model, ds, split, k=5)
        for key in ("precision", "map", "mrr", "tag_consistency",
                    "exclusion_violation", "catalog_coverage"):
            assert key in report
            assert 0.0 <= report[key] <= 1.0

    def test_logic_model_has_high_tag_consistency(self):
        """The paper's qualitative claim: logic-aware recommendations
        respect the user's tag neighbourhood."""
        ds = generate_dataset(SyntheticConfig(n_users=60, n_items=100,
                                              depth=3, branching=3,
                                              seed=13))
        split = temporal_split(ds)
        model = LogiRecPP(ds.n_users, ds.n_items, ds.n_tags,
                          LogiRecConfig(dim=8, epochs=40, lam=2.0,
                                        seed=0))
        model.fit(ds, split)
        report = beyond_accuracy_report(model, ds, split, k=10)
        assert report["tag_consistency"] > 0.5
