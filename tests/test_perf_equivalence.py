"""Equivalence and perf-smoke tests for the vectorized hot paths.

The vectorized evaluator, top-K helper, and negative sampler must
reproduce their pre-vectorization reference implementations exactly —
per-user metric vectors feed the Wilcoxon significance test, so even a
tie-break difference would change reported results.  The references are
kept on the classes (``Evaluator._reference_evaluate``,
``TripletSampler._reference_is_positive``) and pinned here on randomized
data; a fast run of ``benchmarks/bench_perf.py`` guards against gross
perf regressions.
"""

import pathlib
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import (SyntheticConfig, generate_dataset, load_dataset,
                        temporal_split)
from repro.data.dataset import InteractionDataset, Split
from repro.data.sampling import TripletSampler
from repro.eval import Evaluator
from repro.eval.metrics import topk_indices
from repro.taxonomy import Taxonomy


class _RandomModel:
    def __init__(self, n_users, n_items, seed=0, quantize=None):
        rng = np.random.default_rng(seed)
        self._scores = rng.standard_normal((n_users, n_items))
        if quantize is not None:
            # Coarse quantization forces heavy score ties, stressing the
            # tie-breaking equivalence of the partial-sort top-K.
            self._scores = np.round(self._scores * quantize) / quantize

    def score_users(self, user_ids):
        return self._scores[np.asarray(user_ids, dtype=np.int64)]


class TestTopKIndices:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_stable_argsort_random(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.standard_normal((17, 113))
        for k in (1, 5, 10, 113, 200):
            expected = np.argsort(-scores, axis=1, kind="stable")[:, :k]
            np.testing.assert_array_equal(topk_indices(scores, k), expected)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_stable_argsort_with_ties(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.integers(0, 4, size=(11, 60)).astype(np.float64)
        for k in (1, 7, 20):
            expected = np.argsort(-scores, axis=1, kind="stable")[:, :k]
            np.testing.assert_array_equal(topk_indices(scores, k), expected)

    def test_all_tied(self):
        scores = np.zeros((3, 30))
        np.testing.assert_array_equal(
            topk_indices(scores, 10),
            np.tile(np.arange(10), (3, 1)))

    def test_masked_rows_with_infinities(self):
        scores = np.zeros((2, 20))
        scores[0, :15] = -np.inf  # only 5 finite items, k beyond them
        expected = np.argsort(-scores, axis=1, kind="stable")[:, :8]
        np.testing.assert_array_equal(topk_indices(scores, 8), expected)

    def test_one_dimensional_input(self):
        scores = np.array([0.5, -1.0, 2.0, 0.5])
        np.testing.assert_array_equal(topk_indices(scores, 3), [2, 0, 3])


def _assert_results_identical(vect, ref):
    np.testing.assert_array_equal(vect.user_ids, ref.user_ids)
    assert set(vect.per_user) == set(ref.per_user)
    for metric in ref.per_user:
        np.testing.assert_array_equal(vect.per_user[metric],
                                      ref.per_user[metric],
                                      err_msg=f"{metric} diverged")


class TestEvaluatorEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_scores_bit_identical(self, seed):
        ds = generate_dataset(SyntheticConfig(
            n_users=40, n_items=70, mean_interactions=11.0, seed=seed))
        split = temporal_split(ds)
        evaluator = Evaluator(ds, split, ks=(10, 20))
        model = _RandomModel(ds.n_users, ds.n_items, seed=seed)
        _assert_results_identical(
            evaluator.evaluate_test(model),
            evaluator._reference_evaluate(model, evaluator._test_items))
        _assert_results_identical(
            evaluator.evaluate_valid(model),
            evaluator._reference_evaluate(model, evaluator._valid_items))

    def test_tied_scores_bit_identical(self):
        ds = generate_dataset(SyntheticConfig(
            n_users=35, n_items=60, mean_interactions=10.0, seed=11))
        split = temporal_split(ds)
        evaluator = Evaluator(ds, split, ks=(5, 10))
        model = _RandomModel(ds.n_users, ds.n_items, seed=3, quantize=2)
        _assert_results_identical(
            evaluator.evaluate_test(model),
            evaluator._reference_evaluate(model, evaluator._test_items))

    def test_train_test_item_overlap(self):
        # A user holding the same item in train and test: the reference
        # drops it from the ranking but keeps it in the recall
        # denominator; the vectorized path must do the same.
        taxonomy = Taxonomy([-1])
        users = np.array([0, 0, 0, 1, 1, 1])
        items = np.array([2, 3, 2, 0, 1, 4])
        ds = InteractionDataset(
            users, items, np.arange(6), n_users=2, n_items=5,
            item_tags=sp.csr_matrix((5, 1)), taxonomy=taxonomy)
        split = Split(train=np.array([0, 1, 3, 4]),
                      valid=np.array([], dtype=np.int64),
                      test=np.array([2, 5]))  # user 0's test item 2 is
        # also its train item; user 1's test item 4 is fresh.
        evaluator = Evaluator(ds, split, ks=(2, 4))
        model = _RandomModel(2, 5, seed=0)
        vect = evaluator.evaluate_test(model)
        ref = evaluator._reference_evaluate(model, evaluator._test_items)
        _assert_results_identical(vect, ref)
        assert vect.per_user["recall@4"][0] == 0.0  # unreachable truth

    def test_batch_size_does_not_change_results(self):
        ds = generate_dataset(SyntheticConfig(
            n_users=30, n_items=50, mean_interactions=12.0, seed=8))
        split = temporal_split(ds)
        model = _RandomModel(ds.n_users, ds.n_items, seed=5)
        big = Evaluator(ds, split, batch_size=256).evaluate_test(model)
        small = Evaluator(ds, split, batch_size=7).evaluate_test(model)
        _assert_results_identical(small, big)


class _ReferenceSampler(TripletSampler):
    """The sampler as it was: per-triplet membership loop."""

    _is_positive = TripletSampler._reference_is_positive


class TestSamplerEquivalence:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = load_dataset("ciao", scale=0.5)
        return ds, temporal_split(ds)

    def test_membership_matches_reference(self, setup):
        ds, split = setup
        sampler = TripletSampler(ds, split.train,
                                 rng=np.random.default_rng(0))
        rng = np.random.default_rng(42)
        users = rng.integers(0, ds.n_users, size=2000)
        items = rng.integers(0, ds.n_items, size=2000)
        np.testing.assert_array_equal(
            sampler._is_positive(users, items),
            sampler._reference_is_positive(users, items))
        # Known positives must all test True.
        np.testing.assert_array_equal(
            sampler._is_positive(sampler.users, sampler.items),
            np.ones(len(sampler.users), dtype=bool))

    def test_negatives_never_positives(self, setup):
        ds, split = setup
        sampler = TripletSampler(ds, split.train,
                                 rng=np.random.default_rng(1))
        for users, _, neg in sampler.epoch(512):
            assert not sampler._reference_is_positive(users, neg).any()

    def test_identical_sample_stream_to_reference(self, setup):
        # Same membership answers -> same rejection rounds -> the
        # vectorized sampler consumes the RNG identically and yields
        # bit-identical triplets.
        ds, split = setup
        fast = TripletSampler(ds, split.train,
                              rng=np.random.default_rng(7))
        ref = _ReferenceSampler(ds, split.train,
                                rng=np.random.default_rng(7))
        for (u1, p1, n1), (u2, p2, n2) in zip(fast.epoch(256),
                                              ref.epoch(256)):
            np.testing.assert_array_equal(u1, u2)
            np.testing.assert_array_equal(p1, p2)
            np.testing.assert_array_equal(n1, n2)


class TestPerfSmoke:
    """REPRO_BENCH_FAST-scale run of the perf bench inside tier-1.

    Guards against gross perf regressions (a reintroduced Python loop on
    a hot path) with deliberately loose floors, plus a generous
    wall-clock ceiling so pathological slowdowns fail loudly.
    """

    WALL_CLOCK_LIMIT_S = 180.0

    def test_fast_perf_smoke(self, monkeypatch):
        bench_dir = str(pathlib.Path(__file__).parent.parent / "benchmarks")
        monkeypatch.syspath_prepend(bench_dir)
        import bench_perf

        monkeypatch.setattr(bench_perf, "BENCH_SCALE", 1.0)
        monkeypatch.setattr(bench_perf, "EVAL_REPEATS", 1)
        monkeypatch.setattr(bench_perf, "SAMPLER_ROUNDS", 2)
        monkeypatch.setattr(bench_perf, "TRAIN_STEPS", 3)
        start = time.perf_counter()
        results = bench_perf.run_perf_suite(write=False)
        elapsed = time.perf_counter() - start
        assert elapsed < self.WALL_CLOCK_LIMIT_S
        assert results["evaluation"]["identical_per_user_vectors"]
        assert results["evaluation"]["speedup"] >= 2.0
        assert results["sampling"]["speedup"] >= 4.0
        for row in results["train_step"].values():
            for backend in ("reference", "fast"):
                assert row[backend]["ms_per_step"] > 0.0
            assert row["speedup"] > 0.0
