"""Smoke + behaviour tests for all 13 baseline models."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset, temporal_split
from repro.eval import Evaluator
from repro.models import (AGCN, AMF, BPRMF, CML, CMLF, GDCF, HGCF, HRCF,
                          HyperML, LightGCN, NeuMF, SML, TrainConfig,
                          TransC)


@pytest.fixture(scope="module")
def setup():
    ds = generate_dataset(SyntheticConfig(n_users=40, n_items=60,
                                          depth=3, branching=3,
                                          mean_interactions=10.0, seed=4))
    return ds, temporal_split(ds)


def _cfg(**kw):
    base = dict(dim=8, epochs=5, batch_size=1024, lr=0.01, margin=0.5,
                n_negatives=1, seed=0)
    base.update(kw)
    return TrainConfig(**base)


def _build(name, ds):
    tag_models = {"CMLF": CMLF, "AMF": AMF, "TransC": TransC,
                  "AGCN": AGCN}
    plain = {"BPRMF": BPRMF, "NeuMF": NeuMF, "CML": CML, "SML": SML,
             "HyperML": HyperML, "LightGCN": LightGCN, "HGCF": HGCF,
             "GDCF": GDCF, "HRCF": HRCF}
    lr = {"CML": 0.3, "SML": 0.3, "CMLF": 0.3, "TransC": 0.3}.get(
        name, 0.01)
    if name in tag_models:
        return tag_models[name](ds.n_users, ds.n_items, ds.n_tags,
                                _cfg(lr=lr))
    return plain[name](ds.n_users, ds.n_items, _cfg(lr=lr))


ALL_BASELINES = ["BPRMF", "NeuMF", "CML", "SML", "HyperML", "CMLF",
                 "AMF", "TransC", "AGCN", "LightGCN", "HGCF", "GDCF",
                 "HRCF"]


class TestAllBaselines:
    @pytest.mark.parametrize("name", ALL_BASELINES)
    def test_fit_and_score(self, setup, name):
        ds, split = setup
        model = _build(name, ds)
        model.fit(ds, split)
        scores = model.score_users(np.array([0, 1]))
        assert scores.shape == (2, ds.n_items)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("name", ALL_BASELINES)
    def test_loss_finite(self, setup, name):
        ds, split = setup
        model = _build(name, ds)
        model.fit(ds, split)
        assert all(np.isfinite(x) for x in model.loss_history)

    @pytest.mark.parametrize("name", ["BPRMF", "CML", "LightGCN",
                                      "HGCF"])
    def test_deterministic(self, setup, name):
        ds, split = setup
        scores = []
        for _ in range(2):
            model = _build(name, ds)
            model.fit(ds, split)
            scores.append(model.score_users(np.array([0])))
        np.testing.assert_allclose(scores[0], scores[1])

    @pytest.mark.parametrize("name", ["BPRMF", "LightGCN", "HGCF",
                                      "CML"])
    def test_better_than_random(self, setup, name):
        """With a modest budget, every serious model beats random
        ranking on training-set recall structure (weak but meaningful)."""
        ds, split = setup
        model = _build(name, ds)
        model.config.epochs = 40
        model.fit(ds, split)
        evaluator = Evaluator(ds, split)
        result = evaluator.evaluate_test(model)
        # Random recall@10 on 60 items is ~17%; trained should be finite
        # and the harness should produce sane percentages.
        assert 0.0 <= result["recall@10"] <= 100.0


class TestModelSpecificBehaviour:
    def test_cml_embeddings_stay_in_unit_ball(self, setup):
        ds, split = setup
        model = _build("CML", ds)
        model.fit(ds, split)
        assert (np.linalg.norm(model.user_emb.data, axis=1)
                <= 1.0 + 1e-9).all()
        assert (np.linalg.norm(model.item_emb.data, axis=1)
                <= 1.0 + 1e-9).all()

    def test_sml_margins_learnable_and_bounded(self, setup):
        ds, split = setup
        model = _build("SML", ds)
        model.fit(ds, split)
        # Margins moved away from their initialization somewhere.
        assert model.user_margin.data.shape == (ds.n_users, 1)

    def test_hgcf_tangent_vs_manifold_param(self, setup):
        ds, split = setup
        tangent = HGCF(ds.n_users, ds.n_items, _cfg(), n_layers=2,
                       parameterization="tangent")
        manifold = HGCF(ds.n_users, ds.n_items, _cfg(lr=1.0), n_layers=2,
                        parameterization="manifold")
        for m in (tangent, manifold):
            m.fit(ds, split)
            assert np.isfinite(m.score_users(np.array([0]))).all()

    def test_hgcf_invalid_parameterization(self, setup):
        ds, _ = setup
        with pytest.raises(ValueError):
            HGCF(ds.n_users, ds.n_items, _cfg(),
                 parameterization="nope")

    def test_agcn_attribute_head_learns_tags(self, setup):
        """AGCN's tag-prediction BCE should drop during training."""
        ds, split = setup
        model = AGCN(ds.n_users, ds.n_items, ds.n_tags,
                     _cfg(epochs=30, lr=0.02))
        model.fit(ds, split)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_transc_radii_positive(self, setup):
        ds, split = setup
        model = _build("TransC", ds)
        model.fit(ds, split)
        from repro.tensor import softplus
        radii = softplus(model.tag_radii_raw).data
        assert (radii > 0).all()

    def test_gdcf_mix_weight_trains(self, setup):
        ds, split = setup
        model = _build("GDCF", ds)
        model.fit(ds, split)
        assert np.isfinite(model.mix_logit.data).all()

    def test_neumf_scores_differ_across_users(self, setup):
        ds, split = setup
        model = _build("NeuMF", ds)
        model.fit(ds, split)
        scores = model.score_users(np.array([0, 1]))
        assert not np.allclose(scores[0], scores[1])

    def test_bprmf_bias_breaks_ties(self, setup):
        ds, split = setup
        model = _build("BPRMF", ds)
        model.fit(ds, split)
        # Item bias should be non-degenerate after training.
        assert model.item_bias.data.std() > 0

    def test_recommend_top_k(self, setup):
        ds, split = setup
        model = _build("BPRMF", ds)
        model.fit(ds, split)
        recs = model.recommend(0, k=7)
        assert len(recs) == 7
        assert len(set(recs.tolist())) == 7


class TestAdjacencyHelpers:
    def test_normalized_adjacency_rows_sum_to_one(self, setup):
        ds, split = setup
        from repro.models.base import Recommender
        a_ui, a_iu = Recommender.normalized_adjacency(ds, split.train)
        row_sums = np.asarray(a_ui.sum(axis=1)).ravel()
        nonzero = row_sums[row_sums > 0]
        np.testing.assert_allclose(nonzero, 1.0, atol=1e-9)

    def test_symmetric_adjacency_is_symmetric(self, setup):
        ds, split = setup
        from repro.models.base import Recommender
        adj = Recommender.symmetric_adjacency(ds, split.train)
        diff = (adj - adj.T)
        assert abs(diff).max() < 1e-12

    def test_symmetric_adjacency_shape(self, setup):
        ds, split = setup
        from repro.models.base import Recommender
        adj = Recommender.symmetric_adjacency(ds, split.train)
        n = ds.n_users + ds.n_items
        assert adj.shape == (n, n)
