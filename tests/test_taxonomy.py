"""Tests for the taxonomy structure and logical relation extraction."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taxonomy import (Taxonomy, extract_exclusions, extract_hierarchy,
                            extract_membership, extract_relations)


@pytest.fixture
def music_taxonomy():
    """The paper's Fig. 1 style taxonomy.

    0 <Music>
      1 <Rock>
        3 <Punk Rock>
        4 <Alternative Rock>
          6 <British Alternative>
          7 <American Alternative>
      2 <Classical>
        5 <Ballets & Dances>
    """
    parents = [-1, 0, 0, 1, 1, 2, 4, 4]
    names = ["<Music>", "<Rock>", "<Classical>", "<Punk Rock>",
             "<Alternative Rock>", "<Ballets & Dances>",
             "<British Alternative>", "<American Alternative>"]
    return Taxonomy(parents, names)


class TestTaxonomyStructure:
    def test_levels(self, music_taxonomy):
        assert music_taxonomy.level(0) == 1
        assert music_taxonomy.level(1) == 2
        assert music_taxonomy.level(3) == 3
        assert music_taxonomy.level(6) == 4
        assert music_taxonomy.depth == 4

    def test_children_and_parent(self, music_taxonomy):
        assert music_taxonomy.children(1) == [3, 4]
        assert music_taxonomy.parent(6) == 4
        assert music_taxonomy.parent(0) == -1

    def test_roots_and_leaves(self, music_taxonomy):
        assert music_taxonomy.roots == [0]
        assert set(music_taxonomy.leaves) == {3, 5, 6, 7}

    def test_ancestors(self, music_taxonomy):
        assert music_taxonomy.ancestors(6) == [4, 1, 0]
        assert music_taxonomy.ancestors(0) == []

    def test_descendants(self, music_taxonomy):
        assert set(music_taxonomy.descendants(1)) == {3, 4, 6, 7}
        assert music_taxonomy.descendants(5) == []

    def test_siblings(self, music_taxonomy):
        assert music_taxonomy.siblings(3) == [4]
        assert music_taxonomy.siblings(1) == [2]
        assert music_taxonomy.siblings(0) == []

    def test_subtree_leaves(self, music_taxonomy):
        assert set(music_taxonomy.subtree_leaves(1)) == {3, 6, 7}
        assert music_taxonomy.subtree_leaves(5) == [5]

    def test_lca(self, music_taxonomy):
        assert music_taxonomy.lowest_common_ancestor(6, 7) == 4
        assert music_taxonomy.lowest_common_ancestor(3, 6) == 1
        assert music_taxonomy.lowest_common_ancestor(3, 5) == 0
        assert music_taxonomy.lowest_common_ancestor(4, 6) == 4

    def test_lca_different_trees(self):
        forest = Taxonomy([-1, -1, 0, 1])
        assert forest.lowest_common_ancestor(2, 3) == -1

    def test_tags_at_level(self, music_taxonomy):
        assert music_taxonomy.tags_at_level(2) == [1, 2]
        assert music_taxonomy.tags_at_level(4) == [6, 7]

    def test_self_parent_rejected(self):
        with pytest.raises(ValueError, match="own parent"):
            Taxonomy([0])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            Taxonomy([1, 0])

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            Taxonomy([-1, 5])

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="names"):
            Taxonomy([-1, 0], names=["only-one"])

    def test_serialization_roundtrip(self, music_taxonomy, tmp_path):
        path = str(tmp_path / "tax.json")
        music_taxonomy.save(path)
        loaded = Taxonomy.load(path)
        np.testing.assert_array_equal(loaded.parents,
                                      music_taxonomy.parents)
        assert loaded.names == music_taxonomy.names

    def test_balanced_construction(self):
        tax = Taxonomy.balanced(depth=3, branching=2, n_roots=2)
        assert tax.depth == 3
        assert len(tax.roots) == 2
        # 2 roots + 4 level-2 + 8 level-3
        assert tax.n_tags == 14
        assert len(tax.leaves) == 8


class TestRelationExtraction:
    def test_membership_extraction(self, music_taxonomy):
        q = sp.csr_matrix(np.array([
            [0, 1, 0, 1, 0, 0, 0, 0],   # item 0: <Rock>, <Punk Rock>
            [0, 0, 1, 0, 0, 1, 0, 0],   # item 1: <Classical>, <Ballets>
        ]))
        pairs = extract_membership(q)
        expected = {(0, 1), (0, 3), (1, 2), (1, 5)}
        assert {tuple(p) for p in pairs} == expected

    def test_hierarchy_extraction(self, music_taxonomy):
        pairs = extract_hierarchy(music_taxonomy)
        as_set = {tuple(p) for p in pairs}
        assert (1, 3) in as_set and (1, 4) in as_set
        assert (4, 6) in as_set and (0, 1) in as_set
        assert len(pairs) == 7  # every non-root has exactly one edge

    def test_exclusion_siblings_without_common_child(self, music_taxonomy):
        pairs, levels = extract_exclusions(music_taxonomy)
        as_set = {tuple(sorted(p)) for p in pairs}
        assert (1, 2) in as_set    # <Rock> vs <Classical>
        assert (3, 4) in as_set    # <Punk Rock> vs <Alternative Rock>
        assert (6, 7) in as_set    # the two alternatives
        assert len(pairs) == 3

    def test_exclusion_levels(self, music_taxonomy):
        pairs, levels = extract_exclusions(music_taxonomy)
        by_pair = {tuple(sorted(p)): l for p, l in zip(pairs, levels)}
        assert by_pair[(1, 2)] == 2
        assert by_pair[(3, 4)] == 3
        assert by_pair[(6, 7)] == 4

    def test_exclusion_ordering_canonical(self, music_taxonomy):
        pairs, _ = extract_exclusions(music_taxonomy)
        assert (pairs[:, 0] < pairs[:, 1]).all()

    def test_common_child_blocks_exclusion(self):
        # Tags 1 and 2 share child 3 -> not exclusive.
        tax = Taxonomy([-1, 0, 0, 1])
        # Give 2 a shared descendant by rebuilding: 3 child of 1 only; make
        # a DAG-like share impossible in a tree, so emulate via items below.
        pairs, _ = extract_exclusions(tax)
        assert {tuple(p) for p in pairs} == {(1, 2)}

    def test_item_overlap_filter(self, music_taxonomy):
        # Items tagged with both 3 and 4 -> high Jaccard -> filtered.
        q = np.zeros((4, 8))
        q[:, 3] = 1
        q[:, 4] = 1
        pairs_all, _ = extract_exclusions(music_taxonomy,
                                          sp.csr_matrix(q),
                                          max_item_overlap=1.0)
        pairs_filt, _ = extract_exclusions(music_taxonomy,
                                           sp.csr_matrix(q),
                                           max_item_overlap=0.5)
        assert (3, 4) in {tuple(p) for p in pairs_all}
        assert (3, 4) not in {tuple(p) for p in pairs_filt}

    def test_extract_relations_bundle(self, music_taxonomy):
        q = sp.csr_matrix(np.eye(8))
        rel = extract_relations(music_taxonomy, q)
        assert rel.counts["n_membership"] == 8
        assert rel.counts["n_hierarchy"] == 7
        assert rel.counts["n_exclusion"] == 3
        assert len(rel.exclusion_levels) == 3

    def test_exclusion_set_lookup(self, music_taxonomy):
        rel = extract_relations(music_taxonomy, sp.csr_matrix(np.eye(8)))
        ex = rel.exclusion_set()
        assert frozenset((1, 2)) in ex
        assert frozenset((1, 3)) not in ex

    def test_empty_taxonomy(self):
        tax = Taxonomy([])
        assert tax.n_tags == 0
        assert tax.depth == 0
        pairs, levels = extract_exclusions(tax)
        assert len(pairs) == 0


class TestPropertyBased:
    @given(st.integers(2, 4), st.integers(2, 4), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_balanced_taxonomy_invariants(self, depth, branching, roots):
        tax = Taxonomy.balanced(depth, branching, roots)
        # Every non-root's level is its parent's + 1.
        for t in range(tax.n_tags):
            p = tax.parent(t)
            if p >= 0:
                assert tax.level(t) == tax.level(p) + 1
        # Leaves count: roots * branching^(depth-1).
        assert len(tax.leaves) == roots * branching ** (depth - 1)

    @given(st.integers(2, 4), st.integers(2, 3))
    @settings(max_examples=20, deadline=None)
    def test_exclusions_are_siblings(self, depth, branching):
        tax = Taxonomy.balanced(depth, branching)
        pairs, levels = extract_exclusions(tax)
        for (a, b), level in zip(pairs, levels):
            assert tax.level(a) == tax.level(b) == level
            assert tax.parent(a) == tax.parent(b)
