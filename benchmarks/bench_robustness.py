"""Extension bench: taxonomy-corruption robustness (not a paper table).

Quantifies the paper's motivating claim that extracted relations are
noisy and that behaviour-driven mining compensates: corrupt a growing
fraction of taxonomy edges and compare LogiRec vs LogiRec++ degradation.
"""

from conftest import EPOCHS_STUDY
from repro.experiments.robustness import (format_robustness_table,
                                          run_noise_robustness)

FRACTIONS = (0.0, 0.25, 0.5)


def test_noise_robustness(benchmark, artifact):
    results = benchmark.pedantic(
        run_noise_robustness,
        kwargs=dict(dataset_name="cd", fractions=FRACTIONS,
                    epochs=EPOCHS_STUDY),
        rounds=1, iterations=1)
    artifact("robustness", format_robustness_table(results))

    # Both models should still clearly work under 50% corruption.
    for fraction in FRACTIONS:
        for name in ("LogiRec", "LogiRec++"):
            assert results[fraction][name]["recall@10"] > 2.0
    # Mining should not be *hurt more* by corruption than no-mining.
    gain_clean = (results[0.0]["LogiRec++"]["recall@10"]
                  - results[0.0]["LogiRec"]["recall@10"])
    gain_noisy = (results[0.5]["LogiRec++"]["recall@10"]
                  - results[0.5]["LogiRec"]["recall@10"])
    assert gain_noisy >= gain_clean - 5.0
