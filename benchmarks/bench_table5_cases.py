"""Table V: interpretable case studies (CON / GR / alpha user profiles).

Trains LogiRec++ on the cd and book configs and prints, for four
contrasting users each, the consistency CON, granularity GR, and
personalized weight alpha together with the tag profile and the tagged
top-K recommendations — the machine-readable version of the paper's
Table V rows.

Shape expectations:
* the highest-CON user's recommendations are concentrated in few tags;
* alpha is the geometric mean of CON and GR (up to normalization), so a
  high-CON high-GR user outranks a low-CON low-GR user.
"""

from conftest import EPOCHS_STUDY
from repro.core import LogiRecConfig, LogiRecPP
from repro.data import load_dataset, temporal_split
from repro.eval import Evaluator
from repro.experiments import case_studies
from repro.experiments.cases import format_case_table
from repro.experiments.runner import LAMBDA_BY_DATASET


def _run(dataset_name: str):
    dataset = load_dataset(dataset_name)
    split = temporal_split(dataset)
    config = LogiRecConfig(dim=16, epochs=EPOCHS_STUDY,
                           lam=LAMBDA_BY_DATASET[dataset_name], seed=0)
    model = LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags,
                      config)
    model.fit(dataset, split, evaluator=Evaluator(dataset, split))
    rows = case_studies(model, dataset, split)
    return rows


def test_table5_case_studies(benchmark, artifact):
    def run_both():
        return {"cd": _run("cd"), "book": _run("book")}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = "\n\n".join(f"=== {ds} ===\n" + format_case_table(rows)
                       for ds, rows in results.items())
    artifact("table5_cases", text)

    for rows in results.values():
        assert len(rows) >= 2
        for row in rows:
            assert 0.0 < row["con"] <= 1.0
            assert row["gr"] >= 0.0
            assert row["alpha"] > 0.0
            assert row["recommended_items"]
        # The contrast the table stages: picked users span a CON range.
        cons = [row["con"] for row in rows]
        assert max(cons) > min(cons)
