"""Fig. 6: Recall@10 / NDCG@10 of LogiRec++ across λ vs the best baseline.

Sweeps the logical-regularizer weight λ over {0, 0.01, 0.1, 1.0, 1.5} on
all four datasets (the paper plots the same series against HRCF; at bench
scale we compare against the stronger LightGCN as well).

Shape expectations:
* inverted-U in λ: the optimum is interior, λ = 0 clearly suboptimal;
* at its optimal λ, LogiRec++ is at or above the baseline series.
"""

from conftest import EPOCHS_STUDY
from repro.experiments import run_lambda_sweep

DATASETS = ("ciao", "cd", "clothing", "book")
LAMBDAS = (0.0, 0.01, 0.1, 1.0, 2.0, 5.0, 10.0)


def _format(results) -> str:
    lines = []
    for ds, payload in results.items():
        lines.append(f"=== {ds} ===")
        base = payload["baseline"]
        lines.append("  baseline (HRCF): "
                     + " ".join(f"{k}={v:.2f}" for k, v in
                                sorted(base.items())))
        for lam, metrics in payload["series"].items():
            lines.append(f"  lambda={lam:<5}: "
                         + " ".join(f"{k}={v:.2f}" for k, v in
                                    sorted(metrics.items())))
        lines.append("")
    return "\n".join(lines)


def test_fig6_lambda_sweep(benchmark, artifact):
    results = benchmark.pedantic(
        run_lambda_sweep,
        kwargs=dict(dataset_names=DATASETS, lambdas=LAMBDAS,
                    baseline="HRCF", epochs=EPOCHS_STUDY),
        rounds=1, iterations=1)
    artifact("fig6_lambda", _format(results))

    for ds in DATASETS:
        series = {lam: m["recall@10"]
                  for lam, m in results[ds]["series"].items()}
        best_lam = max(series, key=series.get)
        # Interior optimum: λ = 0 is not the best choice.
        assert best_lam != 0.0, ds
        # At optimal λ, LogiRec++ beats the HRCF baseline series.
        assert series[best_lam] >= results[ds]["baseline"]["recall@10"], ds
