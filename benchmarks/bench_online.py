"""Online-learning benchmark: ingest throughput, fine-tune cost, freshness.

Writes ``BENCH_online.json`` at the repository root, next to
``BENCH_serve.json``, recording the three numbers the online subsystem
is judged on:

* **ingest throughput** — journal append + replay-and-fold rate in
  events/second (the whole path: JSONL encode, fsync-free append,
  re-read, invariant checks, CSR-feeding array growth);
* **fine-tune cost vs full retrain** — wall-clock for the warm-start
  incremental fine-tune (checkpoint load, embedding resize over the
  streamed-in cold entities, a few epochs on the recency tail) as a
  fraction of retraining the same architecture from scratch on the full
  log at its offline epoch budget.  The recorded contract:
  **fine-tune <= 25% of the retrain**, the headroom that makes
  continuous updating affordable at all;
* **freshness** — event→servable latency through a full
  :class:`~repro.online.OnlineLoop` cycle (ingest → fine-tune → export
  → checksum-verified swap), plus the in-process swap latency itself.

Run standalone (``PYTHONPATH=src python benchmarks/bench_online.py``) or
through pytest (``pytest benchmarks/bench_online.py``).  Set
``REPRO_BENCH_FAST=1`` for smaller stream and epoch budgets.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from typing import Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_online.json"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

MODEL = "BPRMF"
DATASET = "cd"
N_EVENTS = 200 if FAST else 600
N_NEW_USERS = 4
N_NEW_ITEMS = 4
RETRAIN_EPOCHS = 4 if FAST else 8
FINETUNE_EPOCHS = 1 if FAST else 2
TAIL_FRAC = 0.25
MAX_COST_RATIO = 0.25


def run_online_suite(write: bool = False) -> Dict[str, object]:
    from repro.data import load_dataset, temporal_split
    from repro.experiments.runner import build_model
    from repro.online import (EventJournal, OnlineLoop, StreamIngestor,
                              incremental_finetune, simulate_events)
    from repro.serve.checkpoint import save_checkpoint

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro_bench_online_"))

    # -- offline base: the checkpoint every fine-tune warm-starts from --
    dataset = load_dataset(DATASET)
    split = temporal_split(dataset)
    base = build_model(MODEL, dataset, seed=0)
    base.config.epochs = RETRAIN_EPOCHS
    t0 = time.perf_counter()
    base.fit(dataset, split)
    retrain_s = time.perf_counter() - t0
    save_checkpoint(base, workdir / "ck", dataset=dataset)

    # -- ingest throughput: append + replay-and-fold ------------------
    journal = EventJournal(workdir / "journal.jsonl")
    events = simulate_events(dataset, N_EVENTS, N_NEW_USERS,
                             N_NEW_ITEMS, seed=0)
    t0 = time.perf_counter()
    journal.append(events)
    append_s = time.perf_counter() - t0
    ingestor = StreamIngestor(dataset, journal)
    t0 = time.perf_counter()
    totals = ingestor.drain(batch_size=256)
    drain_s = time.perf_counter() - t0
    ingest = {
        "n_events": N_EVENTS,
        "append_events_per_s": N_EVENTS / max(append_s, 1e-9),
        "fold_events_per_s": N_EVENTS / max(drain_s, 1e-9),
        "events_per_s": N_EVENTS / max(append_s + drain_s, 1e-9),
        "n_new_users": totals["n_new_users"],
        "n_new_items": totals["n_new_items"],
    }

    # -- fine-tune cost vs the from-scratch retrain -------------------
    t0 = time.perf_counter()
    tuned = incremental_finetune(workdir / "ck", dataset,
                                 epochs=FINETUNE_EPOCHS,
                                 tail_frac=TAIL_FRAC)
    finetune_s = time.perf_counter() - t0
    finetune = {
        "finetune_s": finetune_s,
        "retrain_s": retrain_s,
        "cost_ratio": finetune_s / max(retrain_s, 1e-9),
        "epochs": FINETUNE_EPOCHS,
        "retrain_epochs": RETRAIN_EPOCHS,
        "tail_frac": TAIL_FRAC,
        "n_tail": tuned["n_tail"],
        "growth": tuned["growth"],
        "final_loss": tuned["final_loss"],
    }

    # -- freshness: event -> servable through a full loop cycle -------
    loop = OnlineLoop(workdir / "loop", model_name=MODEL,
                      dataset_name=DATASET, seed=0)
    loop.bootstrap(epochs=RETRAIN_EPOCHS)
    t0 = time.perf_counter()
    cycle = loop.run_cycle(n_events=N_EVENTS // 2,
                           n_new_users=N_NEW_USERS,
                           n_new_items=N_NEW_ITEMS,
                           finetune_epochs=FINETUNE_EPOCHS,
                           tail_frac=TAIL_FRAC)
    cycle_s = time.perf_counter() - t0
    freshness = {
        "event_to_servable_s": cycle["swap"]["event_to_servable_s"],
        "swap_latency_ms": cycle["swap"]["swap_latency_ms"],
        "cycle_s": cycle_s,
        "cold_start_hit_rate": cycle["cold_start"]["hit_rate"],
        "index_version": cycle["swap"]["version"],
    }

    results = {
        "model": MODEL,
        "dataset": DATASET,
        "ingest": ingest,
        "finetune": finetune,
        "freshness": freshness,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "fast": FAST,
            "max_cost_ratio": MAX_COST_RATIO,
        },
    }
    if write:
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def format_online_results(results: Dict[str, object]) -> str:
    ingest = results["ingest"]
    finetune = results["finetune"]
    fresh = results["freshness"]
    lines = [
        f"online benchmark -- {results['model']} on {results['dataset']}",
        f"  ingest: {ingest['events_per_s']:.0f} events/s end to end "
        f"(append {ingest['append_events_per_s']:.0f}/s, "
        f"fold {ingest['fold_events_per_s']:.0f}/s, "
        f"{ingest['n_events']} events)",
        f"  fine-tune: {finetune['finetune_s']:.2f}s "
        f"({finetune['epochs']} epoch(s) on {finetune['n_tail']} tail "
        f"events) vs retrain {finetune['retrain_s']:.2f}s "
        f"({finetune['retrain_epochs']} epochs) -> "
        f"cost ratio {finetune['cost_ratio']:.1%}",
        f"  freshness: event->servable "
        f"{fresh['event_to_servable_s']:.3f}s, swap "
        f"{fresh['swap_latency_ms']:.1f}ms, cold-start hit rate "
        f"{fresh['cold_start_hit_rate']}",
    ]
    return "\n".join(lines)


def check_online_results(results: Dict[str, object]) -> None:
    """The recorded contract; shared by pytest and standalone runs."""
    finetune = results["finetune"]
    assert finetune["cost_ratio"] <= MAX_COST_RATIO, (
        f"incremental fine-tune cost {finetune['cost_ratio']:.1%} of a "
        f"from-scratch retrain exceeds the {MAX_COST_RATIO:.0%} ceiling")
    ingest = results["ingest"]
    assert ingest["events_per_s"] > 0
    assert ingest["n_new_users"] == N_NEW_USERS
    assert ingest["n_new_items"] == N_NEW_ITEMS
    fresh = results["freshness"]
    assert fresh["event_to_servable_s"] is not None
    assert fresh["event_to_servable_s"] < fresh["cycle_s"] + 1.0
    assert fresh["cold_start_hit_rate"] == 1.0, (
        "streamed-in cold-start users must be servable from the index "
        "after the swap")


def test_online_bench(benchmark, artifact):
    """Regenerate BENCH_online.json and hold the online contracts."""
    results = benchmark.pedantic(run_online_suite,
                                 kwargs=dict(write=not FAST),
                                 rounds=1, iterations=1)
    artifact("online", format_online_results(results))
    check_online_results(results)


if __name__ == "__main__":
    out = run_online_suite(write=True)
    print(format_online_results(out))
    check_online_results(out)
    print(f"[results written to {RESULT_PATH}]")
