"""Fig. 7/8: item-embedding visualisation and tag-separation scores.

For the CD and Book configs, trains AGCN, HRCF, LogiRec and LogiRec++
(the four panels of the paper's figures), projects item embeddings into
the Poincare disk, and computes per-exclusive-pair cluster-separation
scores, split into genuinely exclusive vs planted-overlap ("mislabelled")
pairs.

Shape expectations from the paper:
* all four models separate strongly exclusive tag pairs;
* only the relation-mining model (LogiRec++) shows a clear *gap*
  between genuine and mislabelled pairs — it keeps true exclusions apart
  while letting overlapping concepts share space.
"""

import numpy as np

from conftest import EPOCHS_STUDY
from repro.core import LogiRec, LogiRecConfig, LogiRecPP
from repro.data import load_dataset, temporal_split
from repro.eval import Evaluator
from repro.experiments import embedding_projection, tag_separation_scores
from repro.experiments.runner import LAMBDA_BY_DATASET, build_model

MODELS = ("AGCN", "HRCF", "LogiRec", "LogiRec++")
DATASETS = ("cd", "book")


def _train(name, dataset, split, evaluator):
    if name in ("LogiRec", "LogiRec++"):
        cfg = LogiRecConfig(dim=16, epochs=EPOCHS_STUDY,
                            lam=LAMBDA_BY_DATASET[dataset.name], seed=0)
        cls = LogiRecPP if name == "LogiRec++" else LogiRec
        model = cls(dataset.n_users, dataset.n_items, dataset.n_tags, cfg)
    else:
        model = build_model(name, dataset, seed=0)
        model.config.epochs = min(model.config.epochs, EPOCHS_STUDY)
    model.fit(dataset, split, evaluator=evaluator)
    return model


def _run():
    out = {}
    for ds_name in DATASETS:
        dataset = load_dataset(ds_name)
        split = temporal_split(dataset)
        evaluator = Evaluator(dataset, split)
        out[ds_name] = {}
        for name in MODELS:
            model = _train(name, dataset, split, evaluator)
            scores = tag_separation_scores(model, dataset)
            entry = {"separation": scores}
            if name == "LogiRec++":
                proj = embedding_projection(model, dataset)
                entry["projection_extent"] = float(
                    np.abs(proj["coords"]).max())
                entry["n_labelled"] = int((proj["labels"] >= 0).sum())
            out[ds_name][name] = entry
    return out


def test_fig78_embedding_separation(benchmark, artifact):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = []
    for ds_name, models in results.items():
        lines.append(f"=== {ds_name} ===")
        for name, entry in models.items():
            s = entry["separation"]
            lines.append(
                f"  {name:10s} separation: all={s['mean_score']:+.3f} "
                f"true-exclusive={s['mean_true_exclusive']:+.3f} "
                f"mislabelled={s['mean_overlapping']:+.3f} "
                f"gap={s['mean_true_exclusive'] - s['mean_overlapping']:+.3f}")
        lines.append("")
    artifact("fig78_embeddings", "\n".join(lines))

    for ds_name, models in results.items():
        pp = models["LogiRec++"]["separation"]
        # LogiRec++ separates genuinely exclusive pairs.
        assert pp["mean_true_exclusive"] > 0, ds_name
        # And distinguishes them from mislabelled overlapping pairs.
        gap_pp = pp["mean_true_exclusive"] - pp["mean_overlapping"]
        assert gap_pp > -0.05, ds_name
        # The Poincare projection stayed inside the unit disk.
        assert models["LogiRec++"]["projection_extent"] <= 1.0
