"""Serving benchmark: request latency and the offline-index payoff.

Wraps :func:`repro.serve.bench.run_serve_benchmark` (see that module for
what the four request paths measure) and writes ``BENCH_serve.json`` at
the repository root, next to ``BENCH_perf.json``, so the serving numbers
get the same machine-readable regression trail.

The recorded floor: index-backed single-request serving must be at least
**5x** faster than naive per-request scoring on the live model.  The gap
comes from graph models re-running their full (hyperbolic) propagation
on every ``recommend`` call while the index replays only the final
distance arithmetic.

Since PR 7 the percentiles are HDR-histogram-derived (bounded 0.5%
relative error, same machinery the live serve path records into) and the
results carry an ``slo`` report evaluated against the built-in
objectives; the suite asserts that report passes, so a latency or
availability regression fails the benchmark, not just the speedup floor.

Run standalone (``PYTHONPATH=src python benchmarks/bench_serve.py``) or
through pytest (``pytest benchmarks/bench_serve.py``).  Set
``REPRO_BENCH_FAST=1`` for a smaller request count.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

N_REQUESTS = 60 if FAST else 200
MIN_SPEEDUP = 5.0


def run_serve_suite(write: bool = False) -> Dict[str, object]:
    from repro.serve.bench import run_serve_benchmark

    results = run_serve_benchmark(
        model_name="LogiRec++", dataset_name="ciao", epochs=3,
        n_requests=N_REQUESTS, batch_size=32, k=10, seed=0)
    results["meta"] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "fast": FAST,
        "min_speedup_floor": MIN_SPEEDUP,
    }
    if write:
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def test_serve_latency(benchmark, artifact):
    """Regenerate BENCH_serve.json and hold the index speedup floor."""
    from repro.serve.bench import format_results

    results = benchmark.pedantic(run_serve_suite,
                                 kwargs=dict(write=not FAST),
                                 rounds=1, iterations=1)
    artifact("serve_latency", format_results(results))
    assert results["speedup_indexed_vs_naive"] >= MIN_SPEEDUP
    slo = results["slo"]
    assert slo["passed"], (
        f"serve SLO report failed: {slo['n_violations']} violation(s) "
        f"in {json.dumps(slo['results'], indent=2)}")


if __name__ == "__main__":
    from repro.serve.bench import format_results

    out = run_serve_suite(write=True)
    print(format_results(out))
    assert out["speedup_indexed_vs_naive"] >= MIN_SPEEDUP, (
        f"indexed serving speedup "
        f"{out['speedup_indexed_vs_naive']:.1f}x is below the "
        f"{MIN_SPEEDUP}x floor")
    assert out["slo"]["passed"], (
        f"serve SLO report failed: {out['slo']['n_violations']} "
        f"violation(s)")
    print(f"[results written to {RESULT_PATH}]")
