"""Serving benchmark: request latency and the offline-index payoff.

Wraps :func:`repro.serve.bench.run_serve_benchmark` (see that module for
what the four request paths measure) and writes ``BENCH_serve.json`` at
the repository root, next to ``BENCH_perf.json``, so the serving numbers
get the same machine-readable regression trail.

The recorded floor: index-backed single-request serving must be at least
**5x** faster than naive per-request scoring on the live model.  The gap
comes from graph models re-running their full (hyperbolic) propagation
on every ``recommend`` call while the index replays only the final
distance arithmetic.

Since PR 7 the percentiles are HDR-histogram-derived (bounded 0.5%
relative error, same machinery the live serve path records into) and the
results carry an ``slo`` report evaluated against the built-in
objectives; the suite asserts that report passes, so a latency or
availability regression fails the benchmark, not just the speedup floor.

Since PR 8 the suite also drives the multi-worker front-end through the
open-loop overload drill (:func:`repro.serve.frontend.
run_frontend_benchmark`): capacity is estimated, then load is offered at
0.5x and 2x capacity, and the recorded contract is that under 2x
overload the shed rate is **positive** (admission control engaged) while
the admitted p99 still passes the latency SLO; a ``worker_kill`` drill
then asserts zero hard failures and a restarted fleet.  Results land
under the ``frontend`` key of ``BENCH_serve.json``.

Run standalone (``PYTHONPATH=src python benchmarks/bench_serve.py``) or
through pytest (``pytest benchmarks/bench_serve.py``).  Set
``REPRO_BENCH_FAST=1`` for a smaller request count and shorter
open-loop windows.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

N_REQUESTS = 60 if FAST else 200
MIN_SPEEDUP = 5.0
FRONTEND_WORKERS = 2


def run_serve_suite(write: bool = False) -> Dict[str, object]:
    from repro.serve.bench import run_serve_benchmark

    results = run_serve_benchmark(
        model_name="LogiRec++", dataset_name="ciao", epochs=3,
        n_requests=N_REQUESTS, batch_size=32, k=10, seed=0,
        frontend_workers=FRONTEND_WORKERS)
    results["meta"] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "fast": FAST,
        "min_speedup_floor": MIN_SPEEDUP,
    }
    if write:
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def check_serve_results(results: Dict[str, object]) -> None:
    """The recorded contract; shared by pytest and standalone runs."""
    assert results["speedup_indexed_vs_naive"] >= MIN_SPEEDUP, (
        f"indexed serving speedup "
        f"{results['speedup_indexed_vs_naive']:.1f}x is below the "
        f"{MIN_SPEEDUP}x floor")
    slo = results["slo"]
    assert slo["passed"], (
        f"serve SLO report failed: {slo['n_violations']} violation(s) "
        f"in {json.dumps(slo['results'], indent=2)}")
    frontend = results["frontend"]
    overload = [lvl for lvl in frontend["levels"]
                if lvl["load_factor"] >= 2.0]
    assert overload, "frontend bench recorded no overload level"
    for level in overload:
        assert level["shed_rate"] > 0, (
            f"no load shedding at {level['load_factor']}x capacity "
            f"({level['offered_qps']:.0f} qps offered) -- admission "
            f"control is not engaging")
        assert level["hard_failures"] == 0
    assert frontend["slo"]["passed"], (
        f"frontend SLO report failed under overload: "
        f"{json.dumps(frontend['slo']['results'], indent=2)}")
    drill = frontend["kill_drill"]
    assert drill["hard_failures"] == 0, (
        f"{drill['hard_failures']} request(s) hard-failed during the "
        f"worker-kill drill; the contract is degraded answers, never "
        f"errors")
    assert drill["worker_restarts"] >= 1, (
        "the kill drill ran but the supervisor never restarted a "
        "worker")
    assert drill["fleet_ready"] == frontend["n_workers"], (
        f"fleet did not recover: {drill['fleet_ready']}/"
        f"{frontend['n_workers']} worker(s) ready after the drill")


def test_serve_latency(benchmark, artifact):
    """Regenerate BENCH_serve.json and hold the serving contracts."""
    from repro.serve.bench import format_results

    results = benchmark.pedantic(run_serve_suite,
                                 kwargs=dict(write=not FAST),
                                 rounds=1, iterations=1)
    artifact("serve_latency", format_results(results))
    check_serve_results(results)


if __name__ == "__main__":
    from repro.serve.bench import format_results

    out = run_serve_suite(write=True)
    print(format_results(out))
    check_serve_results(out)
    print(f"[results written to {RESULT_PATH}]")
