"""Table III: ablation study of LogiRec++ on all four datasets.

Variants: w/o L_Mem, w/o L_Hie, w/o L_Ex, w/o HGCN, w/o LRM (= LogiRec),
w/o Hyper (Euclidean), plus the CON-only / GR-only weighting ablations
DESIGN.md calls out.

Shape expectations from the paper:
* every ablation is at or below full LogiRec++ (averaged over datasets);
* among the three logic losses, removing L_Ex hurts the least
  (the extracted exclusions are the noisiest relation).

Known deviation (EXPERIMENTS.md): in the paper removing the HGCN hurts
most; on the synthetic mirrors removing L_Mem hurts most — the planted
tag signal is stronger relative to the collaborative signal than on the
real datasets, so the membership loss carries more of the performance.
"""

import numpy as np

from conftest import EPOCHS_STUDY
from repro.experiments import ABLATIONS, run_ablation
from repro.experiments.ablation import format_ablation_table

DATASETS = ("ciao", "cd", "clothing", "book")
METRIC = "recall@10"


def _mean(results, variant):
    return float(np.mean([results[ds][variant][METRIC]
                          for ds in DATASETS]))


def test_table3_ablation(benchmark, artifact):
    results = benchmark.pedantic(
        run_ablation,
        kwargs=dict(dataset_names=DATASETS, variants=ABLATIONS,
                    epochs=EPOCHS_STUDY),
        rounds=1, iterations=1)
    artifact("table3_ablation", format_ablation_table(results))

    full = _mean(results, "LogiRec++")
    no_hgcn = _mean(results, "w/o HGCN")
    no_mem = _mean(results, "w/o L_Mem")
    no_hie = _mean(results, "w/o L_Hie")
    no_ex = _mean(results, "w/o L_Ex")
    # Every structural ablation is below the full model.
    assert no_hgcn < full
    assert no_mem < full
    # On this data the membership loss is the most load-bearing piece.
    assert no_mem <= min(no_hgcn, no_hie, no_ex)
    # Removing exclusion hurts least among the three logic losses.
    assert no_ex >= no_mem - 1.0
    assert no_ex >= no_hie - 1.0
    # Full model is at or above every paper ablation (small tolerance
    # for seed noise).  The CON-only / GR-only rows are this repo's own
    # extension and occasionally trade places with the full weighting on
    # single seeds, so they are reported but not asserted.
    for variant in ABLATIONS:
        if variant not in ("LogiRec++", "CON-only", "GR-only"):
            assert _mean(results, variant) <= full + 2.5, variant
