"""Design-choice ablations called out in DESIGN.md §4.

Not a paper table — these benches justify the reproduction's own
engineering decisions:

1. **Parameterization/optimizer**: tangent-space parameters + Adam (this
   repo's default) vs manifold parameters + Riemannian SGD (the paper's
   Section V-C) vs the all-Euclidean variant.
2. **Weight clipping**: bounded alpha dynamic range (default) vs the raw
   Eq. 14 weights, which can silence very diverse users entirely.
"""

from dataclasses import replace

from conftest import EPOCHS_STUDY
from repro.core import LogiRecConfig, LogiRecPP
from repro.core import weighting as weighting_mod
from repro.data import load_dataset, temporal_split
from repro.eval import Evaluator

DATASET = "cd"


def _run_variant(config, dataset, split, evaluator):
    model = LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags,
                      config)
    model.fit(dataset, split, evaluator=evaluator)
    return evaluator.evaluate_test(model).means


def _run_all():
    dataset = load_dataset(DATASET)
    split = temporal_split(dataset)
    evaluator = Evaluator(dataset, split)
    base = LogiRecConfig(dim=16, epochs=EPOCHS_STUDY, lam=2.0, seed=0)
    out = {
        "tangent+Adam": _run_variant(base, dataset, split, evaluator),
        "manifold+RSGD": _run_variant(
            replace(base, parameterization="manifold", lr=5.0),
            dataset, split, evaluator),
        "euclidean": _run_variant(
            replace(base, hyperbolic=False), dataset, split, evaluator),
    }
    # Weight-clip ablation: monkeypatch the clip to None.
    original = weighting_mod.personalized_weights

    def unclipped(con, gr, use_consistency=True, use_granularity=True,
                  normalize=True, clip=(0.3, 3.0)):
        return original(con, gr, use_consistency, use_granularity,
                        normalize, clip=None)

    import repro.core.logirec_pp as pp_mod
    pp_mod.personalized_weights = unclipped
    try:
        out["alpha-unclipped"] = _run_variant(base, dataset, split,
                                              evaluator)
    finally:
        pp_mod.personalized_weights = original
    return out


def test_design_ablations(benchmark, artifact):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"Design ablations on {DATASET} (recall@10 / ndcg@10, %):"]
    for name, metrics in results.items():
        lines.append(f"  {name:15s} recall@10={metrics['recall@10']:.2f} "
                     f"ndcg@10={metrics['ndcg@10']:.2f}")
    artifact("ablation_design", "\n".join(lines))

    tangent = results["tangent+Adam"]["recall@10"]
    manifold = results["manifold+RSGD"]["recall@10"]
    # The default must justify itself against the paper-literal optimizer.
    assert tangent >= manifold * 0.95
    # Clipped weighting should not be worse than raw weighting.
    assert (results["alpha-unclipped"]["recall@10"]
            <= tangent * 1.1)
