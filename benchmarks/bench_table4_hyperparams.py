"""Table IV: hyperparameter studies on CD and Clothing.

One-at-a-time sweeps of the graph depth L, the logical weight λ, the
margin m, and the embedding dimension d around the tuned operating point
(the paper sweeps d over {32, 64, 128}; the bench-scale capacity
equivalent is {8, 16, 32}).

Shape expectations from the paper:
* L: interior optimum (L = 3 in the paper); L = 1 clearly worse;
* λ: interior optimum — λ = 0 (no logic) is clearly worse;
* m: small positive margin beats m = 0;
* d: bigger is better with diminishing returns.
"""

from conftest import EPOCHS_STUDY
from repro.experiments import run_hyperparameter_study

DATASETS = ("cd", "clothing")
METRIC = "recall@10"


def _series(results, ds, param):
    return {value: metrics[METRIC]
            for value, metrics in results[ds][param].items()}


def _format(results) -> str:
    lines = []
    for ds, params in results.items():
        lines.append(f"=== {ds} ===")
        for param, series in params.items():
            row = "  ".join(f"{v}={m[METRIC]:.2f}"
                            for v, m in series.items())
            lines.append(f"{param:10s} {row}")
        lines.append("")
    return "\n".join(lines)


def test_table4_hyperparameters(benchmark, artifact):
    results = benchmark.pedantic(
        run_hyperparameter_study,
        kwargs=dict(dataset_names=DATASETS, epochs=EPOCHS_STUDY),
        rounds=1, iterations=1)
    artifact("table4_hyperparams", _format(results))

    for ds in DATASETS:
        lam = _series(results, ds, "lam")
        # λ = 0 (logic off) must be clearly below the tuned interior value.
        assert max(lam[0.1], lam[1.0]) > lam[0.0]
        dim = _series(results, ds, "dim")
        # Capacity: d = 16 over d = 8 (diminishing returns above).
        assert dim[16] > dim[8] * 0.9
        layers = _series(results, ds, "n_layers")
        assert max(layers[2], layers[3]) >= layers[1] * 0.9
