"""Table I: statistics of the four benchmark dataset configurations.

Regenerates the user/item/interaction/density/tag/relation counts for the
synthetic mirrors of Ciao, CD, Clothing, and Book.  The shape to check
against the paper: ciao is the smallest and by far the densest with the
fewest tags; clothing has the most tags and exclusions; book has the most
interactions.
"""

from repro.data import dataset_statistics

COLUMNS = ["name", "n_users", "n_items", "n_interactions", "density_pct",
           "n_tags", "n_membership", "n_hierarchy", "n_exclusion"]


def _format(rows) -> str:
    header = "".join(c.rjust(15) for c in COLUMNS)
    lines = [header]
    for row in rows:
        lines.append("".join(str(row[c]).rjust(15) for c in COLUMNS))
    return "\n".join(lines)


def test_table1_dataset_statistics(benchmark, artifact):
    rows = benchmark.pedantic(dataset_statistics, rounds=1, iterations=1)
    artifact("table1_datasets", _format(rows))
    by_name = {r["name"]: r for r in rows}
    # Shape assertions mirroring the paper's Table I orderings.
    assert by_name["ciao"]["density_pct"] > by_name["cd"]["density_pct"]
    assert by_name["clothing"]["n_tags"] == max(r["n_tags"] for r in rows)
    assert by_name["clothing"]["n_exclusion"] == max(
        r["n_exclusion"] for r in rows)
    assert by_name["ciao"]["n_tags"] == min(r["n_tags"] for r in rows)
