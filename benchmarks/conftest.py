"""Shared benchmark configuration.

Every bench regenerates one table or figure of the paper.  Results are
printed and also written to ``benchmarks/output/<name>.txt`` so the
artifacts survive pytest's output capture.

Budgets: set ``REPRO_BENCH_FAST=1`` to cut every training budget (quick
smoke of the harness); the default budgets regenerate the full artifacts
in minutes on a laptop CPU.
"""

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
OUTPUT_DIR.mkdir(exist_ok=True)

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

# Epoch budgets per regime.
EPOCHS_FULL = None if not FAST else 30      # None = zoo-tuned budgets
EPOCHS_STUDY = 150 if not FAST else 20      # sweeps / ablations / figures


def write_artifact(name: str, text: str) -> pathlib.Path:
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text)
    print(text)
    print(f"[artifact written to {path}]")
    return path


@pytest.fixture
def artifact():
    return write_artifact
