"""Fig. 5: user behaviour statistics on the CD config.

(a) Distribution of users across #interacted tag types — a clear mode
with a long tail of diverse users.
(b) #tag types vs the user's hyperbolic distance to the origin after
training — the paper's claim is a *negative* correlation (specific users
sit farther out).
"""

import numpy as np

from conftest import EPOCHS_STUDY
from repro.core import LogiRecConfig, LogiRecPP
from repro.data import load_dataset, temporal_split
from repro.eval import Evaluator
from repro.experiments import (tag_types_vs_origin_distance,
                               user_tag_type_distribution)


def _run():
    dataset = load_dataset("cd")
    split = temporal_split(dataset)
    model = LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags,
                      LogiRecConfig(dim=16, epochs=EPOCHS_STUDY, lam=2.0,
                                    seed=0))
    model.fit(dataset, split, evaluator=Evaluator(dataset, split))
    return (user_tag_type_distribution(dataset, split),
            tag_types_vs_origin_distance(model, dataset, split))


def test_fig5_user_statistics(benchmark, artifact):
    dist, corr = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = ["Fig 5(a): users per #tag-types bucket"]
    for edge, count in zip(dist["hist_edges"][:-1], dist["hist_values"]):
        if count:
            lines.append(f"  {int(edge):3d} tag types: {int(count)} users")
    lines.append("")
    lines.append("Fig 5(b): #tag types vs distance to origin")
    lines.append(f"  Spearman correlation: {corr['spearman_corr']:+.3f} "
                 f"(p={corr['p_value']:.2e})")
    # Binned means for the plotted trend.
    tag_types, distances = corr["tag_types"], corr["distances"]
    for lo in range(0, int(tag_types.max()) + 1, 5):
        mask = (tag_types >= lo) & (tag_types < lo + 5)
        if mask.sum() >= 3:
            lines.append(f"  {lo:2d}-{lo+4:2d} tag types: mean distance "
                         f"{distances[mask].mean():.3f} "
                         f"({int(mask.sum())} users)")
    artifact("fig5_user_stats", "\n".join(lines))

    # (a) long-tailed distribution: some diversity spread exists.
    assert dist["tag_type_counts"].std() > 0
    # (b) the paper's trend: negative correlation.
    assert corr["spearman_corr"] < 0
