"""Table II: overall comparison of all 15 models on all four datasets.

Regenerates Recall@{10,20} / NDCG@{10,20} (percent) for the 13 baselines
plus LogiRec and LogiRec++, with the Wilcoxon significance test of
LogiRec++ over the best baseline.

Shape expectations from the paper (asserted on the dataset average to
absorb bench-scale noise):
* LogiRec++ >= LogiRec;
* the logic-aware models sit at the top of the table, within a few
  percent of the best tag-aware baseline on every metric;
* tag-aware baselines beat the tag-blind MF family (BPRMF, NeuMF).

Known deviation (EXPERIMENTS.md): on the synthetic mirrors our CMLF —
which consumes the same tag signal through a centroid pull — is a
stronger baseline than in the paper and trades first place with
LogiRec++ per dataset; LogiRec++ wins cd outright (Wilcoxon *) and the
dataset-average NDCG.
"""

import numpy as np

from conftest import EPOCHS_FULL
from repro.experiments import format_comparison_table, run_comparison
from repro.experiments.runner import ALL_MODEL_NAMES

DATASETS = ("ciao", "cd", "clothing", "book")


def _mean_over_datasets(results, model, metric="recall@10"):
    return float(np.mean([results[ds][model][metric][0]
                          for ds in DATASETS]))


def test_table2_overall_comparison(benchmark, artifact):
    results = benchmark.pedantic(
        run_comparison,
        kwargs=dict(model_names=ALL_MODEL_NAMES, dataset_names=DATASETS,
                    seeds=(0,), epochs_override=EPOCHS_FULL),
        rounds=1, iterations=1)
    artifact("table2_overall", format_comparison_table(results))

    # Shape assertions (averaged over datasets to absorb small-data noise).
    pp = _mean_over_datasets(results, "LogiRec++")
    plain = _mean_over_datasets(results, "LogiRec")
    bpr = _mean_over_datasets(results, "BPRMF")
    assert pp >= plain * 0.97, "LogiRec++ should not trail LogiRec"
    assert plain > bpr, "logic-aware hyperbolic model must beat plain MF"
    assert pp > bpr
    # The headline claim: LogiRec++ at or above the strongest baselines
    # (CMLF trades the top recall spot with it on synthetic data — see
    # EXPERIMENTS.md — so the bound carries a small tolerance).
    best_baseline = max(
        _mean_over_datasets(results, name)
        for name in ALL_MODEL_NAMES if not name.startswith("LogiRec"))
    assert pp >= best_baseline * 0.9
    # And clearly above every *non-CMLF* baseline.
    second = max(
        _mean_over_datasets(results, name)
        for name in ALL_MODEL_NAMES
        if not name.startswith("LogiRec") and name != "CMLF")
    assert pp >= second * 0.95
