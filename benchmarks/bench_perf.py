"""Perf benchmark: the three hot paths, with regression tracking.

Times full-ranking evaluation (users/s), negative sampling (triplets/s),
and the train step (ms/step) for LogiRec++ and LightGCN, comparing the
vectorized implementations against the pre-vectorization reference loops
that are kept on the classes (``Evaluator._reference_evaluate``,
``TripletSampler._reference_is_positive``).  The train step is timed
under both tensor backends (``reference`` and ``fast``; see
``repro.tensor.backend``) and the fast-over-reference speedup is
recorded and floored by ``test_perf_hot_paths``.  Results go to
``BENCH_perf.json`` at the repository root so future PRs have a
machine-readable trajectory to beat; see DESIGN.md § Performance for how
to read it.

The suite's own wall-clock is attributed with :class:`repro.obs.Tracer`
spans and written as the ``spans`` breakdown in ``BENCH_perf.json``, so a
perf regression in a future PR points at a phase, not just a total.  It
also measures telemetry overhead (``obs_overhead``): per-call cost of the
disabled no-op hooks and the enabled-vs-disabled ratio on the sampler
drain.  Set ``REPRO_BENCH_TELEMETRY=1`` to additionally emit the span
events through the JSONL sink into ``runs/bench-perf-<stamp>/`` for
``repro obs summarize``.

Run standalone (``PYTHONPATH=src python benchmarks/bench_perf.py``) or
through pytest (``pytest benchmarks/bench_perf.py``).  Set
``REPRO_BENCH_FAST=1`` for the quick-smoke scale used by the tier-1
perf-regression test.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Callable, Dict

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf.json"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

# Default bench scale: the largest Table-I mirror, upscaled so the hot
# paths dominate over per-call overhead; fast mode shrinks it for smoke
# runs (the speedup floors are relaxed accordingly).
BENCH_DATASET = "book"
BENCH_SCALE = 1.0 if FAST else 3.0
EVAL_REPEATS = 1 if FAST else 3
SAMPLER_ROUNDS = 2 if FAST else 5
TRAIN_STEPS = 3 if FAST else 10


class _FixedScoreModel:
    """Deterministic random scorer: times the harness, not a model."""

    def __init__(self, n_users: int, n_items: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self._scores = rng.standard_normal((n_users, n_items))

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        return self._scores[np.asarray(user_ids, dtype=np.int64)]


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time of ``fn`` (min absorbs scheduler noise)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_evaluation(dataset, split) -> Dict[str, object]:
    from repro.eval import Evaluator

    evaluator = Evaluator(dataset, split, ks=(10, 20))
    model = _FixedScoreModel(dataset.n_users, dataset.n_items)
    n_users = len(evaluator._eval_users(evaluator._test_items))

    vect = evaluator.evaluate_test(model)
    ref = evaluator._reference_evaluate(model, evaluator._test_items)
    identical = all(np.array_equal(vect.per_user[m], ref.per_user[m])
                    for m in vect.per_user)

    t_vect = _best_time(lambda: evaluator.evaluate_test(model),
                        EVAL_REPEATS)
    t_ref = _best_time(
        lambda: evaluator._reference_evaluate(model,
                                              evaluator._test_items),
        EVAL_REPEATS)
    return {
        "n_eval_users": int(n_users),
        "reference_s": t_ref,
        "vectorized_s": t_vect,
        "reference_users_per_s": n_users / t_ref,
        "vectorized_users_per_s": n_users / t_vect,
        "speedup": t_ref / t_vect,
        "identical_per_user_vectors": bool(identical),
    }


def bench_sampling(dataset, split, batch_size: int = 4096
                   ) -> Dict[str, object]:
    from repro.data.sampling import TripletSampler

    class _ReferenceSampler(TripletSampler):
        """The sampler as it was: per-triplet membership loop."""
        _is_positive = TripletSampler._reference_is_positive

    def _drain(sampler) -> int:
        return sum(len(u) for u, _, _ in sampler.epoch(batch_size))

    fast_sampler = TripletSampler(dataset, split.train,
                                  rng=np.random.default_rng(0))
    ref_sampler = _ReferenceSampler(dataset, split.train,
                                    rng=np.random.default_rng(0))
    n_triplets = len(fast_sampler)
    t_vect = _best_time(lambda: _drain(fast_sampler), SAMPLER_ROUNDS)
    t_ref = _best_time(lambda: _drain(ref_sampler),
                       max(1, SAMPLER_ROUNDS // 2))
    return {
        "n_triplets_per_epoch": int(n_triplets),
        "batch_size": batch_size,
        "reference_s": t_ref,
        "vectorized_s": t_vect,
        "reference_triplets_per_s": n_triplets / t_ref,
        "vectorized_triplets_per_s": n_triplets / t_vect,
        "speedup": t_ref / t_vect,
    }


def _time_train_step(dataset, split, name: str) -> Dict[str, float]:
    """Latency of one optimize step (loss + backward + update) under the
    *active* backend."""
    from repro.data.sampling import TripletSampler
    from repro.experiments.runner import build_model

    model = build_model(name, dataset, seed=0)
    model.prepare(dataset, split)
    sampler = TripletSampler(dataset, split.train,
                             rng=np.random.default_rng(0),
                             n_negatives=model.config.n_negatives)
    users, pos, neg = next(sampler.epoch(model.config.batch_size))
    optimizer = model.make_optimizer()

    def _step():
        optimizer.zero_grad()
        loss = model.batch_loss(users, pos, neg)
        loss.backward()
        optimizer.step()

    _step()  # warm-up (adjacency caches, arena growth, lazy allocations)
    t = _best_time(_step, TRAIN_STEPS)
    return {
        "batch_triplets": int(len(users)),
        "ms_per_step": 1e3 * t,
        "steps_per_s": 1.0 / t,
    }


def bench_train_step(dataset, split, model_names=("LogiRec++", "LightGCN")
                     ) -> Dict[str, Dict[str, object]]:
    """Per-backend train-step latency + fast-over-reference speedup."""
    from repro.tensor import use_backend

    out: Dict[str, Dict[str, object]] = {}
    for name in model_names:
        row: Dict[str, object] = {}
        for backend in ("reference", "fast"):
            with use_backend(backend):
                timing = _time_train_step(dataset, split, name)
            row["batch_triplets"] = timing.pop("batch_triplets")
            row[backend] = timing
        row["speedup"] = (row["fast"]["steps_per_s"]
                          / row["reference"]["steps_per_s"])
        out[name] = row
    return out


def bench_obs_overhead(dataset, split, batch_size: int = 4096
                       ) -> Dict[str, float]:
    """Telemetry cost: disabled per-call hook price + enabled drain ratio.

    The disabled numbers guard the "< 2% overhead when off" budget (the
    hooks compile down to one global load + None check); the enabled
    ratio prices what ``--telemetry`` actually costs on the sampling hot
    path.
    """
    from repro import obs
    from repro.data.sampling import TripletSampler

    calls = 20_000 if FAST else 200_000
    assert not obs.enabled()
    t0 = time.perf_counter()
    for _ in range(calls):
        obs.count("bench/noop")
    count_ns = (time.perf_counter() - t0) / calls * 1e9
    t0 = time.perf_counter()
    for _ in range(calls):
        obs.trace("bench/noop")
    trace_ns = (time.perf_counter() - t0) / calls * 1e9

    def _drain() -> None:
        sampler = TripletSampler(dataset, split.train,
                                 rng=np.random.default_rng(0))
        for _ in sampler.epoch(batch_size):
            pass

    rounds = max(2, SAMPLER_ROUNDS)
    t_disabled = _best_time(_drain, rounds)
    obs.start_run(config={"bench": "obs_overhead"})
    try:
        t_enabled = _best_time(_drain, rounds)
    finally:
        obs.disable()
    return {
        "disabled_count_call_ns": count_ns,
        "disabled_trace_call_ns": trace_ns,
        "sampler_drain_disabled_s": t_disabled,
        "sampler_drain_enabled_s": t_enabled,
        "enabled_over_disabled": t_enabled / t_disabled,
    }


def _environment_meta() -> Dict[str, object]:
    """Backend + numpy + BLAS provenance for the bench record.

    Perf numbers are meaningless without knowing what ran them: the
    active backend(s), the numpy version, and which BLAS numpy linked
    against (OpenBLAS vs reference BLAS can alone explain a 3x swing in
    the matmul-heavy paths).
    """
    from repro.tensor import available_backends, get_backend

    blas = "unknown"
    try:
        cfg = np.show_config(mode="dicts")
        blas = cfg.get("Build Dependencies", {}).get(
            "blas", {}).get("name", "unknown")
    except (TypeError, AttributeError):
        pass  # older numpy without dict-mode show_config
    return {
        "backend_default": get_backend().name,
        "backends_timed": list(available_backends()),
        "numpy": np.__version__,
        "blas": blas,
        "cpu_count": os.cpu_count(),
    }


def _span_breakdown(tracer) -> Dict[str, object]:
    """Aggregate the suite tracer into {phase: {total_s, pct}}."""
    roots = [s for s in tracer.finished if s.parent_id is None]
    total = sum(s.duration_s for s in roots) or 1.0
    root_ids = {s.span_id for s in roots}
    phases: Dict[str, float] = {}
    for span in tracer.finished:
        if span.parent_id in root_ids:
            phases[span.name] = phases.get(span.name, 0.0) + span.duration_s
    return {
        "total_s": round(total, 6),
        "phases": {name: {"total_s": round(t, 6),
                          "pct": round(100.0 * t / total, 2)}
                   for name, t in phases.items()},
    }


def _emit_bench_run(tracer, results: Dict[str, object]) -> None:
    """Persist the suite spans through the standard JSONL sink + manifest."""
    from repro import obs
    from repro.obs.sink import write_manifest

    run_dir = REPO_ROOT / "runs" / time.strftime("bench-perf-%Y%m%d-%H%M%S")
    sink = obs.JsonlSink(run_dir / "events.jsonl")
    for span in tracer.finished:
        sink.write(span.to_event())
    sink.close()
    write_manifest(run_dir / "manifest.json", {
        "run_id": run_dir.name,
        "started_at": results["meta"]["timestamp"],
        "wall_s": results["spans"]["total_s"],
        "git_sha": obs.git_sha(REPO_ROOT) or "unknown",
        "config": {"command": "bench_perf", "fast": FAST,
                   "dataset": BENCH_DATASET, "scale": BENCH_SCALE},
        "seed": None,
        "dataset_stats": {k: results["meta"][k] for k in
                          ("n_users", "n_items", "n_interactions")},
        "final_metrics": {},
        "n_events": sink.n_events,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    })
    print(f"[bench telemetry written to {run_dir}]")


def run_perf_suite(write: bool = False) -> Dict[str, object]:
    """Measure all three hot paths; optionally persist BENCH_perf.json."""
    from repro import obs
    from repro.data import load_dataset, temporal_split

    # A standalone tracer (no active run): the bench attributes its own
    # wall-clock without flipping the global telemetry switch, so the
    # measured hot paths run exactly as they do for library users.
    tracer = obs.Tracer()
    results: Dict[str, object] = {}
    with tracer.span("perf_suite"):
        with tracer.span("load_dataset"):
            dataset = load_dataset(BENCH_DATASET, scale=BENCH_SCALE)
            split = temporal_split(dataset)
        results["meta"] = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "fast": FAST,
            "dataset": BENCH_DATASET,
            "scale": BENCH_SCALE,
            "n_users": dataset.n_users,
            "n_items": dataset.n_items,
            "n_interactions": dataset.n_interactions,
            **_environment_meta(),
        }
        with tracer.span("evaluation"):
            results["evaluation"] = bench_evaluation(dataset, split)
        with tracer.span("sampling"):
            results["sampling"] = bench_sampling(dataset, split)
        with tracer.span("train_step"):
            results["train_step"] = bench_train_step(dataset, split)
        with tracer.span("obs_overhead"):
            results["obs_overhead"] = bench_obs_overhead(dataset, split)
    results["spans"] = _span_breakdown(tracer)
    if os.environ.get("REPRO_BENCH_TELEMETRY", "") not in ("", "0"):
        _emit_bench_run(tracer, results)
    if write:
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


def _format(results: Dict[str, object]) -> str:
    ev, sa = results["evaluation"], results["sampling"]
    lines = [
        f"perf bench on {results['meta']['dataset']} "
        f"x{results['meta']['scale']} (fast={results['meta']['fast']})",
        f"evaluation: {ev['vectorized_users_per_s']:.0f} users/s "
        f"(reference {ev['reference_users_per_s']:.0f}) — "
        f"{ev['speedup']:.1f}x, identical="
        f"{ev['identical_per_user_vectors']}",
        f"sampling:   {sa['vectorized_triplets_per_s']:.0f} triplets/s "
        f"(reference {sa['reference_triplets_per_s']:.0f}) — "
        f"{sa['speedup']:.1f}x",
    ]
    for name, row in results["train_step"].items():
        ref, fast = row["reference"], row["fast"]
        lines.append(
            f"train step: {name}: fast {fast['ms_per_step']:.1f} ms "
            f"({fast['steps_per_s']:.1f} steps/s), reference "
            f"{ref['ms_per_step']:.1f} ms "
            f"({ref['steps_per_s']:.1f} steps/s) — "
            f"{row['speedup']:.1f}x")
    obs_oh = results.get("obs_overhead")
    if obs_oh:
        lines.append(
            f"telemetry:  disabled hooks "
            f"{obs_oh['disabled_count_call_ns']:.0f} ns/count, "
            f"{obs_oh['disabled_trace_call_ns']:.0f} ns/trace; "
            f"sampler enabled/disabled = "
            f"{obs_oh['enabled_over_disabled']:.3f}x")
    spans = results.get("spans")
    if spans:
        phases = ", ".join(f"{name} {row['pct']:.0f}%"
                           for name, row in spans["phases"].items())
        lines.append(f"suite spans: {spans['total_s']:.2f}s ({phases})")
    return "\n".join(lines)


def test_perf_hot_paths(benchmark, artifact):
    """Regenerate BENCH_perf.json and hold the vectorization wins.

    The speedup floors are deliberately below the typically measured
    ratios (evaluation ~10x, sampling ~50x at default scale) so the test
    guards regressions without flaking on machine noise; fast mode
    relaxes them further since small data amortizes less overhead.
    """
    results = benchmark.pedantic(run_perf_suite,
                                 kwargs=dict(write=not FAST),
                                 rounds=1, iterations=1)
    artifact("perf_hot_paths", _format(results))
    assert results["evaluation"]["identical_per_user_vectors"]
    min_eval = 2.0 if FAST else 5.0
    min_sample = 4.0 if FAST else 10.0
    assert results["evaluation"]["speedup"] >= min_eval
    assert results["sampling"]["speedup"] >= min_sample
    # Backend regression floor: the fast backend must hold at least 2x
    # train-step throughput on LogiRec++ (typically measured ~3.5x at
    # default scale; small fast-mode batches amortize less overhead, so
    # the floor relaxes there).
    min_backend = 1.3 if FAST else 2.0
    speedup = results["train_step"]["LogiRec++"]["speedup"]
    assert speedup >= min_backend, (
        f"fast backend regressed: LogiRec++ train-step speedup "
        f"{speedup:.2f}x < {min_backend}x floor")


if __name__ == "__main__":
    out = run_perf_suite(write=True)
    print(_format(out))
    print(f"[results written to {RESULT_PATH}]")
