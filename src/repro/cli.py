"""Command-line interface: ``python -m repro <command>``.

Commands
--------
stats        Print Table-I statistics for the named datasets.
train        Train one zoo model on one dataset and report test metrics.
compare      Run a Table-II style comparison.
ablation     Run the Table-III ablation variants.
cases        Print Table-V style case studies.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cd",
                        choices=["ciao", "cd", "clothing", "book"])
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the tuned epoch budget")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LogiRec/LogiRec++ reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="dataset statistics (Table I)")
    stats.add_argument("--datasets", nargs="*",
                       default=["ciao", "cd", "clothing", "book"])

    train = sub.add_parser("train", help="train one model")
    train.add_argument("model", help="zoo model name, e.g. LogiRec++")
    _add_common(train)

    compare = sub.add_parser("compare", help="Table-II comparison")
    compare.add_argument("--models", nargs="*", default=None)
    compare.add_argument("--datasets", nargs="*", default=["ciao", "cd"])
    compare.add_argument("--epochs", type=int, default=None)
    compare.add_argument("--seeds", nargs="*", type=int, default=[0])

    ablation = sub.add_parser("ablation", help="Table-III ablations")
    _add_common(ablation)

    cases = sub.add_parser("cases", help="Table-V case studies")
    _add_common(cases)
    return parser


def cmd_stats(args) -> int:
    from repro.data import dataset_statistics
    for row in dataset_statistics(args.datasets):
        print(row)
    return 0


def cmd_train(args) -> int:
    from repro.data import load_dataset, temporal_split
    from repro.eval import Evaluator
    from repro.experiments import build_model
    dataset = load_dataset(args.dataset)
    split = temporal_split(dataset)
    model = build_model(args.model, dataset, seed=args.seed)
    if args.epochs is not None:
        model.config.epochs = args.epochs
    evaluator = Evaluator(dataset, split)
    model.fit(dataset, split, evaluator=evaluator)
    result = evaluator.evaluate_test(model)
    print(f"{args.model} on {args.dataset}: {result.summary()}")
    return 0


def cmd_compare(args) -> int:
    from repro.experiments import format_comparison_table, run_comparison
    results = run_comparison(model_names=args.models,
                             dataset_names=args.datasets,
                             seeds=tuple(args.seeds),
                             epochs_override=args.epochs)
    print(format_comparison_table(results))
    return 0


def cmd_ablation(args) -> int:
    from repro.experiments import run_ablation
    from repro.experiments.ablation import format_ablation_table
    results = run_ablation(dataset_names=[args.dataset],
                           epochs=args.epochs)
    print(format_ablation_table(results))
    return 0


def cmd_cases(args) -> int:
    from repro.core import LogiRecConfig, LogiRecPP
    from repro.data import load_dataset, temporal_split
    from repro.eval import Evaluator
    from repro.experiments import case_studies
    from repro.experiments.cases import format_case_table
    from repro.experiments.runner import LAMBDA_BY_DATASET
    dataset = load_dataset(args.dataset)
    split = temporal_split(dataset)
    config = LogiRecConfig(
        epochs=args.epochs if args.epochs else 150,
        lam=LAMBDA_BY_DATASET.get(args.dataset, 1.0), seed=args.seed)
    model = LogiRecPP(dataset.n_users, dataset.n_items, dataset.n_tags,
                      config)
    model.fit(dataset, split, evaluator=Evaluator(dataset, split))
    print(format_case_table(case_studies(model, dataset, split)))
    return 0


COMMANDS = {
    "stats": cmd_stats,
    "train": cmd_train,
    "compare": cmd_compare,
    "ablation": cmd_ablation,
    "cases": cmd_cases,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
