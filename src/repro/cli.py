"""Command-line interface: ``python -m repro <command>``.

Commands
--------
stats        Print Table-I statistics for the named datasets.
train        Train one zoo model on one dataset and report test metrics.
exp          Resumable experiment DAG: declare an ExperimentSpec
             (``run``), inspect completion against the node cache
             (``status``, exit 0 complete / 1 partial / 2 nothing run),
             continue a killed run bit-identically (``resume``), or
             drop the cache (``clean``).  ``--workers N`` fans training
             out over a process pool; every cached node is skipped on
             rerun.
compare      Run a Table-II style comparison (wrapper over ``exp run``).
ablation     Run the Table-III ablation variants (wrapper over
             ``exp run``).
cases        Print Table-V style case studies (wrapper over ``exp run``).
obs          Telemetry utilities: summarize (``--json`` for machines) /
             list run directories, export a Chrome/Perfetto trace
             (``export-trace``), evaluate service-level objectives
             (``slo``, exit 0 pass / 1 violation / 2 no data), and
             render a recorded profile (``profile``).
serve        Offline serving: export an index from a checkpoint, answer
             top-K queries, micro-benchmark request latency, and run
             the multi-worker HTTP front-end (``serve http``: sharded
             shared-memory index, admission control, graceful drain;
             ``--status`` inspects a running one).
robust       Fault-injection drills: provoke NaN divergence, process
             kills, scoring failures, and checkpoint corruption, and
             verify the recovery machinery end to end — including
             worker kills/stalls against the multi-worker front-end
             (``inject serve --frontend``), scoring faults fired inside
             a hot-swap window (``inject serve --swap``), and poisoned
             event streams (``inject stream``).
online       Online learning: append/ingest journal events
             (``ingest``), incrementally fine-tune the warm checkpoint
             on the recency-weighted stream tail (``finetune``), flip
             the live index version (``swap``), run one full
             ingest→finetune→swap cycle (``run``), or inspect the loop
             state (``status``).  All state lives under ``--workdir``.

``train``, ``compare``, and ``serve bench`` accept ``--telemetry``
(record spans, metrics, and a run manifest under ``runs/<run_id>/``),
``--trace`` (telemetry plus NaN/inf gradient scanning in the autograd
engine), and ``--profile`` (telemetry plus a sampling profiler writing
``profile.collapsed``).  ``train`` also
accepts ``--checkpoint-dir`` (auto-checkpoint every N epochs with
NaN/divergence rollback) and ``--resume`` (continue a killed run from
its auto-checkpoint, bit-identically).

``train``, ``compare``, ``ablation``, and ``cases`` accept ``--backend
{reference,fast}`` to pick the tensor execution backend (see
``repro.tensor.backend``): ``reference`` is the bit-identical float64
engine, ``fast`` enables float32 compute with fused hyperbolic kernels
(~3-4x train-step throughput, metrics equal within tolerance).  The
``REPRO_BACKEND`` environment variable sets the default.

This module is the presentation layer: its ``print`` calls are the
command output and are allowlisted by the ``scripts/ci.sh`` lint gate;
library diagnostics go through ``repro.obs.get_logger`` instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="cd",
                        choices=["ciao", "cd", "clothing", "book"])
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the tuned epoch budget")
    parser.add_argument("--seed", type=int, default=0)
    _add_backend(parser)


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None,
                        choices=["reference", "fast"],
                        help="tensor execution backend (default: "
                             "REPRO_BACKEND env var, else 'reference')")


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry", action="store_true",
                        help="record spans/metrics/manifest under "
                             "--run-dir")
    parser.add_argument("--trace", action="store_true",
                        help="--telemetry plus NaN/inf gradient checks "
                             "(slower; for debugging divergence)")
    parser.add_argument("--profile", action="store_true",
                        help="sample Python stacks during the run and "
                             "write profile.collapsed (implies "
                             "--telemetry)")
    parser.add_argument("--run-dir", default="runs",
                        help="base directory for run artifacts "
                             "(default: runs/)")


# The active --profile sampler; one CLI invocation runs one command, so
# a module global (not a Run attribute — Run is slotted) is enough.
_PROFILER = None


def _maybe_start_run(args, command: str, **config):
    """Start a repro.obs run when --telemetry/--trace/--profile was given."""
    global _PROFILER
    profile = getattr(args, "profile", False)
    if not (getattr(args, "telemetry", False)
            or getattr(args, "trace", False) or profile):
        return None
    from repro import obs
    config = {"command": command, "seed": getattr(args, "seed", None),
              **config}
    run = obs.start_run(run_dir=args.run_dir, config=config,
                        nan_checks=getattr(args, "trace", False))
    if profile:
        _PROFILER = obs.SamplingProfiler().start()
    return run


def _finish_run(run, final_metrics=None, dataset_stats=None) -> None:
    global _PROFILER
    if run is None:
        return
    from repro import obs
    from repro.tensor.backend import publish_metrics
    run_dir = run.dir
    if _PROFILER is not None:
        profiler, _PROFILER = _PROFILER, None
        profiler.stop()
        path = profiler.write(run_dir)
        print(f"[profile] {profiler.n_samples} samples in {path} "
              f"(inspect with: repro obs profile {run_dir})")
    publish_metrics()
    obs.finish_run(final_metrics=final_metrics,
                   dataset_stats=dataset_stats)
    print(f"[telemetry] run artifacts in {run_dir} "
          f"(inspect with: repro obs summarize {run_dir})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LogiRec/LogiRec++ reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="dataset statistics (Table I)")
    stats.add_argument("--datasets", nargs="*",
                       default=["ciao", "cd", "clothing", "book"])

    train = sub.add_parser("train", help="train one model")
    train.add_argument("model", help="zoo model name, e.g. LogiRec++")
    train.add_argument("--save", default=None, metavar="DIR",
                       help="write a checkpoint of the trained model "
                            "(loadable by `repro serve export`)")
    train.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="auto-checkpoint during training and roll "
                            "back to the last good checkpoint on "
                            "NaN/divergence")
    train.add_argument("--checkpoint-every", type=int, default=5,
                       metavar="N", help="epochs between auto-"
                                         "checkpoints (default: 5)")
    train.add_argument("--resume", action="store_true",
                       help="continue an interrupted run from "
                            "--checkpoint-dir (bit-identical to an "
                            "uninterrupted run)")
    train.add_argument("--max-retries", type=int, default=3,
                       help="divergence rollback budget (default: 3)")
    train.add_argument("--lr-backoff", type=float, default=0.5,
                       help="learning-rate multiplier applied on each "
                            "rollback (default: 0.5)")
    _add_common(train)
    _add_telemetry(train)

    exp_cmd = sub.add_parser(
        "exp", help="resumable experiment DAG (spec -> graph -> "
                    "process-pool scheduler with a config-hash cache)")
    exp_sub = exp_cmd.add_subparsers(dest="exp_command", required=True)

    def _add_workdir(p):
        p.add_argument("--workdir", default="exp_cache", metavar="DIR",
                       help="node-result cache / resume directory "
                            "(default: exp_cache)")

    def _add_spec_flags(p):
        p.add_argument("--spec", default=None, metavar="FILE",
                       help="JSON ExperimentSpec file (overrides the "
                            "spec flags below)")
        p.add_argument("--kind", default="comparison",
                       choices=["comparison", "ablation", "sweep",
                                "lambda", "robustness", "cases", "grid"])
        p.add_argument("--models", nargs="*", default=None,
                       help="[comparison/grid] zoo models (default: all)")
        p.add_argument("--datasets", nargs="*", default=None,
                       choices=["ciao", "cd", "clothing", "book"],
                       help="datasets (default: the kind's paper choice)")
        p.add_argument("--variants", nargs="*", default=None,
                       help="[ablation/grid] Table-III variants "
                            "(default: all)")
        p.add_argument("--params", nargs="*", default=None,
                       help="[sweep/grid] Table-IV hyperparameters "
                            "(default: all)")
        p.add_argument("--lambdas", nargs="*", type=float, default=None,
                       help="[lambda/grid] λ grid")
        p.add_argument("--fractions", nargs="*", type=float, default=None,
                       help="[robustness/grid] corruption fractions")
        p.add_argument("--baseline", default="HRCF",
                       help="[lambda/grid] fixed comparison model")
        p.add_argument("--seeds", nargs="*", type=int, default=[0])
        p.add_argument("--ks", nargs="*", type=int, default=None,
                       help="ranking cutoffs (default: 10 20)")
        p.add_argument("--epochs", type=int, default=None,
                       help="budget override for every training node")
        p.add_argument("--scale", type=float, default=1.0)
        _add_backend(p)

    exp_run = exp_sub.add_parser(
        "run", help="execute (or continue) the spec's node graph; "
                    "cached nodes are skipped")
    _add_spec_flags(exp_run)
    _add_workdir(exp_run)
    exp_run.add_argument("--workers", type=int, default=0,
                         help="process-pool width; 0/1 runs inline "
                              "(workers re-select --backend after "
                              "fork/spawn)")
    exp_run.add_argument("--ephemeral", action="store_true",
                         help="in-memory store: nothing cached, nothing "
                              "resumable (what the deprecated "
                              "entrypoints use)")
    exp_run.add_argument("--no-tables", action="store_true",
                         help="print only the cache summary, not the "
                              "rendered tables")
    _add_telemetry(exp_run)

    exp_status = exp_sub.add_parser(
        "status", help="completion of a spec against the cache; exit 0 "
                       "complete / 1 partial / 2 nothing run")
    _add_spec_flags(exp_status)
    _add_workdir(exp_status)

    exp_resume = exp_sub.add_parser(
        "resume", help="re-run the newest recorded spec (or --spec); "
                       "completed nodes are skipped and interrupted "
                       "training continues from its auto-checkpoint, "
                       "bit-identical to an uninterrupted run")
    exp_resume.add_argument("--spec", default=None, metavar="FILE",
                            help="JSON ExperimentSpec file (default: "
                                 "newest spec recorded in --workdir)")
    _add_workdir(exp_resume)
    exp_resume.add_argument("--workers", type=int, default=0)
    exp_resume.add_argument("--no-tables", action="store_true")
    _add_backend(exp_resume)
    _add_telemetry(exp_resume)

    exp_clean = exp_sub.add_parser(
        "clean", help="drop every cached node result and spec record")
    _add_workdir(exp_clean)

    compare = sub.add_parser(
        "compare", help="Table-II comparison (wrapper over `repro exp "
                        "run --kind comparison`)")
    compare.add_argument("--models", nargs="*", default=None)
    compare.add_argument("--datasets", nargs="*", default=["ciao", "cd"])
    compare.add_argument("--epochs", type=int, default=None)
    compare.add_argument("--seeds", nargs="*", type=int, default=[0])
    compare.add_argument("--workdir", default=None, metavar="DIR",
                         help="cache/resume directory (default: "
                              "ephemeral; see `repro exp run`)")
    compare.add_argument("--workers", type=int, default=0,
                         help="process-pool width (needs --workdir)")
    _add_backend(compare)
    _add_telemetry(compare)

    ablation = sub.add_parser(
        "ablation", help="Table-III ablations (wrapper over `repro exp "
                         "run --kind ablation`)")
    _add_common(ablation)
    ablation.add_argument("--workdir", default=None, metavar="DIR",
                          help="cache/resume directory (default: "
                               "ephemeral; see `repro exp run`)")
    ablation.add_argument("--workers", type=int, default=0,
                          help="process-pool width (needs --workdir)")
    _add_telemetry(ablation)

    cases = sub.add_parser(
        "cases", help="Table-V case studies (wrapper over `repro exp "
                      "run --kind cases`)")
    _add_common(cases)
    cases.add_argument("--workdir", default=None, metavar="DIR",
                       help="cache/resume directory (default: "
                            "ephemeral; see `repro exp run`)")
    cases.add_argument("--workers", type=int, default=0,
                       help="process-pool width (needs --workdir)")
    _add_telemetry(cases)

    obs_cmd = sub.add_parser("obs", help="telemetry run utilities")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summ = obs_sub.add_parser("summarize",
                              help="span tree + metrics of one run")
    summ.add_argument("run_dir", help="runs/<run_id> directory")
    summ.add_argument("--json", action="store_true",
                      help="machine-readable JSON instead of text")
    lst = obs_sub.add_parser("list", help="list recorded runs")
    lst.add_argument("--run-dir", default="runs")
    exp_tr = obs_sub.add_parser(
        "export-trace",
        help="Chrome/Perfetto trace JSON from one run's events")
    exp_tr.add_argument("run_dir", help="runs/<run_id> directory")
    exp_tr.add_argument("--out", default=None,
                        help="output path (default: <run_dir>/trace.json)")
    slo_p = obs_sub.add_parser(
        "slo", help="evaluate service-level objectives against one run")
    slo_p.add_argument("run_dir", help="runs/<run_id> directory")
    slo_p.add_argument("--config", default=None,
                       help="SLO JSON file (default: <run_dir>/slo.json "
                            "when present, else the built-in objectives)")
    slo_p.add_argument("--json", action="store_true",
                       help="machine-readable JSON report")
    prof = obs_sub.add_parser(
        "profile", help="hottest stacks from a --profile run")
    prof.add_argument("run_dir", help="runs/<run_id> directory")
    prof.add_argument("--top", type=int, default=15,
                      help="stacks to show (default: 15)")

    serve = sub.add_parser("serve", help="offline serving utilities")
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)
    exp = serve_sub.add_parser(
        "export", help="build a retrieval index from a checkpoint")
    exp.add_argument("checkpoint", help="checkpoint directory "
                                        "(from `repro train --save`)")
    exp.add_argument("--out", default=None,
                     help="index output directory "
                          "(default: <checkpoint>/index)")
    qry = serve_sub.add_parser("query",
                               help="top-K requests against a saved index")
    qry.add_argument("index", help="index directory "
                                   "(from `repro serve export`)")
    qry.add_argument("--users", required=True,
                     help="comma-separated user ids, e.g. 0,7,12")
    qry.add_argument("--k", type=int, default=10)
    qry.add_argument("--no-cache", action="store_true",
                     help="disable the LRU response cache")
    bch = serve_sub.add_parser("bench",
                               help="serving latency/QPS micro-benchmark")
    bch.add_argument("--model", default="LogiRec++")
    bch.add_argument("--dataset", default="ciao",
                     choices=["ciao", "cd", "clothing", "book"])
    bch.add_argument("--epochs", type=int, default=3)
    bch.add_argument("--requests", type=int, default=100)
    bch.add_argument("--k", type=int, default=10)
    bch.add_argument("--index", default=None, metavar="DIR",
                     help="benchmark a saved index (from `repro serve "
                          "export`) instead of training in-process")
    bch.add_argument("--fail-rate", type=float, default=0.0,
                     help="also measure the degraded path under this "
                          "injected scoring-failure rate")
    bch.add_argument("--frontend-workers", type=int, default=0,
                     metavar="N",
                     help="also run the multi-worker open-loop overload "
                          "benchmark with N worker processes")
    bch.add_argument("--no-kill-drill", action="store_true",
                     help="skip the worker-kill drill in the frontend "
                          "benchmark")
    _add_telemetry(bch)
    htp = serve_sub.add_parser(
        "http", help="multi-worker HTTP serving front-end")
    htp.add_argument("index", nargs="?", default=None,
                     help="index directory (from `repro serve export`); "
                          "not needed with --status")
    htp.add_argument("--status", action="store_true",
                     help="query a running front-end's /status instead "
                          "of starting one (requires --port)")
    htp.add_argument("--workers", type=int, default=2,
                     help="worker processes / index shards (default 2)")
    htp.add_argument("--host", default="127.0.0.1")
    htp.add_argument("--port", type=int, default=0,
                     help="listen port (default: OS-assigned); with "
                          "--status, the port to query")
    htp.add_argument("--port-file", default=None, metavar="FILE",
                     help="write the bound port here once listening "
                          "(for scripts that pass --port 0)")
    htp.add_argument("--k", type=int, default=10,
                     help="default list length when ?k= is omitted")
    htp.add_argument("--deadline-ms", type=float, default=250.0,
                     help="default per-request deadline budget; <=0 "
                          "disables deadlines")
    htp.add_argument("--queue-depth", type=int, default=256,
                     help="admission bound: max in-flight requests "
                          "before shedding (429)")
    htp.add_argument("--wait-budget-ms", type=float, default=None,
                     help="also shed when the EWMA queue wait exceeds "
                          "this")
    _add_telemetry(htp)

    robust = sub.add_parser(
        "robust", help="fault-injection and recovery drills")
    robust_sub = robust.add_subparsers(dest="robust_command",
                                       required=True)
    inject = robust_sub.add_parser(
        "inject", help="inject faults and exercise recovery")
    inject_sub = inject.add_subparsers(dest="inject_target",
                                       required=True)

    itr = inject_sub.add_parser(
        "train", help="NaN/kill faults against supervised training")
    itr.add_argument("--model", default="BPRMF")
    itr.add_argument("--dataset", default="cd",
                     choices=["ciao", "cd", "clothing", "book"])
    itr.add_argument("--epochs", type=int, default=4)
    itr.add_argument("--checkpoint-dir", default="robust_ck",
                     metavar="DIR")
    itr.add_argument("--checkpoint-every", type=int, default=1)
    itr.add_argument("--nan-epoch", type=int, default=None,
                     help="inject a NaN fault at this epoch")
    itr.add_argument("--nan-kind", default="nan_grad",
                     choices=["nan_grad", "nan_param"])
    itr.add_argument("--kill-epoch", type=int, default=None,
                     help="simulate a process kill after this epoch's "
                          "checkpoint (exit code 3)")
    itr.add_argument("--max-retries", type=int, default=3)
    itr.add_argument("--lr-backoff", type=float, default=0.5)
    itr.add_argument("--resume", action="store_true",
                     help="resume from --checkpoint-dir")
    itr.add_argument("--seed", type=int, default=0)

    isv = inject_sub.add_parser(
        "serve", help="failing/slow scoring against the serving engine")
    isv.add_argument("--model", default="BPRMF")
    isv.add_argument("--dataset", default="cd",
                     choices=["ciao", "cd", "clothing", "book"])
    isv.add_argument("--epochs", type=int, default=2)
    isv.add_argument("--requests", type=int, default=100)
    isv.add_argument("--fail-rate", type=float, default=0.1)
    isv.add_argument("--delay-rate", type=float, default=0.0)
    isv.add_argument("--delay", type=float, default=0.05,
                     help="injected delay seconds per slow call")
    isv.add_argument("--timeout", type=float, default=None,
                     help="per-request scoring deadline seconds")
    isv.add_argument("--retries", type=int, default=2)
    isv.add_argument("--k", type=int, default=10)
    isv.add_argument("--seed", type=int, default=0)
    isv.add_argument("--frontend", action="store_true",
                     help="drill the multi-worker front-end with "
                          "process-level faults instead of the "
                          "in-process engine")
    isv.add_argument("--workers", type=int, default=2,
                     help="[--frontend] worker processes")
    isv.add_argument("--kill-after", type=int, default=None,
                     metavar="N",
                     help="[--frontend] kill a worker after it handled "
                          "N requests")
    isv.add_argument("--stall-after", type=int, default=None,
                     metavar="N",
                     help="[--frontend] wedge a worker (no heartbeats) "
                          "after N requests")
    isv.add_argument("--stall-delay", type=float, default=3.0,
                     help="[--frontend] seconds the stalled worker "
                          "stays wedged")
    isv.add_argument("--slow-shard-rate", type=float, default=0.0,
                     help="[--frontend] per-request probability of "
                          "injected shard slowness")
    isv.add_argument("--slow-shard-delay", type=float, default=0.02,
                     help="[--frontend] injected delay seconds per "
                          "slow hit")
    isv.add_argument("--worker", type=int, default=0,
                     help="[--frontend] which worker the kill/stall "
                          "targets")
    isv.add_argument("--qps", type=float, default=200.0,
                     help="[--frontend] offered open-loop rate")
    isv.add_argument("--swap", action="store_true",
                     help="fire the scoring faults inside a hot-swap "
                          "window: the service must hold degraded-mode "
                          "(stale-index) serving and recover on the "
                          "next clean swap")
    isv.add_argument("--events", type=int, default=30,
                     help="[--swap] streamed events before the "
                          "fine-tune that produces the v2 index")

    ick = inject_sub.add_parser(
        "checkpoint", help="flip one checkpoint byte; expect rejection")
    ick.add_argument("path", help="checkpoint directory to corrupt "
                                  "(modified in place)")
    ick.add_argument("--seed", type=int, default=0)

    ist = inject_sub.add_parser(
        "stream", help="poison the event stream; expect typed "
                       "rejection with no dataset mutation")
    ist.add_argument("--kind", default="journal_corrupt",
                     choices=["journal_corrupt", "event_disorder",
                              "event_duplicate"])
    ist.add_argument("--dataset", default="cd",
                     choices=["ciao", "cd", "clothing", "book"])
    ist.add_argument("--events", type=int, default=20)
    ist.add_argument("--seed", type=int, default=0)

    online = sub.add_parser(
        "online", help="streaming ingest, incremental fine-tune, and "
                       "zero-downtime index swap")
    online_sub = online.add_subparsers(dest="online_command",
                                       required=True)

    def _add_online_common(p):
        p.add_argument("--workdir", default="online_state", metavar="DIR",
                       help="durable loop state directory "
                            "(default: online_state)")
        p.add_argument("--model", default="BPRMF")
        p.add_argument("--dataset", default="cd",
                       choices=["ciao", "cd", "clothing", "book"])
        p.add_argument("--seed", type=int, default=0)

    oin = online_sub.add_parser(
        "ingest", help="fold pending journal events into the dataset "
                       "snapshot (optionally simulating events first)")
    _add_online_common(oin)
    oin.add_argument("--simulate", type=int, default=0, metavar="N",
                     help="append N synthetic events before ingesting")
    oin.add_argument("--new-users", type=int, default=0,
                     help="[--simulate] cold-start users in the stream")
    oin.add_argument("--new-items", type=int, default=0,
                     help="[--simulate] cold-start items in the stream")
    oin.add_argument("--max-events", type=int, default=None,
                     help="ingest at most this many events (default: "
                          "drain the journal)")

    oft = online_sub.add_parser(
        "finetune", help="incrementally fine-tune the warm checkpoint "
                         "on the recency-weighted stream tail")
    _add_online_common(oft)
    oft.add_argument("--epochs", type=int, default=3)
    oft.add_argument("--tail-frac", type=float, default=0.25,
                     help="most-recent fraction of interactions to "
                          "fine-tune on (default: 0.25)")
    oft.add_argument("--half-life", type=float, default=None,
                     help="recency half-life in timestamp units "
                          "(default: a quarter of the tail's span)")

    osw = online_sub.add_parser(
        "swap", help="atomically flip CURRENT to an exported index "
                     "version and hot-swap attached services")
    _add_online_common(osw)
    osw.add_argument("--version", type=int, default=None,
                     help="index version to activate (default: newest)")

    orn = online_sub.add_parser(
        "run", help="one full ingest -> finetune -> swap cycle with "
                    "simulated events (bootstraps on first run)")
    _add_online_common(orn)
    orn.add_argument("--events", type=int, default=50)
    orn.add_argument("--new-users", type=int, default=2)
    orn.add_argument("--new-items", type=int, default=2)
    orn.add_argument("--bootstrap-epochs", type=int, default=3)
    orn.add_argument("--finetune-epochs", type=int, default=3)
    orn.add_argument("--tail-frac", type=float, default=0.25)
    orn.add_argument("--k", type=int, default=10,
                     help="cold-start probe list length")
    _add_telemetry(orn)

    ost = online_sub.add_parser(
        "status", help="journal lag, index version, and universe size")
    _add_online_common(ost)
    return parser


def cmd_stats(args) -> int:
    from repro.data import dataset_statistics
    for row in dataset_statistics(args.datasets):
        print(row)
    return 0


def cmd_train(args) -> int:
    from repro import obs
    from repro.data import load_dataset, temporal_split
    from repro.eval import Evaluator
    from repro.experiments import build_model
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    run = _maybe_start_run(args, "train", model=args.model,
                           dataset=args.dataset, epochs=args.epochs)
    with obs.trace("run", command="train"):
        with obs.trace("load_dataset", dataset=args.dataset):
            dataset = load_dataset(args.dataset)
            split = temporal_split(dataset)
        supervisor = None
        model = None
        if args.checkpoint_dir:
            from repro.robust import (ResilienceConfig,
                                      TrainingSupervisor, has_fit_state)
            supervisor = TrainingSupervisor(ResilienceConfig(
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                max_retries=args.max_retries,
                lr_backoff=args.lr_backoff, resume=args.resume))
            if args.resume and has_fit_state(args.checkpoint_dir):
                from repro.serve import load_checkpoint
                model = load_checkpoint(args.checkpoint_dir,
                                        dataset=dataset, split=split)
                print(f"[resume] continuing from "
                      f"{args.checkpoint_dir} at epoch "
                      f"{len(model.loss_history)}")
        if model is None:
            model = build_model(args.model, dataset, seed=args.seed)
        if args.epochs is not None:
            model.config.epochs = args.epochs
        evaluator = Evaluator(dataset, split)
        try:
            model.fit(dataset, split, evaluator=evaluator,
                      supervisor=supervisor)
        except Exception as exc:
            from repro.robust import TrainingDivergedError
            if isinstance(exc, TrainingDivergedError):
                print(f"error: {exc}", file=sys.stderr)
                return 1
            raise
        result = evaluator.evaluate_test(model)
    print(f"{args.model} on {args.dataset}: {result.summary()}")
    if supervisor is not None and supervisor.summary()["rollbacks"]:
        s = supervisor.summary()
        print(f"[robust] recovered from {s['rollbacks']} divergence "
              f"event(s); retries left: {s['retries_left']}")
    if args.save:
        from repro.serve import save_checkpoint
        path = save_checkpoint(model, args.save, dataset=dataset)
        print(f"[checkpoint] saved to {path} "
              f"(build an index with: repro serve export {path})")
    _finish_run(run, final_metrics=result.means,
                dataset_stats={"n_users": dataset.n_users,
                               "n_items": dataset.n_items,
                               "n_interactions": dataset.n_interactions})
    return 0


def _current_backend_name() -> str:
    from repro.tensor.backend import get_backend
    return get_backend().name


def _spec_from_flags(args):
    """Build the ExperimentSpec an ``exp``-style namespace describes."""
    from repro.experiments.dag import ExperimentSpec
    if getattr(args, "spec", None):
        spec = ExperimentSpec.from_file(args.spec)
        if args.backend and args.backend != spec.backend:
            spec = ExperimentSpec.from_dict(
                {**spec.to_dict(), "backend": args.backend})
        return spec
    return ExperimentSpec(
        kind=args.kind,
        models=tuple(args.models) if args.models else (),
        datasets=tuple(args.datasets) if args.datasets else (),
        variants=tuple(args.variants) if args.variants else (),
        params=tuple(args.params) if args.params else (),
        lambdas=tuple(args.lambdas) if args.lambdas else (),
        fractions=tuple(args.fractions) if args.fractions else (),
        baseline=args.baseline, seeds=tuple(args.seeds),
        ks=tuple(args.ks) if args.ks else (10, 20),
        epochs=args.epochs, scale=args.scale,
        backend=args.backend or _current_backend_name())


def _run_spec(args, spec, *, command: str, workdir, workers: int,
              tables: bool = True, render=None) -> int:
    """Shared execution path of ``exp run|resume`` and the wrappers."""
    from repro import obs
    from repro.experiments.dag import run_experiment
    run = _maybe_start_run(args, command, kind=spec.kind,
                           spec=spec.spec_hash(), workdir=workdir,
                           workers=workers)
    with obs.trace("run", command=command):
        result = run_experiment(spec, workdir=workdir, workers=workers)
    print(f"[exp] spec {spec.spec_hash()} ({spec.describe()})")
    print(f"[exp] {result.stats.summary()}")
    if workdir:
        print(f"[exp] cached under {workdir} (inspect with: repro exp "
              f"status --workdir {workdir}; rerun skips cached nodes)")
    if tables:
        print(result.format() if render is None else render(result))
    final = {f"exp/{k}": float(v)
             for k, v in result.stats.to_dict().items()
             if isinstance(v, (int, float))}
    _finish_run(run, final_metrics=final)
    return 0


def cmd_exp(args) -> int:
    from repro.experiments.dag import (ExperimentSpec, ResultStore,
                                       SpecError, clean_experiment,
                                       experiment_status)
    if args.exp_command == "clean":
        n = clean_experiment(args.workdir)
        print(f"[exp] removed {n} cached node(s) under {args.workdir}")
        return 0
    if args.exp_command == "resume":
        if args.spec:
            try:
                spec = ExperimentSpec.from_file(args.spec)
            except SpecError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            recorded = ResultStore(args.workdir).recorded_specs()
            if not recorded:
                print(f"error: nothing to resume under {args.workdir}; "
                      f"start with `repro exp run` or pass --spec",
                      file=sys.stderr)
                return 2
            spec = recorded[0]
        if args.backend and args.backend != spec.backend:
            spec = ExperimentSpec.from_dict(
                {**spec.to_dict(), "backend": args.backend})
        return _run_spec(args, spec, command="exp_resume",
                         workdir=args.workdir, workers=args.workers,
                         tables=not args.no_tables)
    try:
        spec = _spec_from_flags(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.exp_command == "status":
        status = experiment_status(spec, args.workdir)
        by_kind = {}
        for node in status["nodes"]:
            slot = by_kind.setdefault(node["kind"], [0, 0])
            slot[0] += node["done"]
            slot[1] += 1
        print(f"[exp] spec {status['spec_hash']} ({spec.describe()}): "
              f"{status['state']} — {status['done']}/{status['total']} "
              f"node(s) under {args.workdir}")
        for kind in ("dataset", "train", "eval", "cases", "aggregate"):
            if kind in by_kind:
                done, total = by_kind[kind]
                print(f"  {kind}: {done}/{total}")
        return {"complete": 0, "partial": 1, "empty": 2}[status["state"]]
    # exp run
    workdir = None if args.ephemeral else args.workdir
    return _run_spec(args, spec, command="exp_run", workdir=workdir,
                     workers=args.workers, tables=not args.no_tables)


def cmd_compare(args) -> int:
    from repro.experiments.dag import ExperimentSpec, SpecError
    try:
        spec = ExperimentSpec(
            kind="comparison",
            models=tuple(args.models) if args.models else (),
            datasets=tuple(args.datasets), seeds=tuple(args.seeds),
            epochs=args.epochs,
            backend=args.backend or _current_backend_name())
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _run_spec(args, spec, command="compare",
                     workdir=args.workdir, workers=args.workers)


def cmd_ablation(args) -> int:
    from repro.experiments.dag import ExperimentSpec, SpecError
    try:
        spec = ExperimentSpec(
            kind="ablation", datasets=(args.dataset,),
            seeds=(args.seed,), epochs=args.epochs,
            backend=args.backend or _current_backend_name())
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _run_spec(args, spec, command="ablation",
                     workdir=args.workdir, workers=args.workers)


def cmd_cases(args) -> int:
    from repro.experiments.cases import format_case_table
    from repro.experiments.dag import ExperimentSpec, SpecError
    try:
        spec = ExperimentSpec(
            kind="cases", datasets=(args.dataset,), seeds=(args.seed,),
            epochs=args.epochs,
            backend=args.backend or _current_backend_name())
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _run_spec(
        args, spec, command="cases", workdir=args.workdir,
        workers=args.workers,
        render=lambda result: format_case_table(result.cases()))


def cmd_obs(args) -> int:
    import json
    import pathlib

    from repro import obs
    if args.obs_command == "summarize":
        run_dir = pathlib.Path(args.run_dir)
        if not run_dir.is_dir():
            print(f"error: no run directory at {run_dir}",
                  file=sys.stderr)
            return 2
        if (obs.read_manifest(run_dir) is None
                and not obs.read_events(run_dir)):
            print(f"error: {run_dir} contains no run artifacts "
                  f"(expected manifest.json or events.jsonl)",
                  file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(obs.summarize_json(run_dir), indent=2))
        else:
            print(obs.summarize(run_dir))
        return 0
    if args.obs_command == "export-trace":
        run_dir = pathlib.Path(args.run_dir)
        if not run_dir.is_dir():
            print(f"error: no run directory at {run_dir}",
                  file=sys.stderr)
            return 2
        try:
            out = obs.export_chrome_trace(run_dir, out=args.out)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"[trace] {out} (open in chrome://tracing or "
              f"https://ui.perfetto.dev)")
        return 0
    if args.obs_command == "slo":
        from repro.obs.slo import (SloConfigError, evaluate_run,
                                   format_report, load_slo_config)
        run_dir = pathlib.Path(args.run_dir)
        if not run_dir.is_dir():
            print(f"error: no run directory at {run_dir}",
                  file=sys.stderr)
            return 2
        config_path = args.config
        if config_path is None and (run_dir / "slo.json").is_file():
            config_path = run_dir / "slo.json"
        try:
            objectives = load_slo_config(config_path)
        except SloConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = evaluate_run(run_dir, objectives)
        if report is None:
            print(f"error: {run_dir} has no manifest.json (run did not "
                  f"finish); nothing to evaluate", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(format_report(report, title=f"slo {run_dir}"))
        if report["n_no_data"] == report["n_objectives"]:
            return 2
        return 0 if report["passed"] else 1
    if args.obs_command == "profile":
        from repro.obs.profile import PROFILE_FILENAME, render_profile
        run_dir = pathlib.Path(args.run_dir)
        if not run_dir.is_dir():
            print(f"error: no run directory at {run_dir}",
                  file=sys.stderr)
            return 2
        path = run_dir / PROFILE_FILENAME
        if not path.is_file():
            print(f"error: no {PROFILE_FILENAME} in {run_dir} "
                  f"(record one with --profile)", file=sys.stderr)
            return 2
        print(render_profile(path, top=args.top))
        return 0
    base = pathlib.Path(args.run_dir)
    if not base.is_dir():
        print(f"error: no run directory at {base}", file=sys.stderr)
        return 2
    lines = obs.list_runs(base)
    if not lines:
        print(f"error: no runs recorded under {base}/", file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    return 0


def cmd_serve(args) -> int:
    from repro.serve import (CheckpointError, IndexFormatError,
                             RecommendService, ServiceConfig, build_index,
                             load_index)
    try:
        if args.serve_command == "export":
            return _serve_export(args, build_index)
        if args.serve_command == "query":
            index = load_index(args.index)
            service = RecommendService(index, ServiceConfig(
                k=args.k, cache_size=0 if args.no_cache else 1024))
            users = [int(u) for u in args.users.split(",") if u.strip()]
            for response in service.query_batch(users, k=args.k):
                items = " ".join(str(i) for i in response["items"])
                note = f" ({response['source']} fallback)" \
                    if response["fallback"] else ""
                print(f"user {response['user_id']}: {items}{note}")
            return 0
        if args.serve_command == "http":
            return _serve_http(args, load_index)
        from repro.serve.bench import format_results, run_serve_benchmark
        run = _maybe_start_run(args, "serve_bench", model=args.model,
                               dataset=args.dataset,
                               requests=args.requests)
        results = run_serve_benchmark(
            model_name=args.model, dataset_name=args.dataset,
            epochs=args.epochs, n_requests=args.requests, k=args.k,
            index_path=args.index, fail_rate=args.fail_rate,
            frontend_workers=args.frontend_workers,
            frontend_kill_drill=not args.no_kill_drill)
        print(format_results(results))
        final = {"indexed/p99_ms": results["indexed"]["p99_ms"],
                 "indexed/qps": results["indexed"]["qps"]}
        if results.get("speedup_indexed_vs_naive"):
            final["speedup"] = results["speedup_indexed_vs_naive"]
        frontend = results.get("frontend")
        if frontend is not None:
            final["frontend/capacity_qps"] = frontend["capacity_qps"]
        _finish_run(run, final_metrics=final)
        return 0
    except (CheckpointError, IndexFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _serve_http(args, load_index) -> int:
    """``repro serve http``: run (or inspect) the multi-worker edge."""
    from repro.serve import ServiceConfig
    from repro.serve.frontend import (FrontendConfig, ServingFrontend,
                                      fetch_status, run_http_server)
    if args.status:
        if not args.port:
            print("error: --status needs --port PORT", file=sys.stderr)
            return 2
        try:
            status = fetch_status(args.port, args.host)
        except ConnectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        fleet = status.get("fleet", {})
        print(f"frontend on {args.host}:{args.port}: "
              f"{fleet.get('ready', '?')}/{fleet.get('n_workers', '?')} "
              f"worker(s) ready, queue depth {status['queue_depth']}, "
              f"draining={status['draining']}")
        _print_kv(status["counters"])
        print(f"  ewma_queue_wait_ms: {status['ewma_queue_wait_ms']}")
        print(f"  worker_restarts: {fleet.get('total_restarts')}")
        breakers = fleet.get("breaker_states", {})
        flag = " (!)" if fleet.get("any_breaker_open") else ""
        print(f"  breakers: {breakers}{flag}")
        for shard_id, shard in sorted(fleet.get("shards", {}).items()):
            breaker = shard.get("breaker") or {}
            print(f"  shard {shard_id}: {shard['state']} "
                  f"worker={shard['worker_id']} "
                  f"gen={shard['generation']} "
                  f"restarts={shard['restarts']} "
                  f"handled={shard['handled']} "
                  f"breaker={breaker.get('state', '-')}")
        return 0
    if not args.index:
        print("error: an index directory is required (or --status)",
              file=sys.stderr)
        return 2
    index = load_index(args.index)
    run = _maybe_start_run(args, "serve_http", index=args.index,
                           workers=args.workers)
    deadline = args.deadline_ms if args.deadline_ms > 0 else None
    config = FrontendConfig(
        n_workers=args.workers,
        service=ServiceConfig(k=args.k),
        max_queue_depth=args.queue_depth,
        wait_budget_ms=args.wait_budget_ms,
        default_deadline_ms=deadline)
    frontend = ServingFrontend(index, config)

    def _ready(port: int) -> None:
        print(f"[serve] http://{args.host}:{port} -- {args.workers} "
              f"worker(s), queue depth {args.queue_depth}, deadline "
              f"{deadline or 'off'}; GET /recommend?user=U&k=K, "
              f"/status, /health; SIGTERM drains", flush=True)

    code = run_http_server(frontend, host=args.host, port=args.port,
                           port_file=args.port_file, ready_message=_ready)
    counters = dict(frontend.counters)
    print(f"[serve] drained: {counters['completed']} completed, "
          f"{counters['shed_requests']} shed, "
          f"{counters['draining_rejects']} rejected while draining")
    _finish_run(run, final_metrics={
        "serve/completed": counters["completed"],
        "serve/shed_requests": counters["shed_requests"]})
    return code


def _serve_export(args, build_index) -> int:
    import pathlib

    from repro.data import load_dataset, temporal_split
    from repro.serve import (CheckpointError, load_checkpoint,
                             read_checkpoint_meta)
    meta = read_checkpoint_meta(args.checkpoint)
    dataset_meta = meta.get("dataset")
    if not dataset_meta:
        raise CheckpointError(
            f"checkpoint {args.checkpoint} records no dataset; re-save "
            f"it with save_checkpoint(model, path, dataset=...)")
    dataset = load_dataset(dataset_meta["name"])
    split = temporal_split(dataset)
    model = load_checkpoint(args.checkpoint, dataset=dataset, split=split)
    out = pathlib.Path(args.out) if args.out else (
        pathlib.Path(args.checkpoint) / "index")
    index = build_index(model, dataset, split)
    index.save(out)
    print(f"[index] {meta['model_class']} on {dataset_meta['name']} "
          f"(kind={index.kind}) written to {out} "
          f"(query with: repro serve query {out} --users 0,1,2)")
    return 0


def _print_kv(record: dict, skip=()) -> None:
    for key, value in record.items():
        if key in skip:
            continue
        print(f"  {key}: {value}")


def cmd_robust(args) -> int:
    from repro.robust import TrainingDivergedError
    from repro.robust.drills import (run_checkpoint_drill,
                                     run_frontend_drill,
                                     run_serving_drill,
                                     run_stream_drill,
                                     run_training_drill)
    from repro.serve import CheckpointError
    if args.inject_target == "stream":
        record = run_stream_drill(kind=args.kind,
                                  dataset_name=args.dataset,
                                  n_events=args.events, seed=args.seed)
        verdict = ("fault detected and contained" if record["passed"]
                   else "fault NOT contained")
        print(f"robust inject stream ({record['kind']}): "
              f"{record['dataset']} -> {verdict}")
        _print_kv(record, skip=("kind", "dataset"))
        return 0 if record["passed"] else 1
    if args.inject_target == "serve" and args.swap:
        from repro.online import run_online_serve_drill
        record = run_online_serve_drill(
            model_name=args.model, dataset_name=args.dataset,
            epochs=args.epochs, n_requests=args.requests,
            n_events=args.events, k=args.k, seed=args.seed)
        verdict = ("degraded-mode serving held through the faulty "
                   "swap, recovered on the clean swap"
                   if record["passed"] else
                   f"{record['phase2_valid']}/{record['n_requests']} "
                   f"valid under fault, recovered="
                   f"{record['recovered']}")
        print(f"robust inject serve --swap: {record['model']} on "
              f"{record['dataset']} -> {verdict}")
        _print_kv(record, skip=("model", "dataset"))
        return 0 if record["passed"] else 1
    if args.inject_target == "train":
        try:
            record = run_training_drill(
                model_name=args.model, dataset_name=args.dataset,
                epochs=args.epochs, checkpoint_dir=args.checkpoint_dir,
                nan_epoch=args.nan_epoch, nan_kind=args.nan_kind,
                kill_epoch=args.kill_epoch,
                checkpoint_every=args.checkpoint_every,
                max_retries=args.max_retries, lr_backoff=args.lr_backoff,
                resume=args.resume, seed=args.seed)
        except TrainingDivergedError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        status = ("crashed (resume with --resume)" if record["crashed"]
                  else "completed" if record["completed"] else "partial")
        print(f"robust inject train: {record['model']} on "
              f"{record['dataset']} -> {status}")
        _print_kv(record, skip=("model", "dataset", "events"))
        return 3 if record["crashed"] else 0
    if args.inject_target == "serve" and args.frontend:
        if (args.kill_after is None and args.stall_after is None
                and args.slow_shard_rate <= 0):
            print("error: --frontend needs at least one fault "
                  "(--kill-after / --stall-after / --slow-shard-rate)",
                  file=sys.stderr)
            return 2
        record = run_frontend_drill(
            model_name=args.model, dataset_name=args.dataset,
            epochs=args.epochs, n_requests=args.requests,
            n_workers=args.workers, kill_after=args.kill_after,
            stall_after=args.stall_after,
            stall_delay_s=args.stall_delay,
            slow_rate=args.slow_shard_rate,
            slow_delay_s=args.slow_shard_delay, worker=args.worker,
            k=args.k, qps=args.qps, seed=args.seed)
        passed = record["all_answered"] and record["recovered"]
        verdict = ("survived: every request answered, fleet recovered"
                   if passed else
                   f"{record['hard_failures']} hard failure(s), "
                   f"{record['fleet_ready']}/{record['n_workers']} "
                   f"worker(s) ready")
        print(f"robust inject serve --frontend: {record['model']} on "
              f"{record['dataset']} "
              f"({', '.join(record['fault_kinds'])}) -> {verdict}")
        _print_kv(record, skip=("model", "dataset",
                                "frontend_counters"))
        return 0 if passed else 1
    if args.inject_target == "serve":
        record = run_serving_drill(
            model_name=args.model, dataset_name=args.dataset,
            epochs=args.epochs, n_requests=args.requests,
            fail_rate=args.fail_rate, delay_rate=args.delay_rate,
            delay_s=args.delay, timeout_s=args.timeout,
            retries=args.retries, k=args.k, seed=args.seed)
        verdict = "all responses valid" if record["all_valid"] else \
            f"only {record['n_valid']}/{record['n_requests']} valid"
        print(f"robust inject serve: {record['model']} on "
              f"{record['dataset']} -> {verdict}")
        _print_kv(record, skip=("model", "dataset"))
        return 0 if record["all_valid"] else 1
    record = run_checkpoint_drill(args.path, seed=args.seed)
    verdict = ("corruption detected" if record["detected"]
               else "corruption NOT detected")
    print(f"robust inject checkpoint: {record['path']} -> {verdict}")
    _print_kv(record, skip=("path",))
    return 0 if record["detected"] else 1


def cmd_online(args) -> int:
    from repro.data.dataset import StreamError
    from repro.online import OnlineLoop

    loop = OnlineLoop(args.workdir, model_name=args.model,
                      dataset_name=args.dataset, seed=args.seed)
    try:
        if args.online_command == "ingest":
            if args.simulate:
                sim = loop.simulate(args.simulate, args.new_users,
                                    args.new_items)
                print(f"online simulate: {sim['n_events']} events "
                      f"appended ({args.new_users} new users, "
                      f"{args.new_items} new items)")
            record = loop.ingest(max_events=args.max_events)
            print(f"online ingest: {record['n_appended']} events folded "
                  f"into the snapshot")
            _print_kv(record)
            _print_kv({"universe": f"{loop.dataset.n_users} users x "
                                   f"{loop.dataset.n_items} items"})
            return 0
        if args.online_command == "finetune":
            record = loop.finetune(epochs=args.epochs,
                                   tail_frac=args.tail_frac,
                                   half_life=args.half_life)
            print(f"online finetune: index v{record['version']} "
                  f"exported (activate with: repro online swap "
                  f"--workdir {loop.workdir})")
            _print_kv(record)
            return 0
        if args.online_command == "swap":
            record = loop.swap(version=args.version)
            print(f"online swap: v{record['version']} is live "
                  f"({record['swap_latency_ms']:.1f} ms)")
            _print_kv(record, skip=("version", "live_swaps"))
            return 0
        if args.online_command == "status":
            record = loop.status()
            print(f"online status: {loop.workdir}")
            _print_kv(record, skip=("workdir",))
            return 0
        # run: one full cycle, with optional telemetry
        run = _maybe_start_run(args, "online", model=args.model,
                               dataset=args.dataset,
                               events=args.events)
        record = loop.run_cycle(
            n_events=args.events, n_new_users=args.new_users,
            n_new_items=args.new_items,
            bootstrap_epochs=args.bootstrap_epochs,
            finetune_epochs=args.finetune_epochs,
            tail_frac=args.tail_frac, probe_k=args.k)
        cold = record["cold_start"]
        swap = record["swap"]
        freshness = swap["event_to_servable_s"]
        fresh_txt = (f"{freshness:.3f}s" if freshness is not None
                     else "n/a")
        hit_txt = (f"{cold['hit_rate']:.2f}" if cold["n_probed"]
                   else "n/a")
        print(f"online run: v{swap['version']} live, "
              f"{record['ingest']['n_appended']} events ingested, "
              f"cold-start hit rate {hit_txt}, "
              f"event->servable {fresh_txt}")
        for verb in ("bootstrap", "simulate", "ingest", "finetune",
                     "swap", "cold_start"):
            print(f"  [{verb}]")
            sub = {key: value for key, value in record[verb].items()
                   if key != "live_swaps"}
            _print_kv({f"  {key}": value for key, value in sub.items()})
        _finish_run(run, final_metrics={
            "online/events_ingested": record["events_ingested"],
            "online/cold_start_hit_rate": cold["hit_rate"] or 0.0,
            "online/swap_latency_ms": swap["swap_latency_ms"]})
        return 0
    except StreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


COMMANDS = {
    "stats": cmd_stats,
    "train": cmd_train,
    "exp": cmd_exp,
    "compare": cmd_compare,
    "ablation": cmd_ablation,
    "cases": cmd_cases,
    "obs": cmd_obs,
    "serve": cmd_serve,
    "robust": cmd_robust,
    "online": cmd_online,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        from repro.tensor import set_backend
        set_backend(args.backend)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into e.g. `head` that exited early; not an error.
        import os
        try:
            os.close(sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
