"""Hyperbolic graph convolution (Eq. 6-8).

Euclidean mean aggregation is undefined on the hyperboloid, so embeddings
are mapped to the tangent space at the origin with the logarithmic map
(Eq. 6), propagated LightGCN-style with residual mean aggregation (Eq. 7),
summed over layers 1..L, and mapped back with the exponential map (Eq. 8).
"""

from __future__ import annotations

from typing import Tuple

import scipy.sparse as sp

from repro.manifolds import Lorentz
from repro.tensor import Tensor, sparse_matmul


def hyperbolic_gcn(user_lorentz: Tensor, item_lorentz: Tensor,
                   adj_ui: sp.spmatrix, adj_iu: sp.spmatrix,
                   n_layers: int) -> Tuple[Tensor, Tensor]:
    """Propagate Lorentz embeddings over the interaction graph.

    Parameters
    ----------
    user_lorentz, item_lorentz:
        ``(n_users, d+1)`` / ``(n_items, d+1)`` points on the hyperboloid.
    adj_ui, adj_iu:
        Row-normalized user->item and item->user adjacency
        (``adj_ui[u, i] = 1/|N_u|``), fixed during training.
    n_layers:
        The paper's L.  ``n_layers=0`` returns the inputs unchanged
        (the "w/o HGCN" ablation).

    Returns
    -------
    (user_out, item_out):
        Propagated embeddings, back on the hyperboloid.
    """
    if n_layers <= 0:
        return user_lorentz, item_lorentz
    z_u = Lorentz.logmap0(user_lorentz)
    z_v = Lorentz.logmap0(item_lorentz)
    acc_u, acc_v = None, None
    for _ in range(n_layers):
        next_u = z_u + sparse_matmul(adj_ui, z_v)
        next_v = z_v + sparse_matmul(adj_iu, z_u)
        z_u, z_v = next_u, next_v
        acc_u = z_u if acc_u is None else acc_u + z_u
        acc_v = z_v if acc_v is None else acc_v + z_v
    # Average the layer sum; Eq. 7 writes a plain sum, but dividing by L
    # keeps tangent norms in cosh's comfortable range without changing the
    # ranking geometry (a global scale on the tangent space).
    scale = 1.0 / float(n_layers)
    return Lorentz.expmap0(acc_u * scale), Lorentz.expmap0(acc_v * scale)


def euclidean_gcn(user_emb: Tensor, item_emb: Tensor,
                  adj_ui: sp.spmatrix, adj_iu: sp.spmatrix,
                  n_layers: int) -> Tuple[Tensor, Tensor]:
    """Flat-space twin of :func:`hyperbolic_gcn` (the "w/o Hyper" ablation)."""
    if n_layers <= 0:
        return user_emb, item_emb
    z_u, z_v = user_emb, item_emb
    acc_u, acc_v = None, None
    for _ in range(n_layers):
        next_u = z_u + sparse_matmul(adj_ui, z_v)
        next_v = z_v + sparse_matmul(adj_iu, z_u)
        z_u, z_v = next_u, next_v
        acc_u = z_u if acc_u is None else acc_u + z_u
        acc_v = z_v if acc_v is None else acc_v + z_v
    scale = 1.0 / float(n_layers)
    return acc_u * scale, acc_v * scale
