"""LogiRec: joint logical relation modeling and recommendation (Section IV).

Embedding layout (hyperbolic mode, the default):

* tags  — Poincare hyperplane centers ``T`` in ``P^d``;
* items — Poincare points ``v^P`` in ``P^d``, mapped to the hyperboloid
  with the diffeomorphism ``p^{-1}`` (Eq. 2) before recommendation;
* users — Lorentz points ``u^H`` on ``H^d``.

Per batch the model propagates (user, item) embeddings through the
hyperbolic GCN (Eq. 6-8), computes the LMNN loss (Eq. 9) on the sampled
triplets, adds λ times the three logical losses (Eq. 3-5) — objective
Eq. 10.

Two parameterizations are supported (``config.parameterization``):

* ``"tangent"`` (default): the learnable parameters are Euclidean tangent
  vectors at the origin, pushed onto the manifolds with ``expmap0`` inside
  the forward pass, and optimized with Adam.  This is the Chami et al.
  HGCN scheme; on small batches it is markedly more stable than manifold
  RSGD and is what the benchmark zoo uses.
* ``"manifold"``: points live directly on the manifolds and are optimized
  with Riemannian SGD (Section V-C / Eq. 16-18).  Kept fully functional
  for the optimizer-ablation bench.

The "w/o Hyper" ablation replaces every ingredient with its Euclidean
twin: flat embeddings, plain GCN, L2 triplet loss, and Euclidean tag balls
with directly learnable radii.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import LogiRecConfig
from repro.core.hgcn import euclidean_gcn, hyperbolic_gcn
from repro.core.losses import (
    euclidean_recommendation_loss,
    exclusion_loss,
    hierarchy_loss,
    membership_loss,
    recommendation_loss,
)
from repro.data.dataset import InteractionDataset, Split
from repro.manifolds import (
    Lorentz,
    PoincareBall,
    enclosing_ball,
    lorentz_ranking_scores,
    neg_dist_scores,
    poincare_to_lorentz,
)
from repro.models.base import Recommender
from repro.optim import Adam, Parameter, RiemannianSGD
from repro.tensor import Tensor, cat, gather_rows, no_grad, softplus


class LogiRec(Recommender):
    """The LogiRec framework (objective Eq. 10).

    Parameters
    ----------
    n_users, n_items, n_tags:
        Universe sizes.
    config:
        :class:`~repro.core.LogiRecConfig`; its ablation switches map onto
        Table III's variants.
    """

    def __init__(self, n_users: int, n_items: int, n_tags: int,
                 config: Optional[LogiRecConfig] = None):
        config = config if config is not None else LogiRecConfig()
        if config.parameterization not in ("tangent", "manifold"):
            raise ValueError("parameterization must be 'tangent' or "
                             "'manifold'")
        super().__init__(n_users, n_items, config)
        self.n_tags = int(n_tags)
        d = config.dim
        self._lorentz = Lorentz()
        self._poincare = PoincareBall()
        self.tag_radii_raw = None
        if not config.hyperbolic:
            self.user_emb = Parameter(
                self.rng.normal(0.0, 0.1, (n_users, d)), name="user_euc")
            self.item_emb = Parameter(
                self.rng.normal(0.0, 0.1, (n_items, d)), name="item_euc")
            self.tag_centers = Parameter(
                self.rng.normal(0.0, 0.3, (self.n_tags, d)),
                name="tag_centers_euc")
            # Euclidean tag radii are learned directly (softplus keeps > 0).
            self.tag_radii_raw = Parameter(
                np.full((self.n_tags, 1), 0.2), name="tag_radii")
        elif config.parameterization == "tangent":
            # Euclidean tangent vectors; expmap0 happens in the forward.
            self.user_emb = Parameter(
                self.rng.normal(0.0, 0.1, (n_users, d)), name="user_tan")
            self.item_emb = Parameter(
                self.rng.normal(0.0, 0.1, (n_items, d)), name="item_tan")
            self.tag_centers = Parameter(self._init_tag_tangents(d),
                                         name="tag_tan")
        else:
            self.user_emb = Parameter.random(
                (n_users, d + 1), self._lorentz, self.rng, scale=0.1,
                name="user_lorentz")
            self.item_emb = Parameter.random(
                (n_items, d), self._poincare, self.rng, scale=0.1,
                name="item_poincare")
            self.tag_centers = Parameter(
                self._init_tag_centers(d), self._poincare,
                name="tag_centers")
        # Filled by prepare():
        self._adj_ui = None
        self._adj_iu = None
        self._relations = None

    # ------------------------------------------------------------------
    # Initialization helpers
    # ------------------------------------------------------------------
    def _random_directions(self, d: int) -> np.ndarray:
        direction = self.rng.normal(0.0, 1.0, (self.n_tags, d))
        return direction / np.maximum(
            np.linalg.norm(direction, axis=1, keepdims=True), 1e-12)

    def _init_tag_centers(self, d: int) -> np.ndarray:
        """Manifold-space centers in the norm annulus [0.3, 0.8].

        ``r_c = (1 - ||c||^2) / (2 ||c||)`` explodes near the origin and
        vanishes near the boundary; mid-annulus starts give every tag a
        well-conditioned region.
        """
        radius = self.rng.uniform(0.3, 0.8, (self.n_tags, 1))
        return self._random_directions(d) * radius

    def _init_tag_tangents(self, d: int) -> np.ndarray:
        """Tangent vectors whose expmap0 lands in the same annulus."""
        radius = self.rng.uniform(0.3, 0.8, (self.n_tags, 1))
        return self._random_directions(d) * np.arctanh(radius)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        params = [self.user_emb, self.item_emb, self.tag_centers]
        if self.tag_radii_raw is not None:
            params.append(self.tag_radii_raw)
        return params

    def make_optimizer(self):
        if (self.config.hyperbolic
                and self.config.parameterization == "manifold"):
            return RiemannianSGD(self.parameters(), lr=self.config.lr,
                                 max_grad_norm=self.config.max_grad_norm)
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        self._adj_ui, self._adj_iu = self.normalized_adjacency(
            dataset, split.train)
        self._relations = dataset.relations

    # ------------------------------------------------------------------
    # Forward pieces
    # ------------------------------------------------------------------
    def _manifold_points(self) -> Tuple[Tensor, Tensor, Tensor]:
        """(user_lorentz, item_poincare, tag_center_poincare) tensors."""
        if self.config.parameterization == "tangent":
            zeros = Tensor(np.zeros((self.n_users, 1)))
            user_h = Lorentz.expmap0(cat([zeros, self.user_emb], axis=1))
            item_p = PoincareBall.expmap0(self.item_emb)
            tag_c = PoincareBall.expmap0(self.tag_centers)
            return user_h, item_p, tag_c
        return self.user_emb, self.item_emb, self.tag_centers

    def _tag_balls(self, tag_centers: Optional[Tensor] = None):
        """Current (o, r) for all tags, per the active geometry."""
        if not self.config.hyperbolic:
            return self.tag_centers, softplus(self.tag_radii_raw)
        if tag_centers is None:
            tag_centers = self._manifold_points()[2]
        return enclosing_ball(tag_centers)

    def _propagated(self):
        """Full (user, item) embedding tables after graph convolution,
        plus the item Poincare points used by the membership loss."""
        if not self.config.hyperbolic:
            user_all, item_all = euclidean_gcn(
                self.user_emb, self.item_emb, self._adj_ui, self._adj_iu,
                self.config.n_layers)
            return user_all, item_all, self.item_emb
        user_h, item_p, _ = self._manifold_points()
        item_h = poincare_to_lorentz(item_p)
        user_all, item_all = hyperbolic_gcn(
            user_h, item_h, self._adj_ui, self._adj_iu,
            self.config.n_layers)
        return user_all, item_all, item_p

    def _logic_loss(self, item_points: Tensor) -> Tensor:
        """λ-weighted sum of the enabled logical losses (Eq. 3-5)."""
        cfg = self.config
        if cfg.lam == 0.0:
            return Tensor(0.0)
        balls = self._tag_balls()
        total = Tensor(0.0)
        if cfg.use_membership and len(self._relations.membership):
            total = total + membership_loss(item_points, balls,
                                            self._relations.membership)
        if cfg.use_hierarchy and len(self._relations.hierarchy):
            total = total + hierarchy_loss(balls,
                                           self._relations.hierarchy)
        if cfg.use_exclusion and len(self._relations.exclusion):
            total = total + exclusion_loss(balls,
                                           self._relations.exclusion)
        return total * cfg.lam

    def _rec_weights(self, users: np.ndarray) -> Optional[np.ndarray]:
        """Per-triplet weights; LogiRec uses none (alpha comes in ++)."""
        return None

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        user_all, item_all, item_points = self._propagated()
        u = gather_rows(user_all, users)
        v_p = gather_rows(item_all, pos)
        v_q = gather_rows(item_all, neg)
        weights = self._rec_weights(users)
        if self.config.hyperbolic:
            rec = recommendation_loss(u, v_p, v_q, self.config.margin,
                                      weights)
        else:
            rec = euclidean_recommendation_loss(u, v_p, v_q,
                                                self.config.margin, weights)
        return rec + self._logic_loss(item_points)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def final_embeddings(self):
        """Propagated (user, item) tables as numpy arrays (no grad)."""
        with no_grad():
            user_all, item_all, _ = self._propagated()
        return user_all.data, item_all.data

    def user_lorentz_points(self) -> np.ndarray:
        """Raw (pre-GCN) user embeddings on the hyperboloid (for GR)."""
        if not self.config.hyperbolic:
            return self.user_emb.data
        with no_grad():
            return self._manifold_points()[0].data

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        user_all, item_all = self.final_embeddings()
        u = user_all[np.asarray(user_ids, dtype=np.int64)]
        if self.config.hyperbolic:
            # score = -d_H(u, v); computed via the Lorentz inner product.
            return lorentz_ranking_scores(u, item_all)
        return neg_dist_scores(u, item_all)

    def export_scoring(self):
        """Frozen propagated tables for the serving index.

        Exporting once is what makes serving fast: ``score_users`` above
        re-runs the full hyperbolic GCN per call, while the index replays
        only the final Lorentz/Euclidean distance arithmetic.
        """
        user_all, item_all = self.final_embeddings()
        kind = "lorentz" if self.config.hyperbolic else "neg_dist"
        return {"kind": kind, "user": np.array(user_all),
                "item": np.array(item_all)}

    # ------------------------------------------------------------------
    # Relation readout (used by case studies and mining analyses)
    # ------------------------------------------------------------------
    def tag_ball_arrays(self):
        """Current tag ball centers/radii as numpy arrays."""
        with no_grad():
            o, r = self._tag_balls()
        return o.data, r.data

    def exclusion_margins(self) -> np.ndarray:
        """Signed separation ``||o_i - o_j|| - (r_i + r_j)`` per exclusive
        pair: positive = geometrically disjoint (exclusion respected),
        negative = overlapping (exclusion softened by training)."""
        o, r = self.tag_ball_arrays()
        pairs = self._relations.exclusion
        if len(pairs) == 0:
            return np.zeros(0)
        gap = np.linalg.norm(o[pairs[:, 0]] - o[pairs[:, 1]], axis=-1)
        return gap - (r[pairs[:, 0], 0] + r[pairs[:, 1], 0])
