"""The four LogiRec objectives (Eq. 3, 4, 5, 9).

The three logical losses are hinge relaxations of the geometric predicates
of Lemmas 1-3.  They operate on *tag balls* — a pair of tensors
``(o, r)`` with ``o`` of shape ``(n_tags, d)`` and ``r`` of shape
``(n_tags, 1)``:

* in hyperbolic mode these are the enclosing d-balls of the tags' Poincare
  hyperplanes (:func:`repro.manifolds.enclosing_ball` applied to the
  learnable centers);
* in the "w/o Hyper" Euclidean ablation they are plain Euclidean balls
  with directly learnable radii.

The recommendation loss is the LMNN triplet hinge over Lorentzian
distances (Eq. 9); Eq. 15's user-weighted form is obtained by passing
``user_weights``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.manifolds import Lorentz
from repro.tensor import Tensor, clamp_min, gather_rows, norm
from repro.tensor import backend as _be

TagBalls = Tuple[Tensor, Tensor]


def membership_loss(item_points: Tensor, tag_balls: TagBalls,
                    membership_pairs: np.ndarray) -> Tensor:
    """Eq. 3: mean hinge on ``||v_i - o_t|| - r_t`` over (item, tag) pairs."""
    if len(membership_pairs) == 0:
        return Tensor(0.0)
    o_all, r_all = tag_balls
    items = gather_rows(item_points, membership_pairs[:, 0])
    o = gather_rows(o_all, membership_pairs[:, 1])
    r = gather_rows(r_all, membership_pairs[:, 1]).reshape(-1)
    violation = norm(items - o, axis=-1) - r
    return clamp_min(violation, 0.0).mean()


def hierarchy_loss(tag_balls: TagBalls,
                   hierarchy_pairs: np.ndarray) -> Tensor:
    """Eq. 4: mean hinge on ``||o_p - o_c|| + r_c - r_p``
    (parent ball must contain child ball, Lemma 2)."""
    if len(hierarchy_pairs) == 0:
        return Tensor(0.0)
    o_all, r_all = tag_balls
    o_p = gather_rows(o_all, hierarchy_pairs[:, 0])
    o_c = gather_rows(o_all, hierarchy_pairs[:, 1])
    r_p = gather_rows(r_all, hierarchy_pairs[:, 0]).reshape(-1)
    r_c = gather_rows(r_all, hierarchy_pairs[:, 1]).reshape(-1)
    violation = norm(o_p - o_c, axis=-1) + r_c - r_p
    return clamp_min(violation, 0.0).mean()


def exclusion_loss(tag_balls: TagBalls, exclusion_pairs: np.ndarray,
                   pair_weights: Optional[np.ndarray] = None) -> Tensor:
    """Eq. 5: mean hinge on ``r_i + r_j - ||o_i - o_j||``
    (sibling balls must be disjoint, Lemma 3).

    ``pair_weights`` lets relation-mining analyses soften mislabelled
    exclusions explicitly (used by the ablation benches; LogiRec++ itself
    softens them implicitly through the user weights of Eq. 15).
    """
    if len(exclusion_pairs) == 0:
        return Tensor(0.0)
    o_all, r_all = tag_balls
    o_i = gather_rows(o_all, exclusion_pairs[:, 0])
    o_j = gather_rows(o_all, exclusion_pairs[:, 1])
    r_i = gather_rows(r_all, exclusion_pairs[:, 0]).reshape(-1)
    r_j = gather_rows(r_all, exclusion_pairs[:, 1]).reshape(-1)
    violation = r_i + r_j - norm(o_i - o_j, axis=-1)
    hinge = clamp_min(violation, 0.0)
    if pair_weights is not None:
        hinge = hinge * Tensor(np.asarray(pair_weights, dtype=np.float64))
    return hinge.mean()


def recommendation_loss(user_emb: Tensor, pos_emb: Tensor, neg_emb: Tensor,
                        margin: float,
                        user_weights: Optional[np.ndarray] = None) -> Tensor:
    """Eq. 9 (and its weighted Eq. 15 form): LMNN hinge over ``d_H``.

    ``L = mean [m + d(u, v_p) - d(u, v_q)]_+``, optionally scaled
    per-triplet by alpha of the triplet's user.

    Distances are the squared Lorentzian distance (Law et al., 2019) — a
    smooth monotone surrogate of the geodesic ``arcosh`` distance whose
    gradient stays bounded near coincident points; the geodesic version's
    gradient diverges there, which in practice stalls RSGD (see
    :meth:`repro.manifolds.Lorentz.sqdist`).
    """
    return _be.kernel("losses.lorentz_triplet")(
        user_emb, pos_emb, neg_emb, margin, user_weights)


def _lorentz_triplet_reference(user_emb: Tensor, pos_emb: Tensor,
                               neg_emb: Tensor, margin: float,
                               user_weights: Optional[np.ndarray] = None
                               ) -> Tensor:
    d_pos = Lorentz.sqdist(user_emb, pos_emb)
    d_neg = Lorentz.sqdist(user_emb, neg_emb)
    hinge = clamp_min(margin + d_pos - d_neg, 0.0)
    if user_weights is not None:
        hinge = hinge * Tensor(np.asarray(user_weights, dtype=np.float64))
    return hinge.mean()


_be.register_kernel("losses.lorentz_triplet",
                    reference=_lorentz_triplet_reference)


def euclidean_recommendation_loss(user_emb: Tensor, pos_emb: Tensor,
                                  neg_emb: Tensor, margin: float,
                                  user_weights: Optional[np.ndarray] = None
                                  ) -> Tensor:
    """Euclidean twin of Eq. 9 for the "w/o Hyper" ablation."""
    d_pos = norm(user_emb - pos_emb, axis=-1)
    d_neg = norm(user_emb - neg_emb, axis=-1)
    hinge = clamp_min(margin + d_pos - d_neg, 0.0)
    if user_weights is not None:
        hinge = hinge * Tensor(np.asarray(user_weights, dtype=np.float64))
    return hinge.mean()
