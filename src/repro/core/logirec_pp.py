"""LogiRec++: LogiRec plus data-driven logical relation mining (Section V).

LogiRec++ reweights each user's contribution to the recommendation loss by
alpha_u = sqrt(CON_u * GR_u) (Eq. 14):

* **CON_u** (Eq. 12) is computed once from data — the fewer / lower-level
  exclusive tag pairs in the user's interaction history, the more
  consistent the user and the higher the weight;
* **GR_u** (Eq. 13) is the current distance of the user's Lorentz
  embedding from the origin, refreshed at the start of every epoch as the
  embedding moves — finer-granularity users (far from the origin) need
  larger weights to rearrange the fine-grained region they occupy.

The weighted objective is Eq. 15.  Since consistent, fine-grained users
dominate the gradient, mislabelled exclusions (overlapping sibling tags)
lose the evidence that kept them apart and the exclusion hinge lets them
drift together — this is the "relation mining without extra supervision"
the paper describes, and :meth:`LogiRec.exclusion_margins` exposes it.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro import obs
from repro.core.config import LogiRecConfig
from repro.core.logirec import LogiRec
from repro.core.weighting import (
    consistency_weights,
    granularity_weights,
    personalized_weights,
)
from repro.data.dataset import InteractionDataset, Split


class LogiRecPP(LogiRec):
    """LogiRec with consistency/granularity weighting (objective Eq. 15)."""

    def __init__(self, n_users: int, n_items: int, n_tags: int,
                 config: Optional[LogiRecConfig] = None):
        super().__init__(n_users, n_items, n_tags, config)
        self._con: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        super().prepare(dataset, split)
        user_tags = dataset.user_tag_lists(split.train)
        self._con = consistency_weights(user_tags, dataset.relations,
                                        self.n_users, eta=self.config.eta)
        self._refresh_alpha()

    def _refresh_alpha(self) -> None:
        t0 = time.perf_counter()
        if self.config.hyperbolic:
            gr = granularity_weights(self.user_lorentz_points())
        else:
            # Euclidean ablation: distance from the origin in flat space.
            gr = np.linalg.norm(self.user_emb.data, axis=-1)
        self._alpha = personalized_weights(
            self._con, gr,
            use_consistency=self.config.use_consistency,
            use_granularity=self.config.use_granularity,
            normalize=self.config.normalize_weights)
        if obs.enabled():
            # GR tracks how far user embeddings sit from the origin, so
            # these gauges double as a drift monitor for the hyperbolic
            # embedding radius (alongside the manifold clamp counters).
            obs.record_span("refresh_alpha", time.perf_counter() - t0)
            obs.gauge_set("logirec/alpha_mean", float(self._alpha.mean()))
            obs.gauge_set("logirec/alpha_max", float(self._alpha.max()))
            obs.gauge_set("logirec/gr_mean", float(np.mean(gr)))
            obs.gauge_set("logirec/gr_max", float(np.max(gr)))

    def on_epoch_start(self, epoch: int) -> None:
        # GR depends on the moving user embeddings; refresh once per epoch
        # (a detached quantity — no gradient flows through alpha).
        self._refresh_alpha()

    def _rec_weights(self, users: np.ndarray) -> Optional[np.ndarray]:
        if self._alpha is None:
            return None
        return self._alpha[np.asarray(users, dtype=np.int64)]

    # ------------------------------------------------------------------
    # Introspection for case studies (Table V)
    # ------------------------------------------------------------------
    def user_weights(self) -> dict:
        """Current CON / GR / alpha arrays for all users."""
        if self.config.hyperbolic:
            gr = granularity_weights(self.user_lorentz_points())
        else:
            gr = np.linalg.norm(self.user_emb.data, axis=-1)
        return {"con": self._con.copy(), "gr": gr,
                "alpha": self._alpha.copy()}
