"""Extensions beyond the paper's main body.

The conclusion lists *intersection* — a fourth set-theoretic relation —
as future work.  Geometrically, two tags intersect when their enclosing
balls overlap **partially**: neither disjoint (exclusion) nor nested
(hierarchy).  :func:`intersection_loss` implements the corresponding
two-sided hinge, and :func:`classify_relations` provides the inverse
readout — given trained tag balls, label every tag pair with the logical
relation its geometry expresses, which is how "mined" relations are
materialized for inspection (the case studies of Section VI-E).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.losses import TagBalls
from repro.manifolds.hyperplane import enclosing_ball_np
from repro.tensor import Tensor, clamp_min, gather_rows, maximum, norm


def intersection_loss(tag_balls: TagBalls,
                      intersection_pairs: np.ndarray,
                      slack: float = 0.0) -> Tensor:
    """Two-sided hinge making ball pairs *partially* overlap.

    For a pair (i, j) that should intersect (e.g. <Romantic Suspense>
    belongs to both <Romance> and <Mystery>):

    * they must not be disjoint:      ``||o_i - o_j|| < r_i + r_j``
    * neither may contain the other:  ``||o_i - o_j|| > |r_i - r_j|``

    Both constraints relax into hinges; ``slack`` widens the feasible
    band to avoid oscillation exactly at the boundary.
    """
    if len(intersection_pairs) == 0:
        return Tensor(0.0)
    o_all, r_all = tag_balls
    o_i = gather_rows(o_all, intersection_pairs[:, 0])
    o_j = gather_rows(o_all, intersection_pairs[:, 1])
    r_i = gather_rows(r_all, intersection_pairs[:, 0]).reshape(-1)
    r_j = gather_rows(r_all, intersection_pairs[:, 1]).reshape(-1)
    gap = norm(o_i - o_j, axis=-1)
    # Must overlap: gap <= r_i + r_j - slack.
    too_far = clamp_min(gap - (r_i + r_j) + slack, 0.0)
    # Must not nest: gap >= |r_i - r_j| + slack.
    radius_diff = maximum(r_i - r_j, r_j - r_i)
    too_nested = clamp_min(radius_diff - gap + slack, 0.0)
    return (too_far + too_nested).mean()


RELATION_LABELS = ("exclusion", "hierarchy_i_contains_j",
                   "hierarchy_j_contains_i", "intersection")


def classify_pair(o_i: np.ndarray, r_i: float, o_j: np.ndarray,
                  r_j: float) -> str:
    """Label one tag pair by its ball geometry (Lemmas 1-3 inverted)."""
    gap = float(np.linalg.norm(o_i - o_j))
    if r_i + r_j < gap:
        return "exclusion"
    if gap + r_j < r_i:
        return "hierarchy_i_contains_j"
    if gap + r_i < r_j:
        return "hierarchy_j_contains_i"
    return "intersection"


def classify_relations(tag_centers: np.ndarray,
                       pairs: np.ndarray) -> List[str]:
    """Geometric relation label for each tag-id pair.

    ``tag_centers`` are Poincare hyperplane centers (as stored by a
    trained LogiRec model); ``pairs`` is ``(n, 2)`` int.
    """
    o, r = enclosing_ball_np(tag_centers)
    labels = []
    for i, j in pairs:
        labels.append(classify_pair(o[i], float(r[i, 0]),
                                    o[j], float(r[j, 0])))
    return labels


def mined_relation_report(model, dataset) -> Dict[str, object]:
    """Compare extracted vs geometrically mined relations after training.

    For every *extracted-exclusive* pair, reports what relation the
    trained geometry actually expresses, split by whether the pair was
    planted as overlapping (mislabelled) in the synthetic data.  A good
    miner keeps genuine exclusions labelled ``exclusion`` while moving
    mislabelled ones to ``intersection``.
    """
    o, r = model.tag_ball_arrays()
    pairs = dataset.relations.exclusion
    overlap = {frozenset(map(int, p))
               for p in getattr(dataset, "overlapping_pairs", [])}
    rows: List[Tuple[Tuple[int, int], str, bool]] = []
    for i, j in pairs:
        label = classify_pair(o[i], float(r[i, 0]), o[j], float(r[j, 0]))
        rows.append(((int(i), int(j)), label,
                     frozenset((int(i), int(j))) in overlap))
    kept = sum(1 for _, label, is_overlap in rows
               if label == "exclusion" and not is_overlap)
    softened = sum(1 for _, label, is_overlap in rows
                   if label != "exclusion" and is_overlap)
    genuine = sum(1 for _, _, is_overlap in rows if not is_overlap)
    planted = sum(1 for _, _, is_overlap in rows if is_overlap)
    return {
        "rows": rows,
        "kept_genuine_frac": kept / genuine if genuine else 0.0,
        "softened_mislabelled_frac": softened / planted if planted
        else 0.0,
    }
