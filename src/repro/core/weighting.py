"""LogiRec++'s behaviour-driven weighting mechanisms (Section V).

* :func:`tag_frequencies` — normalized tag frequency TF (Eq. 11);
* :func:`consistency_weights` — CON_u from the user's exclusive tag pairs,
  weighted by level (Eq. 12): fewer / lower-level exclusions among a user's
  tags mean more consistent preferences and a CON closer to 1;
* :func:`granularity_weights` — GR_u, the Lorentzian distance of the user
  embedding from the origin (Eq. 13): finer-grained users sit farther out;
* :func:`personalized_weights` — alpha_u = sqrt(CON_u * GR_u) (Eq. 14).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.taxonomy import LogicalRelations


def tag_frequencies(tag_list: np.ndarray) -> Dict[int, float]:
    """Eq. 11: TF(t_i, T_u) = log(|T_{u,i}| + 1) / log(|T_u|).

    ``tag_list`` is the user's tag multiset T_u.  For |T_u| <= 1 the
    denominator degenerates; such users carry no exclusion evidence and
    get an empty frequency map (CON falls back to 1).
    """
    total = len(tag_list)
    if total <= 1:
        return {}
    denom = np.log(total)
    tags, counts = np.unique(tag_list, return_counts=True)
    return {int(t): float(np.log(c + 1.0) / denom)
            for t, c in zip(tags, counts)}


def consistency_weights(user_tag_lists: Dict[int, np.ndarray],
                        relations: LogicalRelations, n_users: int,
                        eta: int = 4) -> np.ndarray:
    """Eq. 12: CON_u for every user.

    CON_u = exp(-sum over exclusive pairs (t_i, t_j) both in T_u of
    TF(t_i) * TF(t_j) * exp(eta - k)), where k is the pair's taxonomy
    level — low-level (abstract) exclusions are penalized harder via
    ``exp(eta - k)``, and the per-pair TF product captures how often the
    user actually touched the conflicting tags.
    """
    con = np.ones(n_users, dtype=np.float64)
    if len(relations.exclusion) == 0:
        return con
    pairs = relations.exclusion
    levels = (relations.exclusion_levels
              if len(relations.exclusion_levels) == len(pairs)
              else np.full(len(pairs), eta, dtype=np.int64))
    level_factor = np.exp(eta - levels.astype(np.float64))
    for u, tag_list in user_tag_lists.items():
        tf = tag_frequencies(tag_list)
        if not tf:
            continue
        present = set(tf)
        penalty = 0.0
        for (t_i, t_j), factor in zip(pairs, level_factor):
            if int(t_i) in present and int(t_j) in present:
                penalty += tf[int(t_i)] * tf[int(t_j)] * factor
        con[u] = np.exp(-penalty)
    return con


def granularity_weights(user_lorentz: np.ndarray) -> np.ndarray:
    """Eq. 13: GR_u = arcosh(-<o, u>_L) = arcosh(u_0), the distance of the
    user's Lorentz embedding from the origin."""
    time = np.maximum(user_lorentz[..., 0], 1.0)
    return np.arccosh(time)


def personalized_weights(con: np.ndarray, gr: np.ndarray,
                         use_consistency: bool = True,
                         use_granularity: bool = True,
                         normalize: bool = True,
                         clip: tuple = (0.3, 3.0)) -> np.ndarray:
    """Eq. 14: alpha_u = sqrt(CON_u * GR_u), with ablation switches.

    ``normalize`` rescales alpha to mean 1 over users so the weighted
    objective (Eq. 15) keeps the same overall loss scale as Eq. 10 — the
    relative emphasis between users, which is what the mechanism is about,
    is unchanged.  ``clip`` bounds the normalized weights: Eq. 12's
    exponential penalty can otherwise drive CON of very diverse users to
    ~e^{-10}, silencing them completely and starving their embeddings of
    gradient; bounding the dynamic range keeps every user trainable while
    preserving the ordering the mechanism is after (and measurably improves
    Recall/NDCG — see the weighting ablation bench).
    """
    con_term = con if use_consistency else np.ones_like(con)
    gr_term = gr if use_granularity else np.ones_like(gr)
    alpha = np.sqrt(np.maximum(con_term * gr_term, 0.0))
    if normalize and alpha.mean() > 0:
        alpha = alpha / alpha.mean()
    if clip is not None:
        alpha = np.clip(alpha, clip[0], clip[1])
        if normalize and alpha.mean() > 0:
            alpha = alpha / alpha.mean()
    return alpha
