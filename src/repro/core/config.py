"""Configuration for LogiRec / LogiRec++."""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.base import TrainConfig


@dataclass
class LogiRecConfig(TrainConfig):
    """Hyperparameters of Eq. 10 / Eq. 15 plus ablation switches.

    Paper-tuned defaults: λ=0.1 (0.1 on Ciao/CD, 1.0 on Clothing/Book),
    margin m=0.1, L=3 graph layers, η=4 taxonomy levels.

    Ablation switches map one-to-one onto Table III's variants:
    ``use_membership`` (w/o L_Mem), ``use_hierarchy`` (w/o L_Hie),
    ``use_exclusion`` (w/o L_Ex), ``n_layers=0`` (w/o HGCN); w/o LRM is
    simply :class:`~repro.core.LogiRec` instead of LogiRecPP; w/o Hyper is
    ``hyperbolic=False`` (all-Euclidean variant).
    """

    lr: float = 0.01           # Adam step size (tangent parameterization)
    lam: float = 1.0           # λ, weight of the logical-relation losses
    n_layers: int = 3          # L, graph convolution depth (0 disables HGCN)
    use_membership: bool = True
    use_hierarchy: bool = True
    use_exclusion: bool = True
    hyperbolic: bool = True    # False = the paper's "w/o Hyper" variant
    # "tangent": Euclidean parameters mapped through expmap0 inside the
    # forward pass, optimized with Adam (the Chami et al. HGCN trick —
    # markedly more stable on small batches).  "manifold": points live on
    # the manifold and are optimized with Riemannian SGD (Section V-C,
    # kept for the optimizer ablation bench).
    parameterization: str = "tangent"
    # LogiRec++ only:
    use_consistency: bool = True   # CON term of alpha (Eq. 12)
    use_granularity: bool = True   # GR term of alpha (Eq. 13)
    normalize_weights: bool = True  # rescale alpha to mean 1 for stability
    eta: int = 4               # η, total taxonomy levels assumed by Eq. 12
