"""The paper's contribution: LogiRec and LogiRec++.

* :mod:`repro.core.losses` — the four objectives: membership (Eq. 3),
  hierarchy (Eq. 4), exclusion (Eq. 5), and the LMNN recommendation loss
  over Lorentzian distances (Eq. 9);
* :mod:`repro.core.hgcn` — the hyperbolic graph convolution (Eq. 6-8);
* :mod:`repro.core.weighting` — consistency CON (Eq. 11-12), granularity
  GR (Eq. 13), and the personalized weight alpha (Eq. 14);
* :mod:`repro.core.logirec` — LogiRec (objective Eq. 10) with ablation
  switches, and LogiRecPP (objective Eq. 15).
"""

from repro.core.config import LogiRecConfig
from repro.core.losses import (
    exclusion_loss,
    hierarchy_loss,
    membership_loss,
    recommendation_loss,
)
from repro.core.hgcn import hyperbolic_gcn, euclidean_gcn
from repro.core.weighting import (
    consistency_weights,
    granularity_weights,
    personalized_weights,
    tag_frequencies,
)
from repro.core.extensions import (
    classify_relations,
    intersection_loss,
    mined_relation_report,
)
from repro.core.logirec import LogiRec
from repro.core.logirec_pp import LogiRecPP

__all__ = [
    "LogiRecConfig",
    "membership_loss",
    "hierarchy_loss",
    "exclusion_loss",
    "recommendation_loss",
    "hyperbolic_gcn",
    "euclidean_gcn",
    "tag_frequencies",
    "consistency_weights",
    "granularity_weights",
    "personalized_weights",
    "LogiRec",
    "LogiRecPP",
    "intersection_loss",
    "classify_relations",
    "mined_relation_report",
]
