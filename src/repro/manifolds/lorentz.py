"""The Lorentz (hyperboloid) model ``H^d``.

Points are ``x in R^{d+1}`` with Lorentzian inner product
``<x, x>_L = -x0^2 + sum_i xi^2 = -1`` and ``x0 > 0``.

Implements the Lorentzian inner product and distance (Section III-A), the
logarithmic/exponential maps at the origin used by the hyperbolic GCN
(Eq. 6 and Eq. 8), the exponential map at an arbitrary point used by
Riemannian SGD (Eq. 18), the hyperboloid projection, and the Euclidean-to-
Riemannian gradient conversion (Eq. 16 in spirit; we use the exact
hyperboloid tangent projection ``h -> J h + <x, J h>_L x``).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.manifolds.base import Manifold
from repro.tensor import (Tensor, arcosh, cat, clamp, clamp_min, cosh, norm,
                          sinh, sqrt)
from repro.tensor import backend as _be

_MIN_NORM = 1e-15
_MAX_TANGENT_NORM = 10.0   # per-step / per-map tangent length bound
_MAX_DIST = 16.0           # max geodesic distance of any point from origin
_MAX_SPATIAL = float(np.sinh(_MAX_DIST))  # ~4.4e6; keeps inner products finite


def _origin(dim_plus_one: int) -> np.ndarray:
    o = np.zeros(dim_plus_one)
    o[0] = 1.0
    return o


class Lorentz(Manifold):
    """Hyperboloid model with curvature -1.

    ``d`` below always refers to the *manifold* dimension; ambient vectors
    have ``d + 1`` coordinates.
    """

    name = "lorentz"

    # ------------------------------------------------------------------
    # Differentiable geometry (Tensor in, Tensor out)
    # ------------------------------------------------------------------
    @staticmethod
    def inner(x: Tensor, y: Tensor, keepdims: bool = False) -> Tensor:
        """Lorentzian scalar product ``<x, y>_L = -x0 y0 + sum_i xi yi``."""
        prod = x * y
        spatial = prod[..., 1:].sum(axis=-1, keepdims=keepdims)
        time = prod[..., 0:1].sum(axis=-1, keepdims=keepdims)
        return spatial - time

    @staticmethod
    def distance(x: Tensor, y: Tensor) -> Tensor:
        """Lorentzian distance ``arcosh(-<x, y>_L)`` (Eq. 9's metric)."""
        return _be.kernel("lorentz.distance")(x, y)

    @staticmethod
    def sqdist(x: Tensor, y: Tensor) -> Tensor:
        """Squared Lorentzian distance ``||x - y||_L^2 = -2 - 2 <x, y>_L``.

        A smooth, monotonically increasing surrogate of the geodesic
        distance (``= 2 (cosh d - 1)``), introduced by Law et al. (2019)
        and used by HGCF: unlike ``arcosh``, its gradient stays bounded as
        two points approach, which is what makes margin-ranking training
        on the hyperboloid stable.  Ranking losses in this repo use it;
        scoring may use either (they induce the same ranking).
        """
        return _be.kernel("lorentz.sqdist")(x, y)

    @staticmethod
    def tangent_norm(v: Tensor) -> Tensor:
        """``||v||_L = sqrt(<v, v>_L)`` for tangent vectors (non-negative).

        Tangent vectors at hyperboloid points have non-negative Lorentzian
        square norm; clamping guards against float round-off below zero.
        """
        return sqrt(clamp_min(Lorentz.inner(v, v), 0.0))

    @staticmethod
    def logmap0(x: Tensor) -> Tensor:
        """Logarithmic map at the origin ``o = (1, 0, ..., 0)`` (Eq. 6).

        log_o(x) = arcosh(-<o, x>_L) * (x + <o, x>_L o) / ||x + <o, x>_L o||_L
        """
        return _be.kernel("lorentz.logmap0")(x)

    @staticmethod
    def expmap0(v: Tensor) -> Tensor:
        """Exponential map at the origin (Eq. 8).

        exp_o(v) = cosh(||v||_L) o + sinh(||v||_L) v / ||v||_L

        ``v`` is tangent at the origin (time coordinate 0), so
        ``||v||_L`` equals the Euclidean norm of its spatial part.
        """
        return _be.kernel("lorentz.expmap0")(v)

    @staticmethod
    def dist_to_origin(x: Tensor) -> Tensor:
        """``GR`` quantity of Eq. 13: ``arcosh(-<o, x>_L) = arcosh(x0)``."""
        return arcosh(clamp_min(x[..., 0], 1.0))

    # ------------------------------------------------------------------
    # Optimizer-side geometry (numpy in, numpy out)
    # ------------------------------------------------------------------
    @staticmethod
    def inner_np(x: np.ndarray, y: np.ndarray,
                 keepdims: bool = False) -> np.ndarray:
        prod = x * y
        return (np.sum(prod[..., 1:], axis=-1, keepdims=keepdims)
                - np.sum(prod[..., 0:1], axis=-1, keepdims=keepdims))

    def project(self, x: np.ndarray) -> np.ndarray:
        """Re-project onto the hyperboloid: ``x0 = sqrt(1 + ||x_spatial||^2)``.

        Also clamps points to geodesic distance ``_MAX_DIST`` from the
        origin: runaway embeddings otherwise overflow float64 within a few
        exp-map retractions (cosh compounds multiplicatively).
        """
        spatial = x[..., 1:]
        nrm = np.linalg.norm(spatial, axis=-1, keepdims=True)
        clamped = nrm > _MAX_SPATIAL
        if obs.enabled():
            n_clamped = int(np.count_nonzero(clamped))
            if n_clamped:
                obs.count("manifold/lorentz/dist_clamped", n_clamped)
            obs.gauge_set("manifold/lorentz/max_spatial_norm",
                          float(nrm.max()) if nrm.size else 0.0)
        factor = np.where(clamped,
                          _MAX_SPATIAL / np.maximum(nrm, _MIN_NORM), 1.0)
        spatial = spatial * factor
        time = np.sqrt(1.0 + np.sum(spatial * spatial, axis=-1, keepdims=True))
        return np.concatenate([time, spatial], axis=-1)

    def egrad2rgrad(self, x: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Riemannian gradient via metric inverse + tangent projection.

        h = J grad  with  J = diag(-1, 1, ..., 1)   (metric inverse)
        rgrad = h + <x, h>_L x                       (tangent projection)

        This is the exact hyperboloid counterpart of the paper's Eq. 16.
        """
        h = grad.copy()
        h[..., 0] = -h[..., 0]
        coef = self.inner_np(x, h, keepdims=True)
        return h + coef * x

    def proj_tangent(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Orthogonal (w.r.t. <.,.>_L) projection onto T_x H^d:
        ``v + <x, v>_L x``."""
        coef = self.inner_np(x, v, keepdims=True)
        return v + coef * x

    def retract(self, x: np.ndarray, tangent: np.ndarray) -> np.ndarray:
        """Exponential map at ``x`` (Eq. 18), then hyperboloid re-projection."""
        sq = self.inner_np(tangent, tangent, keepdims=True)
        nrm = np.sqrt(np.maximum(sq, 0.0))
        nrm_c = np.minimum(nrm, _MAX_TANGENT_NORM)
        if obs.enabled():
            n_clipped = int(np.count_nonzero(nrm > _MAX_TANGENT_NORM))
            if n_clipped:
                obs.count("manifold/lorentz/tangent_clipped", n_clipped)
        safe = np.maximum(nrm, _MIN_NORM)
        out = np.cosh(nrm_c) * x + np.sinh(nrm_c) * tangent / safe
        return self.project(out)

    def random(self, shape: tuple, rng: np.random.Generator,
               scale: float = 0.1) -> np.ndarray:
        """Sample by lifting Gaussian spatial coordinates onto the sheet.

        ``shape`` is the ambient shape ``(..., d + 1)``.
        """
        spatial = rng.normal(0.0, scale, size=shape[:-1] + (shape[-1] - 1,))
        time = np.sqrt(1.0 + np.sum(spatial * spatial, axis=-1, keepdims=True))
        return np.concatenate([time, spatial], axis=-1)

    @staticmethod
    def origin(dim: int) -> np.ndarray:
        """The hyperboloid origin ``(1, 0, ..., 0)`` with ambient dim+1."""
        return _origin(dim + 1)


def lorentz_ranking_scores(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``-d_H(u_b, v_i)`` score matrix for a user batch vs. all items.

    The Lorentzian inner product decomposes into one matvec on the spatial
    coordinates plus an outer product of the time coordinates, which is
    what the serving index precomputes.  Both the live models (HGCF,
    hyperbolic LogiRec) and :class:`repro.serve.RetrievalIndex` score
    through this one function, so index-backed scores are bit-identical
    to the models'.  The ``arccosh`` clamp floors every inner product at
    ``1 + 1e-12``: near-coincident pairs collapse to exact score ties,
    which the shared top-K helper then breaks by ascending item id.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    inner = u[:, 1:] @ v[:, 1:].T - np.outer(u[:, 0], v[:, 0])
    return -np.arccosh(np.maximum(-inner, 1.0 + 1e-12))


# ----------------------------------------------------------------------
# Reference kernel bodies — the original composed-op implementations,
# registered so the backend dispatcher can fall back to them.  The fast
# variants (hand-derived VJPs) live in repro.tensor.fused.
# ----------------------------------------------------------------------
def _distance_reference(x: Tensor, y: Tensor) -> Tensor:
    return arcosh(-Lorentz.inner(x, y))


def _sqdist_reference(x: Tensor, y: Tensor) -> Tensor:
    return -2.0 - 2.0 * Lorentz.inner(x, y)


def _logmap0_reference(x: Tensor) -> Tensor:
    # <o, x>_L = -x0, so x + <o, x>_L o zeroes the time coordinate.
    x0 = x[..., 0:1]
    spatial = x[..., 1:]
    dist = arcosh(clamp_min(x0, 1.0))  # arcosh(-<o,x>_L) = arcosh(x0)
    spatial_norm = norm(spatial, axis=-1, keepdims=True)
    safe = clamp_min(spatial_norm, _MIN_NORM)
    scaled = dist * spatial / safe
    zeros = Tensor(np.zeros(x.data[..., 0:1].shape))
    return cat([zeros, scaled], axis=-1)


def _expmap0_reference(v: Tensor) -> Tensor:
    spatial = v[..., 1:]
    v_norm = norm(spatial, axis=-1, keepdims=True)
    # Clip to avoid cosh overflow for runaway embeddings during training.
    v_norm_c = clamp(v_norm, 0.0, _MAX_TANGENT_NORM)
    safe = clamp_min(v_norm, _MIN_NORM)
    time = cosh(v_norm_c)
    space = sinh(v_norm_c) * spatial / safe
    return cat([time, space], axis=-1)


_be.register_kernel("lorentz.distance", reference=_distance_reference)
_be.register_kernel("lorentz.sqdist", reference=_sqdist_reference)
_be.register_kernel("lorentz.logmap0", reference=_logmap0_reference)
_be.register_kernel("lorentz.expmap0", reference=_expmap0_reference)
