"""The Poincare ball model ``P^d = {x in R^d : ||x|| < 1}``.

Implements the distance metric of Section III-A, Mobius addition and the
Mobius exponential map of Eq. (17), projection to the open ball, and the
conformal Riemannian gradient rescaling used by Riemannian SGD.

Differentiable (Tensor) methods are used inside model forward passes;
numpy methods (``project``, ``egrad2rgrad``, ``retract``) are used by the
optimizer.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.manifolds.base import Manifold
from repro.tensor import Tensor, arcosh, clamp_min, norm, tanh
from repro.tensor import backend as _be

# Maximum norm kept strictly inside the open unit ball.  1e-5 of slack keeps
# the conformal factor (1 - ||x||^2) comfortably above float64 noise.
_BOUNDARY_EPS = 1e-5
_MIN_NORM = 1e-15


class PoincareBall(Manifold):
    """Poincare ball with curvature -1."""

    name = "poincare"

    # ------------------------------------------------------------------
    # Differentiable geometry (Tensor in, Tensor out)
    # ------------------------------------------------------------------
    @staticmethod
    def distance(x: Tensor, y: Tensor) -> Tensor:
        """Poincare distance ``d_P`` (Section III-A), batched on last axis.

        d_P(x, y) = arcosh(1 + 2 ||x-y||^2 / ((1-||x||^2)(1-||y||^2))).
        """
        return _be.kernel("poincare.distance")(x, y)

    @staticmethod
    def mobius_add(x: Tensor, y: Tensor) -> Tensor:
        """Mobius addition ``x (+) y`` (gyro-vector addition, Eq. 17)."""
        return _be.kernel("poincare.mobius_add")(x, y)

    @staticmethod
    def expmap(x: Tensor, v: Tensor) -> Tensor:
        """Mobius exponential map ``x (+) tanh(lambda_x ||v|| / 2) v/||v||``.

        The paper's Eq. (17) writes ``tanh(||v||/2)`` without the conformal
        factor ``lambda_x = 2 / (1 - ||x||^2)``; we include it (the full
        Ganea et al. exp map).  Without it, points near the boundary —
        where the Riemannian gradient has a tiny Euclidean norm by design —
        take vanishing steps and freeze, which we observed directly when
        optimizing Poincare distances.
        """
        lam = 2.0 / clamp_min(1.0 - (x * x).sum(axis=-1, keepdims=True),
                              _MIN_NORM)
        v_norm = norm(v, axis=-1, keepdims=True)
        safe = clamp_min(v_norm, _MIN_NORM)
        y = tanh(lam * v_norm * 0.5) * (v / safe)
        return PoincareBall.mobius_add(x, y)

    @staticmethod
    def expmap0(v: Tensor) -> Tensor:
        """Exponential map at the origin: ``tanh(||v||) v/||v||``."""
        return _be.kernel("poincare.expmap0")(v)

    @staticmethod
    def dist_to_origin(x: Tensor) -> Tensor:
        """``d_P(x, 0) = 2 artanh(||x||)``, used for granularity analyses."""
        x_norm = norm(x, axis=-1)
        x_sq = (x * x).sum(axis=-1)
        denom = clamp_min(1.0 - x_sq, _MIN_NORM)
        return arcosh(1.0 + 2.0 * x_sq / denom)

    # ------------------------------------------------------------------
    # Optimizer-side geometry (numpy in, numpy out)
    # ------------------------------------------------------------------
    def project(self, x: np.ndarray) -> np.ndarray:
        """Clip points to the open ball of radius ``1 - _BOUNDARY_EPS``.

        Telemetry counts every clipped point: boundary saturation is the
        canonical Poincare failure mode (the conformal factor collapses
        and training freezes), so a rising clamp rate is the health
        signal to watch.
        """
        norms = np.linalg.norm(x, axis=-1, keepdims=True)
        max_norm = 1.0 - _BOUNDARY_EPS
        clamped = norms > max_norm
        if obs.enabled():
            n_clamped = int(np.count_nonzero(clamped))
            if n_clamped:
                obs.count("manifold/poincare/boundary_clamped", n_clamped)
            obs.gauge_set("manifold/poincare/max_norm",
                          float(norms.max()) if norms.size else 0.0)
        factor = np.where(clamped,
                          max_norm / np.maximum(norms, _MIN_NORM), 1.0)
        return x * factor

    def egrad2rgrad(self, x: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Rescale by the inverse metric: ``((1-||x||^2)/2)^2 * grad``."""
        sq_norm = np.sum(x * x, axis=-1, keepdims=True)
        factor = ((1.0 - sq_norm) / 2.0) ** 2
        return factor * grad

    def retract(self, x: np.ndarray, tangent: np.ndarray) -> np.ndarray:
        """Mobius exp-map retraction (numpy mirror of :meth:`expmap`,
        including the conformal factor — see the docstring there)."""
        lam = 2.0 / np.maximum(
            1.0 - np.sum(x * x, axis=-1, keepdims=True), _MIN_NORM)
        v_norm = np.linalg.norm(tangent, axis=-1, keepdims=True)
        safe = np.maximum(v_norm, _MIN_NORM)
        arg = lam * v_norm * 0.5
        if obs.enabled():
            n_clipped = int(np.count_nonzero(arg > 32.0))
            if n_clipped:
                obs.count("manifold/poincare/tangent_clipped", n_clipped)
        y = np.tanh(np.minimum(arg, 32.0)) * tangent / safe
        return self.project(self._mobius_add_np(x, y))

    @staticmethod
    def _mobius_add_np(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        xy = np.sum(x * y, axis=-1, keepdims=True)
        x_sq = np.sum(x * x, axis=-1, keepdims=True)
        y_sq = np.sum(y * y, axis=-1, keepdims=True)
        numerator = (1.0 + 2.0 * xy + y_sq) * x + (1.0 - x_sq) * y
        denominator = np.maximum(1.0 + 2.0 * xy + x_sq * y_sq, _MIN_NORM)
        return numerator / denominator

    def random(self, shape: tuple, rng: np.random.Generator,
               scale: float = 0.1) -> np.ndarray:
        """Gaussian points near the origin, projected into the ball."""
        return self.project(rng.normal(0.0, scale, size=shape))


def poincare_ranking_scores(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``-d_P(u_b, v_i)`` score matrix for a user batch vs. all items.

    Shared between :meth:`repro.models.HyperML.score_users` and the
    serving index so precomputed retrieval stays bit-identical to the
    live model; the item-side ``||v||^2`` terms are what the index
    precomputes.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    diff_sq = (np.sum(u * u, axis=1, keepdims=True) - 2.0 * u @ v.T
               + np.sum(v * v, axis=1))
    denom = np.outer(1.0 - np.sum(u * u, axis=1),
                     1.0 - np.sum(v * v, axis=1))
    arg = 1.0 + 2.0 * diff_sq / np.maximum(denom, 1e-15)
    return -np.arccosh(np.maximum(arg, 1.0 + 1e-15))


# ----------------------------------------------------------------------
# Reference kernel bodies (original composed-op code); fast variants are
# the hand-derived VJPs in repro.tensor.fused.
# ----------------------------------------------------------------------
def _distance_reference(x: Tensor, y: Tensor) -> Tensor:
    diff_sq = ((x - y) ** 2).sum(axis=-1)
    x_sq = (x * x).sum(axis=-1)
    y_sq = (y * y).sum(axis=-1)
    denom = clamp_min((1.0 - x_sq) * (1.0 - y_sq), _MIN_NORM)
    return arcosh(1.0 + 2.0 * diff_sq / denom)


def _mobius_add_reference(x: Tensor, y: Tensor) -> Tensor:
    xy = (x * y).sum(axis=-1, keepdims=True)
    x_sq = (x * x).sum(axis=-1, keepdims=True)
    y_sq = (y * y).sum(axis=-1, keepdims=True)
    numerator = (1.0 + 2.0 * xy + y_sq) * x + (1.0 - x_sq) * y
    denominator = clamp_min(1.0 + 2.0 * xy + x_sq * y_sq, _MIN_NORM)
    return numerator / denominator


def _expmap0_reference(v: Tensor) -> Tensor:
    v_norm = norm(v, axis=-1, keepdims=True)
    safe = clamp_min(v_norm, _MIN_NORM)
    return tanh(v_norm) * (v / safe)


_be.register_kernel("poincare.distance", reference=_distance_reference)
_be.register_kernel("poincare.mobius_add", reference=_mobius_add_reference)
_be.register_kernel("poincare.expmap0", reference=_expmap0_reference)
