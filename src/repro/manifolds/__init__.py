"""Hyperbolic manifolds: the Poincare ball and the Lorentz (hyperboloid) model.

The paper exploits the individual strengths of both models (Section III):

* the **Poincare ball** hosts the logical-relation machinery — tags are
  Poincare hyperplanes (equivalently, their enclosing d-balls) and items are
  points, so membership / hierarchy / exclusion become geometric insideness /
  containment / disjointness (:mod:`repro.manifolds.hyperplane`);
* the **Lorentz model** hosts the recommendation objective, because its
  exponential/logarithmic maps have stable closed forms well suited to
  Riemannian SGD (:mod:`repro.manifolds.lorentz`).

Both are connected by the diffeomorphisms of Eq. (1)/(2)
(:mod:`repro.manifolds.maps`).
"""

from repro.manifolds.base import (Manifold, neg_dist_scores,
                                  neg_sq_dist_scores)
from repro.manifolds.poincare import PoincareBall, poincare_ranking_scores
from repro.manifolds.lorentz import Lorentz, lorentz_ranking_scores
from repro.manifolds.maps import lorentz_to_poincare, poincare_to_lorentz
from repro.manifolds.geodesic import (
    einstein_midpoint,
    frechet_mean,
    lorentz_geodesic,
    lorentz_parallel_transport,
)
from repro.manifolds.hyperplane import (
    enclosing_ball,
    ball_contains_ball,
    ball_contains_point,
    balls_disjoint,
)

__all__ = [
    "Manifold",
    "PoincareBall",
    "Lorentz",
    "lorentz_to_poincare",
    "poincare_to_lorentz",
    "enclosing_ball",
    "ball_contains_ball",
    "ball_contains_point",
    "balls_disjoint",
    "lorentz_geodesic",
    "lorentz_parallel_transport",
    "frechet_mean",
    "einstein_midpoint",
    "lorentz_ranking_scores",
    "poincare_ranking_scores",
    "neg_dist_scores",
    "neg_sq_dist_scores",
]
