"""Abstract manifold interface used by the Riemannian optimizer.

A manifold supplies four operations the optimizer needs, all working on raw
numpy arrays (optimizer-side code never builds autograd graphs):

* :meth:`Manifold.project` — map an arbitrary ambient point back onto the
  manifold (used after updates and at initialization);
* :meth:`Manifold.egrad2rgrad` — convert a Euclidean gradient into the
  Riemannian gradient at a point;
* :meth:`Manifold.retract` — move from a point along a tangent vector
  (the exponential map or a first-order approximation of it);
* :meth:`Manifold.random` — sample points for initialization.

Model-side (differentiable) geometry lives on the concrete classes as
Tensor-valued methods.
"""

from __future__ import annotations

import abc

import numpy as np


class Manifold(abc.ABC):
    """Base class for Riemannian manifolds."""

    name: str = "manifold"

    @abc.abstractmethod
    def project(self, x: np.ndarray) -> np.ndarray:
        """Project ambient-space points onto the manifold (numpy)."""

    @abc.abstractmethod
    def egrad2rgrad(self, x: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Convert a Euclidean gradient at ``x`` to a Riemannian one."""

    @abc.abstractmethod
    def retract(self, x: np.ndarray, tangent: np.ndarray) -> np.ndarray:
        """Move from ``x`` along ``tangent`` and re-project to the manifold."""

    @abc.abstractmethod
    def random(self, shape: tuple, rng: np.random.Generator,
               scale: float = 0.1) -> np.ndarray:
        """Sample initial points near the origin of the manifold."""

    def proj_tangent(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Project an ambient vector onto the tangent space at ``x``.

        Identity for manifolds whose tangent space is the full ambient
        space (Euclidean, the open Poincare ball); overridden where the
        manifold is a genuine submanifold (the Lorentz hyperboloid).
        """
        return v

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def neg_sq_dist_scores(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``-||u_b - v_i||^2`` score matrix for a user batch vs. all items.

    The single ranking-score expression shared by the metric-learning
    models and the serving index: both sides call this function, so the
    precomputed-index scores are bit-identical to the live models'.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    sq = (np.sum(u * u, axis=1, keepdims=True) - 2.0 * u @ v.T
          + np.sum(v * v, axis=1))
    return -sq


def neg_dist_scores(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``-||u_b - v_i||`` score matrix (TransC, Euclidean LogiRec)."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    sq = (np.sum(u * u, axis=1, keepdims=True) - 2.0 * u @ v.T
          + np.sum(v * v, axis=1))
    return -np.sqrt(np.maximum(sq, 0.0))


class Euclidean(Manifold):
    """Trivial manifold: flat space (standard SGD behaviour)."""

    name = "euclidean"

    def project(self, x: np.ndarray) -> np.ndarray:
        return x

    def egrad2rgrad(self, x: np.ndarray, grad: np.ndarray) -> np.ndarray:
        return grad

    def retract(self, x: np.ndarray, tangent: np.ndarray) -> np.ndarray:
        return x + tangent

    def random(self, shape: tuple, rng: np.random.Generator,
               scale: float = 0.1) -> np.ndarray:
        return rng.normal(0.0, scale, size=shape)
