"""Poincare hyperplanes and their enclosing d-balls (Section III-A).

A Poincare hyperplane is uniquely defined by its center point ``c`` (the
point of the hyperplane closest to the origin, ``0 < ||c|| < 1``).  Its
enclosing Euclidean d-ball ``B^d(o_c, r_c)`` has

    o_c = (1 + ||c||^2) / (2 ||c||) * c,      r_c = (1 - ||c||^2) / (2 ||c||).

LogiRec represents every tag by such a center ``c`` and expresses the three
logical relations as geometric predicates on the enclosing balls
(Lemmas 1-3), relaxed to hinge losses in :mod:`repro.core.losses`.

Note ``o_c`` lies *outside* the unit ball (``||o_c|| > 1``): the d-ball's
boundary intersects the Poincare ball perpendicularly, and the part inside
the ball is the hyperplane's convex region.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.tensor import Tensor, clamp, clamp_min, norm

# Tag centers are kept in a norm annulus away from both singular points:
# r_c explodes as ||c|| -> 0 and the region degenerates as ||c|| -> 1.
CENTER_MIN_NORM = 1e-3
CENTER_MAX_NORM = 1.0 - 1e-3


def enclosing_ball(center: Tensor) -> Tuple[Tensor, Tensor]:
    """Differentiable ``(o_c, r_c)`` of the hyperplane with center ``c``.

    Parameters
    ----------
    center:
        Tensor of shape ``(..., d)`` with norms inside
        ``(CENTER_MIN_NORM, CENTER_MAX_NORM)``.

    Returns
    -------
    (o, r):
        ``o`` has shape ``(..., d)``; ``r`` has shape ``(..., 1)``.
    """
    raw_norm = clamp_min(norm(center, axis=-1, keepdims=True),
                         CENTER_MIN_NORM)
    unit = center / raw_norm
    c_norm = clamp(raw_norm, CENTER_MIN_NORM, CENTER_MAX_NORM)
    sq = c_norm * c_norm
    # ||o_c|| = (1 + ||c||^2) / (2 ||c||) along c's direction; together with
    # r_c this satisfies the perpendicular-intersection identity
    # ||o_c||^2 = 1 + r_c^2 (tested property).
    o = (1.0 + sq) / (2.0 * c_norm) * unit
    r = (1.0 - sq) / (2.0 * c_norm)
    return o, r


def enclosing_ball_np(center: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Numpy mirror of :func:`enclosing_ball` for analysis/extraction code."""
    raw_norm = np.maximum(np.linalg.norm(center, axis=-1, keepdims=True),
                          CENTER_MIN_NORM)
    unit = center / raw_norm
    c_norm = np.clip(raw_norm, CENTER_MIN_NORM, CENTER_MAX_NORM)
    sq = c_norm * c_norm
    o = (1.0 + sq) / (2.0 * c_norm) * unit
    r = (1.0 - sq) / (2.0 * c_norm)
    return o, r


# ----------------------------------------------------------------------
# Geometric predicates (Lemmas 1-3) — boolean, numpy, used in tests and
# relation-mining readout.
# ----------------------------------------------------------------------
def ball_contains_point(o: np.ndarray, r: np.ndarray,
                        v: np.ndarray) -> np.ndarray:
    """Lemma 1 (membership): ``||v - o|| < r``."""
    return np.linalg.norm(v - o, axis=-1) < np.squeeze(r, axis=-1)


def ball_contains_ball(o_outer: np.ndarray, r_outer: np.ndarray,
                       o_inner: np.ndarray, r_inner: np.ndarray) -> np.ndarray:
    """Lemma 2 (hierarchy): outer contains inner iff
    ``||o_outer - o_inner|| + r_inner < r_outer``."""
    gap = np.linalg.norm(o_outer - o_inner, axis=-1)
    return gap + np.squeeze(r_inner, axis=-1) < np.squeeze(r_outer, axis=-1)


def balls_disjoint(o_i: np.ndarray, r_i: np.ndarray,
                   o_j: np.ndarray, r_j: np.ndarray) -> np.ndarray:
    """Lemma 3 (exclusion): disjoint iff ``r_i + r_j < ||o_i - o_j||``."""
    gap = np.linalg.norm(o_i - o_j, axis=-1)
    return np.squeeze(r_i, axis=-1) + np.squeeze(r_j, axis=-1) < gap
