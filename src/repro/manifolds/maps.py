"""Diffeomorphisms between the Poincare and Lorentz models (Eq. 1 / Eq. 2).

These are the glue that lets LogiRec run its logic losses in the Poincare
ball while optimizing recommendation in the Lorentz model: item embeddings
live in ``P^d`` and are mapped to ``H^d`` with :func:`poincare_to_lorentz`
before entering the hyperbolic GCN.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, cat, clamp_min
from repro.tensor import backend as _be

_MIN_NORM = 1e-15


def lorentz_to_poincare(x: Tensor) -> Tensor:
    """Map ``H^d -> P^d`` via Eq. (1): ``p(x) = (x1, ..., xd) / (x0 + 1)``."""
    time = x[..., 0:1]
    spatial = x[..., 1:]
    return spatial / clamp_min(time + 1.0, _MIN_NORM)


def poincare_to_lorentz(x: Tensor) -> Tensor:
    """Map ``P^d -> H^d`` via Eq. (2).

    p^{-1}(x) = (1 + ||x||^2, 2 x1, ..., 2 xd) / (1 - ||x||^2)
    """
    return _be.kernel("maps.poincare_to_lorentz")(x)


def _poincare_to_lorentz_reference(x: Tensor) -> Tensor:
    sq_norm = (x * x).sum(axis=-1, keepdims=True)
    denom = clamp_min(1.0 - sq_norm, _MIN_NORM)
    time = (1.0 + sq_norm) / denom
    spatial = (2.0 * x) / denom
    return cat([time, spatial], axis=-1)


_be.register_kernel("maps.poincare_to_lorentz",
                    reference=_poincare_to_lorentz_reference)


def lorentz_to_poincare_np(x: np.ndarray) -> np.ndarray:
    """Numpy mirror of :func:`lorentz_to_poincare` for analysis code."""
    return x[..., 1:] / np.maximum(x[..., 0:1] + 1.0, _MIN_NORM)


def poincare_to_lorentz_np(x: np.ndarray) -> np.ndarray:
    """Numpy mirror of :func:`poincare_to_lorentz` for analysis code."""
    sq_norm = np.sum(x * x, axis=-1, keepdims=True)
    denom = np.maximum(1.0 - sq_norm, _MIN_NORM)
    return np.concatenate([(1.0 + sq_norm) / denom, 2.0 * x / denom], axis=-1)
