"""Geodesic utilities on the hyperbolic manifolds.

Numpy-only analysis helpers (no autograd):

* :func:`lorentz_geodesic` — the unit-speed geodesic between two
  hyperboloid points, evaluated at fractions ``t``;
* :func:`lorentz_parallel_transport` — transport of tangent vectors along
  geodesics (used when composing maps away from the origin);
* :func:`frechet_mean` — the Karcher/Frechet mean of a point cloud on the
  hyperboloid via fixed-point iteration in tangent space (the hyperbolic
  centroid used by cluster-separation analyses);
* :func:`einstein_midpoint` — the weighted Einstein midpoint in the Klein
  model, the aggregation the related work (Chami et al.) uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.manifolds.lorentz import Lorentz

_MIN = 1e-15


def lorentz_geodesic(x: np.ndarray, y: np.ndarray,
                     t: np.ndarray) -> np.ndarray:
    """Points along the geodesic from ``x`` to ``y`` at fractions ``t``.

    gamma(t) = (sinh((1-t) d) x + sinh(t d) y) / sinh(d), with
    d = d_H(x, y).  Returns shape ``(len(t), dim)`` for single points.
    """
    x = np.atleast_2d(x)
    y = np.atleast_2d(y)
    inner = Lorentz.inner_np(x, y)
    d = np.arccosh(np.maximum(-inner, 1.0 + 1e-15))
    t = np.asarray(t, dtype=np.float64).reshape(-1, 1)
    sinh_d = np.maximum(np.sinh(d), _MIN)
    out = (np.sinh((1.0 - t) * d) * x + np.sinh(t * d) * y) / sinh_d
    # Re-project to absorb float drift.
    return Lorentz().project(out)


def lorentz_parallel_transport(x: np.ndarray, y: np.ndarray,
                               v: np.ndarray) -> np.ndarray:
    """Parallel-transport tangent vector ``v`` at ``x`` to ``y``.

    PT_{x->y}(v) = v + <y, v>_L / (1 - <x, y>_L) * (x + y)
    """
    inner_xy = Lorentz.inner_np(x, y, keepdims=True)
    inner_yv = Lorentz.inner_np(y, v, keepdims=True)
    denom = np.maximum(1.0 - inner_xy, _MIN)
    return v + inner_yv / denom * (x + y)


def frechet_mean(points: np.ndarray, weights: Optional[np.ndarray] = None,
                 max_iter: int = 50, tol: float = 1e-9) -> np.ndarray:
    """Weighted Frechet mean of hyperboloid points.

    Fixed-point iteration: map all points to the tangent space at the
    current estimate, average, exp back; converges quickly because
    hyperbolic space has non-positive curvature (unique mean).
    """
    points = np.atleast_2d(points)
    n = len(points)
    if weights is None:
        weights = np.full(n, 1.0 / n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights / weights.sum()
    manifold = Lorentz()
    mean = manifold.project(
        np.sum(weights[:, None] * points, axis=0, keepdims=True))
    for _ in range(max_iter):
        # log_mean(points): tangent vectors at the current mean.
        inner = Lorentz.inner_np(mean, points, keepdims=True)
        d = np.arccosh(np.maximum(-inner, 1.0 + 1e-15))
        proj = points + inner * mean
        norms = np.sqrt(np.maximum(
            Lorentz.inner_np(proj, proj, keepdims=True), _MIN))
        tangents = d * proj / norms
        step = np.sum(weights[:, None] * tangents, axis=0, keepdims=True)
        step_norm = float(np.sqrt(max(
            Lorentz.inner_np(step, step)[0], 0.0)))
        mean = manifold.retract(mean, step)
        if step_norm < tol:
            break
    return mean[0]


def einstein_midpoint(points: np.ndarray,
                      weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Weighted Einstein midpoint of hyperboloid points.

    Computed in the Klein model: k_i = x_spatial / x_0, with Lorentz
    factors gamma_i = x_0; midpoint = sum(w gamma k) / sum(w gamma),
    lifted back to the hyperboloid.
    """
    points = np.atleast_2d(points)
    n = len(points)
    if weights is None:
        weights = np.ones(n)
    weights = np.asarray(weights, dtype=np.float64)
    gamma = points[:, 0:1]
    klein = points[:, 1:] / np.maximum(gamma, _MIN)
    coef = weights[:, None] * gamma
    mid_klein = np.sum(coef * klein, axis=0) / np.maximum(
        np.sum(coef), _MIN)
    # Lift Klein -> Lorentz: x = (1, k) / sqrt(1 - ||k||^2).
    sq = float(np.sum(mid_klein * mid_klein))
    sq = min(sq, 1.0 - 1e-12)
    factor = 1.0 / np.sqrt(1.0 - sq)
    return np.concatenate([[factor], factor * mid_klein])
