"""Optimizers: Euclidean SGD/Adam and Riemannian SGD (Section V-C).

:class:`Parameter` couples a :class:`~repro.tensor.Tensor` with the manifold
it lives on; :class:`RiemannianSGD` converts Euclidean gradients to
Riemannian ones (Eq. 16) and retracts with the manifold's exponential map
(Eq. 17 for Poincare parameters, Eq. 18 for Lorentz parameters).
"""

from repro.optim.parameter import Parameter
from repro.optim.sgd import SGD, Adam
from repro.optim.rsgd import RiemannianSGD

__all__ = ["Parameter", "SGD", "Adam", "RiemannianSGD"]

from repro.optim.radam import RiemannianAdam  # noqa: E402

__all__.append("RiemannianAdam")
