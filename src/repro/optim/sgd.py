"""Euclidean optimizers (used by the Euclidean baselines)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.optim.parameter import Parameter
from repro.tensor import backend as _backend


class Optimizer:
    """Shared bookkeeping: parameter list, zero_grad, gradient clipping."""

    def __init__(self, params: Iterable[Parameter],
                 max_grad_norm: Optional[float] = None):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.max_grad_norm = max_grad_norm

    def zero_grad(self) -> None:
        # Step boundary: lets the fast backend's arena rewind its buffer
        # cursors so this step's activations reuse last step's memory.
        _backend.step_begin()
        for p in self.params:
            p.zero_grad()

    # ------------------------------------------------------------------
    # State round trip (mid-training checkpoint/resume; repro.robust)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Mutable optimizer state: scalars plus per-parameter arrays.

        Values are floats/ints or numpy arrays; the persistence layer
        (``repro.robust.training``) splits them accordingly.  Restoring
        this state into a freshly built optimizer makes its next ``step``
        bit-identical to the never-serialized one — momentum/moment
        buffers would otherwise restart from zero on resume.
        """
        state: Dict[str, object] = {}
        if hasattr(self, "lr"):
            state["lr"] = float(self.lr)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        if "lr" in state and hasattr(self, "lr"):
            self.lr = float(state["lr"])

    @staticmethod
    def _store_arrays(state: Dict[str, object], prefix: str,
                      arrays: List[np.ndarray]) -> None:
        for i, a in enumerate(arrays):
            state[f"{prefix}_{i:03d}"] = a.copy()

    @staticmethod
    def _restore_arrays(state: Dict[str, object], prefix: str,
                        arrays: List[np.ndarray]) -> None:
        for i, a in enumerate(arrays):
            key = f"{prefix}_{i:03d}"
            if key not in state:
                raise ValueError(f"optimizer state is missing {key!r}")
            data = np.asarray(state[key])
            if data.shape != a.shape:
                raise ValueError(
                    f"optimizer state {key!r} has shape {data.shape}, "
                    f"expected {a.shape}")
            a[...] = data

    def _clipped_grad(self, p: Parameter) -> Optional[np.ndarray]:
        if p.grad is None:
            return None
        grad = p.grad
        if self.max_grad_norm is not None:
            nrm = np.linalg.norm(grad)
            if nrm > self.max_grad_norm:
                grad = grad * (self.max_grad_norm / nrm)
        return grad

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0,
                 max_grad_norm: Optional[float] = None):
        super().__init__(params, max_grad_norm)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        self._store_arrays(state, "velocity", self._velocity)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._restore_arrays(state, "velocity", self._velocity)

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            grad = self._clipped_grad(p)
            if grad is None:
                continue
            if self.momentum > 0.0:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data -= self.lr * grad
            p.data[...] = p.manifold.project(p.data)


class Adam(Optimizer):
    """Adam (Kingma & Ba).  Used for NeuMF-style neural baselines."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 max_grad_norm: Optional[float] = None):
        super().__init__(params, max_grad_norm)
        self.lr = float(lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["t"] = int(self._t)
        self._store_arrays(state, "m", self._m)
        self._store_arrays(state, "v", self._v)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._t = int(state.get("t", 0))
        self._restore_arrays(state, "m", self._m)
        self._restore_arrays(state, "v", self._v)

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        backend = _backend.get_backend()
        if backend.arena is not None:
            self._step_inplace(bias1, bias2, backend.arena)
            return
        for p, m, v in zip(self.params, self._m, self._v):
            grad = self._clipped_grad(p)
            if grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.data[...] = p.manifold.project(p.data)

    def _step_inplace(self, bias1: float, bias2: float,
                      arena: "_backend.Arena") -> None:
        """Fast-backend Adam: same update, staged through two persistent
        scratch buffers instead of four fresh temporaries per parameter."""
        for i, (p, m, v) in enumerate(zip(self.params, self._m, self._v)):
            grad = self._clipped_grad(p)
            if grad is None:
                continue
            s1 = arena.scratch(("adam", id(self), i, 0), m.shape, m.dtype)
            s2 = arena.scratch(("adam", id(self), i, 1), m.shape, m.dtype)
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            m *= self.beta1
            m += s1
            np.multiply(grad, 1.0 - self.beta2, out=s1)
            s1 *= grad
            v *= self.beta2
            v += s1
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            s1 += self.eps
            np.divide(m, bias1, out=s2)
            s2 /= s1
            s2 *= self.lr
            p.data -= s2
            p.data[...] = p.manifold.project(p.data)
