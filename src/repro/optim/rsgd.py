"""Riemannian stochastic gradient descent (Bonnabel; paper Section V-C).

For each parameter X with Euclidean gradient ∇L:

1. convert to the Riemannian gradient,
   ``grad = egrad2rgrad(X, ∇L)``  (Eq. 16 — metric inverse + tangent
   projection for Lorentz, conformal rescaling for Poincare);
2. retract along ``-lr * grad`` with the manifold exponential map
   (Mobius exp map, Eq. 17, on the Poincare ball; Eq. 18 on the
   hyperboloid);
3. re-project onto the manifold to absorb float drift.

Euclidean parameters degrade gracefully to a plain SGD step.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.optim.parameter import Parameter
from repro.optim.sgd import Optimizer
from repro.tensor import backend as _backend


class RiemannianSGD(Optimizer):
    """RSGD over a mixed set of Euclidean / Poincare / Lorentz parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 max_grad_norm: Optional[float] = 50.0):
        super().__init__(params, max_grad_norm)
        self.lr = float(lr)

    def step(self) -> None:
        for p in self.params:
            grad = p.grad
            if grad is None:
                continue
            if not np.isfinite(grad).all():
                # A blown-up batch must not corrupt the embedding table.
                continue
            # Clip the *Riemannian* gradient: near the Poincare boundary
            # the Euclidean gradient blows up exactly where the conformal
            # factor of egrad2rgrad would tame it — clipping before the
            # conversion freezes boundary points instead of moving them.
            rgrad = p.manifold.egrad2rgrad(p.data, grad)
            if _backend.get_backend().fused and rgrad is not grad:
                # rgrad is a fresh temporary: scale it in place instead of
                # materializing -lr * rgrad (and the clip factor) anew.
                if self.max_grad_norm is not None:
                    nrm = np.linalg.norm(rgrad)
                    if nrm > self.max_grad_norm:
                        rgrad *= self.max_grad_norm / nrm
                rgrad *= -self.lr
                p.data[...] = p.manifold.retract(p.data, rgrad)
                continue
            if self.max_grad_norm is not None:
                nrm = np.linalg.norm(rgrad)
                if nrm > self.max_grad_norm:
                    rgrad = rgrad * (self.max_grad_norm / nrm)
            p.data[...] = p.manifold.retract(p.data, -self.lr * rgrad)
