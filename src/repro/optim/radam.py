"""Riemannian Adam (the geoopt-style practical variant).

Keeps Adam first/second moments in ambient coordinates of the Riemannian
gradient and retracts the preconditioned step with the manifold exponential
map.  Parallel transport of the moments is approximated by the identity,
the standard simplification (Becigneul & Ganea, 2019; geoopt) that works
well when steps are small relative to curvature.

On Euclidean parameters this reduces exactly to Adam, so a single optimizer
instance can drive the mixed parameter sets of the hyperbolic models.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.optim.parameter import Parameter
from repro.optim.sgd import Optimizer
from repro.tensor import backend as _backend


class RiemannianAdam(Optimizer):
    """Adam preconditioning + Riemannian gradient + exp-map retraction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 max_grad_norm: Optional[float] = 50.0):
        super().__init__(params, max_grad_norm)
        self.lr = float(lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["t"] = int(self._t)
        self._store_arrays(state, "m", self._m)
        self._store_arrays(state, "v", self._v)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._t = int(state.get("t", 0))
        self._restore_arrays(state, "m", self._m)
        self._restore_arrays(state, "v", self._v)

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        backend = _backend.get_backend()
        if backend.arena is not None:
            self._step_inplace(bias1, bias2, backend.arena)
            return
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            if grad is None or not np.isfinite(grad).all():
                continue
            # Convert first, clip the Riemannian gradient (see rsgd.py for
            # why clipping the Euclidean gradient freezes boundary points).
            rgrad = p.manifold.egrad2rgrad(p.data, grad)
            if self.max_grad_norm is not None:
                nrm = np.linalg.norm(rgrad)
                if nrm > self.max_grad_norm:
                    rgrad = rgrad * (self.max_grad_norm / nrm)
            m *= self.beta1
            m += (1.0 - self.beta1) * rgrad
            v *= self.beta2
            v += (1.0 - self.beta2) * rgrad * rgrad
            step = (self.lr * (m / bias1)
                    / (np.sqrt(v / bias2) + self.eps))
            # The preconditioned direction is generally not tangent any
            # more; re-project before retracting (cheap and keeps the
            # update on-manifold).
            step = p.manifold.proj_tangent(p.data, step)
            p.data[...] = p.manifold.retract(p.data, -step)

    def _step_inplace(self, bias1: float, bias2: float,
                      arena: "_backend.Arena") -> None:
        """Fast-backend variant: same math as :meth:`step`, staged through
        persistent scratch buffers to avoid per-parameter temporaries."""
        for i, (p, m, v) in enumerate(zip(self.params, self._m, self._v)):
            grad = p.grad
            if grad is None or not np.isfinite(grad).all():
                continue
            rgrad = p.manifold.egrad2rgrad(p.data, grad)
            if self.max_grad_norm is not None:
                nrm = np.linalg.norm(rgrad)
                if nrm > self.max_grad_norm:
                    if rgrad is grad:
                        rgrad = rgrad * (self.max_grad_norm / nrm)
                    else:
                        rgrad *= self.max_grad_norm / nrm
            s1 = arena.scratch(("radam", id(self), i, 0), m.shape, m.dtype)
            s2 = arena.scratch(("radam", id(self), i, 1), m.shape, m.dtype)
            np.multiply(rgrad, 1.0 - self.beta1, out=s1)
            m *= self.beta1
            m += s1
            np.multiply(rgrad, 1.0 - self.beta2, out=s1)
            s1 *= rgrad
            v *= self.beta2
            v += s1
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            s1 += self.eps
            np.divide(m, bias1, out=s2)
            s2 /= s1
            s2 *= -self.lr
            step = p.manifold.proj_tangent(p.data, s2)
            p.data[...] = p.manifold.retract(p.data, step)
