"""Learnable parameters bound to a manifold."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.manifolds.base import Euclidean, Manifold
from repro.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` with ``requires_grad=True`` and a home manifold.

    Optimizers dispatch on :attr:`manifold` to pick the right gradient
    conversion and retraction; ``Euclidean`` is the default and reduces to
    ordinary SGD updates.
    """

    __slots__ = ("manifold",)

    def __init__(self, data, manifold: Optional[Manifold] = None,
                 name: str = ""):
        # Parameters are float64 masters regardless of the active backend:
        # the fast backend casts per-op, checkpoints stay backend-agnostic.
        super().__init__(np.asarray(data, dtype=np.float64),
                         requires_grad=True, name=name, dtype=np.float64)
        self.manifold = manifold if manifold is not None else Euclidean()

    @classmethod
    def random(cls, shape: tuple, manifold: Optional[Manifold] = None,
               rng: Optional[np.random.Generator] = None,
               scale: float = 0.1, name: str = "") -> "Parameter":
        """Initialize on the manifold (near its origin)."""
        manifold = manifold if manifold is not None else Euclidean()
        rng = rng if rng is not None else np.random.default_rng()
        return cls(manifold.random(shape, rng, scale=scale),
                   manifold=manifold, name=name)

    def __repr__(self) -> str:
        return (f"Parameter(shape={self.data.shape}, "
                f"manifold={self.manifold.name!r}, name={self.name!r})")
