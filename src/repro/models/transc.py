"""TransC (Lv et al., 2018), constrained per the paper to tag-tag,
item-tag, and user-item relations.

Concepts (tags) are Euclidean spheres ``(p_t, r_t)``; instances (items)
are points.  The three relation losses are

* instanceOf (item-tag):  ``[||v - p_t|| - r_t]_+``
* subClassOf (tag-tag):   ``[||p_i - p_j|| + r_j - r_i]_+``
* user-item ranking:      triplet hinge on ``||u - v||``

— the Euclidean ancestor of LogiRec's construction, which makes it the
strongest tag-based baseline in the paper's Table II.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.data.dataset import InteractionDataset, Split
from repro.manifolds.base import neg_dist_scores
from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter
from repro.tensor import Tensor, clamp_min, gather_rows, norm, softplus


class TransC(Recommender):
    """Concept-sphere embedding with user-item ranking."""

    def __init__(self, n_users: int, n_items: int, n_tags: int,
                 config: Optional[TrainConfig] = None,
                 relation_weight: float = 0.5):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        self.n_tags = int(n_tags)
        self.relation_weight = float(relation_weight)
        self.user_emb = Parameter(self.rng.normal(0, 0.1, (n_users, d)),
                                  name="user")
        self.item_emb = Parameter(self.rng.normal(0, 0.1, (n_items, d)),
                                  name="item")
        self.tag_emb = Parameter(self.rng.normal(0, 0.3, (n_tags, d)),
                                 name="tag")
        self.tag_radii_raw = Parameter(np.full((n_tags, 1), 0.2),
                                       name="tag_radii")
        self._membership = None
        self._hierarchy = None

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        self._membership = dataset.relations.membership
        self._hierarchy = dataset.relations.hierarchy

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb, self.tag_emb,
                self.tag_radii_raw]

    def make_optimizer(self):
        # Adam beats plain SGD decisively for the metric-learning family
        # at bench scale (tuned on validation data, as the paper's grid
        # search would have).
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _relation_loss(self) -> Tensor:
        radii = softplus(self.tag_radii_raw)
        total = Tensor(0.0)
        if self._membership is not None and len(self._membership):
            v = gather_rows(self.item_emb, self._membership[:, 0])
            p = gather_rows(self.tag_emb, self._membership[:, 1])
            r = gather_rows(radii, self._membership[:, 1]).reshape(-1)
            total = total + clamp_min(norm(v - p, axis=-1) - r, 0.0).mean()
        if self._hierarchy is not None and len(self._hierarchy):
            p_par = gather_rows(self.tag_emb, self._hierarchy[:, 0])
            p_chi = gather_rows(self.tag_emb, self._hierarchy[:, 1])
            r_par = gather_rows(radii, self._hierarchy[:, 0]).reshape(-1)
            r_chi = gather_rows(radii, self._hierarchy[:, 1]).reshape(-1)
            violation = norm(p_par - p_chi, axis=-1) + r_chi - r_par
            total = total + clamp_min(violation, 0.0).mean()
        return total

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        u = gather_rows(self.user_emb, users)
        v_p = gather_rows(self.item_emb, pos)
        v_q = gather_rows(self.item_emb, neg)
        d_pos = norm(u - v_p, axis=-1)
        d_neg = norm(u - v_q, axis=-1)
        rank = clamp_min(self.config.margin + d_pos - d_neg, 0.0).mean()
        return rank + self.relation_weight * self._relation_loss()

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        u = self.user_emb.data[np.asarray(user_ids, dtype=np.int64)]
        return neg_dist_scores(u, self.item_emb.data)

    def export_scoring(self):
        return {"kind": "neg_dist", "user": self.user_emb.data.copy(),
                "item": self.item_emb.data.copy()}
