"""HyperML (Vinh Tran et al., 2020): metric learning in hyperbolic space.

Users and items are points in the Poincare ball; the pull-push triplet
hinge uses the Poincare distance, and a distortion-style regularizer ties
the hyperbolic geometry to the Euclidean one.  Optimized with RSGD.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.manifolds import PoincareBall, poincare_ranking_scores
from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter, RiemannianSGD
from repro.tensor import Tensor, clamp_min, gather_rows, no_grad, norm


class HyperML(Recommender):
    """Hyperbolic metric learning for collaborative filtering."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None,
                 distortion_weight: float = 0.1,
                 parameterization: str = "tangent"):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        self.ball = PoincareBall()
        self.distortion_weight = float(distortion_weight)
        self.parameterization = parameterization
        if parameterization == "tangent":
            self.user_emb = Parameter(self.rng.normal(0, 0.1,
                                                      (n_users, d)),
                                      name="user")
            self.item_emb = Parameter(self.rng.normal(0, 0.1,
                                                      (n_items, d)),
                                      name="item")
        else:
            self.user_emb = Parameter.random((n_users, d), self.ball,
                                             self.rng, name="user")
            self.item_emb = Parameter.random((n_items, d), self.ball,
                                             self.rng, name="item")

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb]

    def make_optimizer(self):
        if self.parameterization == "manifold":
            return RiemannianSGD(self.parameters(), lr=self.config.lr,
                                 max_grad_norm=self.config.max_grad_norm)
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _ball_tables(self):
        if self.parameterization == "tangent":
            return (PoincareBall.expmap0(self.user_emb),
                    PoincareBall.expmap0(self.item_emb))
        return self.user_emb, self.item_emb

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        user_table, item_table = self._ball_tables()
        u = gather_rows(user_table, users)
        v_p = gather_rows(item_table, pos)
        v_q = gather_rows(item_table, neg)
        d_pos = PoincareBall.distance(u, v_p)
        d_neg = PoincareBall.distance(u, v_q)
        pull_push = clamp_min(self.config.margin + d_pos - d_neg,
                              0.0).mean()
        # Distortion regularizer: hyperbolic and Euclidean positive
        # distances should stay proportional (|d_P - d_E| penalty).
        d_euc = norm(u - v_p, axis=-1)
        gap = d_pos - d_euc
        distortion = (gap * gap).mean()
        return pull_push + self.distortion_weight * distortion

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        with no_grad():
            user_table, item_table = self._ball_tables()
        u = user_table.data[np.asarray(user_ids, dtype=np.int64)]
        return poincare_ranking_scores(u, item_table.data)

    def export_scoring(self):
        with no_grad():
            user_table, item_table = self._ball_tables()
        return {"kind": "poincare", "user": user_table.data.copy(),
                "item": item_table.data.copy()}
