"""CMLF: collaborative metric learning with (tag) feature fusion.

The feature-fusion variant of CML from Hsieh et al. (2017): item tags are
embedded as points and each item is pulled toward the centroid of its tags,
so side information shapes the metric space alongside interactions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset, Split
from repro.manifolds.base import neg_sq_dist_scores
from repro.models.base import Recommender, TrainConfig
from repro.models.cml import UnitBall
from repro.optim import Adam, Parameter
from repro.tensor import Tensor, clamp_min, gather_rows, sparse_matmul


class CMLF(Recommender):
    """CML + tag-feature pull term."""

    def __init__(self, n_users: int, n_items: int, n_tags: int,
                 config: Optional[TrainConfig] = None,
                 feature_weight: float = 0.5):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        ball = UnitBall()
        self.n_tags = int(n_tags)
        self.feature_weight = float(feature_weight)
        self.user_emb = Parameter.random((n_users, d), ball, self.rng,
                                         name="user")
        self.item_emb = Parameter.random((n_items, d), ball, self.rng,
                                         name="item")
        self.tag_emb = Parameter.random((n_tags, d), ball, self.rng,
                                        name="tag")
        self._tag_mean: Optional[sp.csr_matrix] = None

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        q = dataset.item_tags.astype(np.float64)
        counts = np.asarray(q.sum(axis=1)).ravel()
        inv = np.divide(1.0, counts, out=np.zeros_like(counts),
                        where=counts > 0)
        self._tag_mean = (sp.diags(inv) @ q).tocsr()  # items x tags, row-mean

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb, self.tag_emb]

    def make_optimizer(self):
        # Adam beats plain SGD decisively for the metric-learning family
        # at bench scale (tuned on validation data, as the paper's grid
        # search would have).
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        u = gather_rows(self.user_emb, users)
        v_p = gather_rows(self.item_emb, pos)
        v_q = gather_rows(self.item_emb, neg)
        d_pos = ((u - v_p) ** 2).sum(axis=-1)
        d_neg = ((u - v_q) ** 2).sum(axis=-1)
        metric = clamp_min(self.config.margin + d_pos - d_neg, 0.0).mean()
        # Feature term: items close to the centroid of their tags.
        centroids = sparse_matmul(self._tag_mean, self.tag_emb)
        batch_items = np.unique(np.concatenate([pos, neg]))
        item_vecs = gather_rows(self.item_emb, batch_items)
        target = gather_rows(centroids, batch_items)
        feature = ((item_vecs - target) ** 2).sum(axis=-1).mean()
        return metric + self.feature_weight * feature

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        u = self.user_emb.data[np.asarray(user_ids, dtype=np.int64)]
        return neg_sq_dist_scores(u, self.item_emb.data)

    def export_scoring(self):
        return {"kind": "neg_sq_dist", "user": self.user_emb.data.copy(),
                "item": self.item_emb.data.copy()}
