"""HGCF (Sun et al., 2021): hyperbolic graph convolution for CF.

User and item embeddings live on the Lorentz hyperboloid; graph
convolution happens in the tangent space at the origin (the same Eq. 6-8
machinery LogiRec reuses) and training minimizes a margin ranking loss
over squared Lorentzian distances.  HGCF is exactly LogiRec stripped of
the Poincare logic machinery, which the paper's Table III ("w/o LRM" vs
removing logic losses) makes explicit.

Like LogiRec, supports either tangent-space parameterization with Adam
(default, stable at bench scale) or manifold parameters with RSGD.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.hgcn import hyperbolic_gcn
from repro.data.dataset import InteractionDataset, Split
from repro.manifolds import Lorentz, lorentz_ranking_scores
from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter, RiemannianSGD
from repro.tensor import Tensor, cat, clamp_min, gather_rows, no_grad


class HGCF(Recommender):
    """Hyperbolic GCN collaborative filtering."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None, n_layers: int = 3,
                 parameterization: str = "tangent"):
        super().__init__(n_users, n_items, config)
        if parameterization not in ("tangent", "manifold"):
            raise ValueError("parameterization must be 'tangent' or "
                             "'manifold'")
        d = self.config.dim
        self.n_layers = int(n_layers)
        self.parameterization = parameterization
        manifold = Lorentz()
        if parameterization == "tangent":
            self.user_emb = Parameter(self.rng.normal(0, 0.1,
                                                      (n_users, d)),
                                      name="user")
            self.item_emb = Parameter(self.rng.normal(0, 0.1,
                                                      (n_items, d)),
                                      name="item")
        else:
            self.user_emb = Parameter.random((n_users, d + 1), manifold,
                                             self.rng, name="user")
            self.item_emb = Parameter.random((n_items, d + 1), manifold,
                                             self.rng, name="item")
        self._adj_ui = None
        self._adj_iu = None

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        self._adj_ui, self._adj_iu = self.normalized_adjacency(
            dataset, split.train)

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb]

    def make_optimizer(self):
        if self.parameterization == "manifold":
            return RiemannianSGD(self.parameters(), lr=self.config.lr,
                                 max_grad_norm=self.config.max_grad_norm)
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _lorentz_tables(self):
        if self.parameterization == "tangent":
            zeros_u = Tensor(np.zeros((self.n_users, 1)))
            zeros_v = Tensor(np.zeros((self.n_items, 1)))
            user = Lorentz.expmap0(cat([zeros_u, self.user_emb], axis=1))
            item = Lorentz.expmap0(cat([zeros_v, self.item_emb], axis=1))
            return user, item
        return self.user_emb, self.item_emb

    def _propagated(self):
        user, item = self._lorentz_tables()
        return hyperbolic_gcn(user, item, self._adj_ui, self._adj_iu,
                              self.n_layers)

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        user_all, item_all = self._propagated()
        u = gather_rows(user_all, users)
        v_p = gather_rows(item_all, pos)
        v_q = gather_rows(item_all, neg)
        d_pos = Lorentz.sqdist(u, v_p)
        d_neg = Lorentz.sqdist(u, v_q)
        return clamp_min(self.config.margin + d_pos - d_neg, 0.0).mean()

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        with no_grad():
            user_all, item_all = self._propagated()
        u = user_all.data[np.asarray(user_ids, dtype=np.int64)]
        return lorentz_ranking_scores(u, item_all.data)

    def export_scoring(self):
        with no_grad():
            user_all, item_all = self._propagated()
        return {"kind": "lorentz", "user": np.array(user_all.data),
                "item": np.array(item_all.data)}
