"""SML (Li et al., 2020): symmetric metric learning with adaptive margins.

Extends CML with (a) a symmetric item-centric triplet term — the positive
item should also be closer to its user than to other users — and (b)
learnable per-user and per-item margins, regularized toward a target so
they stay informative.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.manifolds.base import neg_sq_dist_scores
from repro.models.base import Recommender, TrainConfig
from repro.models.cml import UnitBall
from repro.optim import Adam, Parameter
from repro.tensor import Tensor, clamp, clamp_min, gather_rows


class SML(Recommender):
    """Symmetric metric learning with adaptive margins."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None,
                 gamma: float = 0.5, margin_reg: float = 0.1,
                 max_margin: float = 1.0):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        ball = UnitBall()
        self.gamma = float(gamma)          # weight of the symmetric term
        self.margin_reg = float(margin_reg)
        self.max_margin = float(max_margin)
        self.user_emb = Parameter.random((n_users, d), ball, self.rng,
                                         name="user")
        self.item_emb = Parameter.random((n_items, d), ball, self.rng,
                                         name="item")
        self.user_margin = Parameter(
            np.full((n_users, 1), self.config.margin),
            name="user_margin")
        self.item_margin = Parameter(
            np.full((n_items, 1), self.config.margin),
            name="item_margin")

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb, self.user_margin,
                self.item_margin]

    def make_optimizer(self):
        # Adam beats plain SGD decisively for the metric-learning family
        # at bench scale (tuned on validation data, as the paper's grid
        # search would have).
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        u = gather_rows(self.user_emb, users)
        v_p = gather_rows(self.item_emb, pos)
        v_q = gather_rows(self.item_emb, neg)
        d_up = ((u - v_p) ** 2).sum(axis=-1)
        d_uq = ((u - v_q) ** 2).sum(axis=-1)
        m_u = clamp(gather_rows(self.user_margin, users).reshape(-1),
                    0.0, self.max_margin)
        user_term = clamp_min(m_u + d_up - d_uq, 0.0).mean()
        # Symmetric item-centric term: v_p prefers its user over a random
        # other user (approximated by the negative triplet's user shift).
        shuffled = gather_rows(self.user_emb,
                               np.roll(np.asarray(users), 1))
        d_pv = ((v_p - u) ** 2).sum(axis=-1)
        d_pother = ((v_p - shuffled) ** 2).sum(axis=-1)
        m_i = clamp(gather_rows(self.item_margin, pos).reshape(-1),
                    0.0, self.max_margin)
        item_term = clamp_min(m_i + d_pv - d_pother, 0.0).mean()
        # Encourage large (informative) margins, as in the original.
        margin_term = (self.max_margin - m_u.mean()) + (
            self.max_margin - m_i.mean())
        return (user_term + self.gamma * item_term
                + self.margin_reg * margin_term)

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        u = self.user_emb.data[np.asarray(user_ids, dtype=np.int64)]
        return neg_sq_dist_scores(u, self.item_emb.data)

    def export_scoring(self):
        return {"kind": "neg_sq_dist", "user": self.user_emb.data.copy(),
                "item": self.item_emb.data.copy()}
