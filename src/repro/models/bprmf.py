"""BPRMF (Rendle et al., 2009): matrix factorization with the BPR loss.

Score is the inner product plus an item bias; training maximizes
``log sigma(x_up - x_uq)`` over sampled triplets.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter
from repro.tensor import Tensor, dot, gather_rows, log, no_grad, sigmoid


class BPRMF(Recommender):
    """Bayesian personalized ranking over matrix factorization."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None, l2: float = 1e-4):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        self.l2 = float(l2)
        self.user_emb = Parameter(self.rng.normal(0, 0.1, (n_users, d)),
                                  name="user")
        self.item_emb = Parameter(self.rng.normal(0, 0.1, (n_items, d)),
                                  name="item")
        self.item_bias = Parameter(np.zeros((n_items, 1)), name="bias")

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb, self.item_bias]

    def make_optimizer(self):
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _score_triplet(self, users, items) -> Tensor:
        u = gather_rows(self.user_emb, users)
        v = gather_rows(self.item_emb, items)
        b = gather_rows(self.item_bias, items).reshape(-1)
        return dot(u, v) + b

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        x_up = self._score_triplet(users, pos)
        x_uq = self._score_triplet(users, neg)
        bpr = (-1.0) * log(sigmoid(x_up - x_uq)).mean()
        reg = ((gather_rows(self.user_emb, users) ** 2).sum()
               + (gather_rows(self.item_emb, pos) ** 2).sum()
               + (gather_rows(self.item_emb, neg) ** 2).sum()) * (
                   self.l2 / len(users))
        return bpr + reg

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        u = self.user_emb.data[np.asarray(user_ids, dtype=np.int64)]
        return u @ self.item_emb.data.T + self.item_bias.data.ravel()

    def export_scoring(self):
        return {"kind": "dot_bias", "user": self.user_emb.data.copy(),
                "item": self.item_emb.data.copy(),
                "bias": self.item_bias.data.ravel().copy()}
