"""HRCF (Yang et al., 2022): hyperbolic geometric regularized CF.

HGCF plus the *root alignment* regularizer: the tangent-space centroid of
the item embeddings is kept near the origin while items themselves spread
outward, so embeddings exploit hyperbolic volume — implemented, as in the
original, by minimizing the ratio of the centroid norm to the mean item
norm in the tangent space.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.manifolds import Lorentz
from repro.models.base import TrainConfig
from repro.models.hgcf import HGCF
from repro.tensor import Tensor, clamp_min, gather_rows, norm


class HRCF(HGCF):
    """HGCF with hyperbolic geometric regularization."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None, n_layers: int = 3,
                 reg_weight: float = 0.1,
                 parameterization: str = "tangent"):
        super().__init__(n_users, n_items, config, n_layers,
                         parameterization)
        self.reg_weight = float(reg_weight)

    def _geometric_regularizer(self, item_all: Tensor) -> Tensor:
        """Root-alignment penalty: ratio of root-norm to item spread.

        Minimizing ``||centroid|| / mean(||z_i||)`` in the tangent space
        keeps the effective root near the origin while encouraging items
        to spread outward — the HRCF recipe.
        """
        z = Lorentz.logmap0(item_all)
        spatial = z[..., 1:]
        centroid = spatial.mean(axis=0)
        root_norm = (centroid * centroid).sum() ** 0.5
        spread = norm(spatial, axis=-1).mean()
        return root_norm / clamp_min(spread, 1e-6)

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        user_all, item_all = self._propagated()
        u = gather_rows(user_all, users)
        v_p = gather_rows(item_all, pos)
        v_q = gather_rows(item_all, neg)
        d_pos = Lorentz.sqdist(u, v_p)
        d_neg = Lorentz.sqdist(u, v_q)
        rank = clamp_min(self.config.margin + d_pos - d_neg, 0.0).mean()
        return rank + self.reg_weight * self._geometric_regularizer(
            item_all)
