"""Shared recommender interface and training loop.

Every model implements two hooks:

* :meth:`Recommender.batch_loss` — the training objective on a triplet
  batch (plus any model-specific regularizers);
* :meth:`Recommender.score_users` — a dense ``(batch, n_items)`` score
  matrix for ranking.

:meth:`Recommender.fit` provides the common loop: epochs over a
:class:`~repro.data.TripletSampler`, backward, optimizer step, and an
optional per-epoch hook (used e.g. by LogiRec++ to refresh granularity
weights).

The checkpoint/serving surface is a separate, explicit contract:
:class:`ServableModel` names the four hooks (``state_dict`` /
``load_state_dict`` / ``export_extra_init`` / ``export_scoring``) that
:mod:`repro.serve` and :mod:`repro.robust` are written against, and
:class:`Recommender` implements them once for the whole zoo.  The fit
loop additionally accepts a *supervisor* (duck-typed; see
:class:`repro.robust.TrainingSupervisor`) that can auto-checkpoint,
roll back after divergence, resume mid-training, and inject faults —
with ``supervisor=None`` the loop is exactly the plain one.
"""

from __future__ import annotations

import abc
import inspect
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.data.dataset import InteractionDataset, Split
from repro.data.sampling import TripletSampler
from repro.eval.metrics import topk_indices
from repro.optim.parameter import Parameter
from repro.tensor import Tensor, no_grad
from repro.tensor import backend as _backend

LOG = obs.get_logger(__name__)


@dataclass
class TrainConfig:
    """Hyperparameters shared by all models.

    Defaults match the paper's tuned values where stated (margin 0.1,
    batch size large relative to data, RSGD/SGD learning rates from the
    paper's grid) scaled to bench-size data.
    """

    dim: int = 16
    epochs: int = 200
    batch_size: int = 4096
    lr: float = 0.05
    margin: float = 0.5
    n_negatives: int = 2
    seed: int = 0
    max_grad_norm: Optional[float] = 50.0
    verbose: bool = False


class ServableModel(abc.ABC):
    """The checkpoint/serving contract every registry model satisfies.

    :mod:`repro.serve` (checkpoints, retrieval index) and
    :mod:`repro.robust` (auto-checkpoint/rollback/resume) call exactly
    these four hooks — nothing else — so conforming to this ABC is what
    makes a model deployable.  :class:`Recommender` provides shared
    implementations; a model class that removes or shadows one without
    a working replacement fails instantiation here instead of failing
    at serving time, and ``tests/test_servable_api.py`` additionally
    checks the *semantics* (round trips, scoring-spec validity)
    registry-wide.
    """

    @abc.abstractmethod
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Ordered ``{"<position>:<name>": array}`` parameter snapshot."""

    @abc.abstractmethod
    def load_state_dict(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot (strict: shapes + keys)."""

    @abc.abstractmethod
    def export_extra_init(self) -> Dict[str, object]:
        """Scalar constructor kwargs beyond the universal ones."""

    @abc.abstractmethod
    def export_scoring(self) -> Dict[str, object]:
        """Frozen scoring spec (``{"kind": ..., ...arrays}``) for the
        offline retrieval index."""


@dataclass
class FitState:
    """Mutable cross-epoch training state owned by :meth:`Recommender.fit`.

    ``epoch`` is the next epoch to run (== epochs completed so far);
    supervisors rewind it on rollback and fast-forward it on resume.
    The best-validation snapshot lives here so it checkpoints and
    restores together with everything else.
    """

    epoch: int = 0
    best_score: float = -np.inf
    best_state: Optional[List[np.ndarray]] = None


class Recommender(ServableModel):
    """Base class for every reproduced model."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None):
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self.config = config if config is not None else TrainConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def parameters(self) -> List[Parameter]:
        """All learnable parameters."""

    @abc.abstractmethod
    def make_optimizer(self):
        """Build the model's optimizer over :meth:`parameters`."""

    @abc.abstractmethod
    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        """Scalar loss for one triplet batch."""

    @abc.abstractmethod
    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        """Dense score matrix ``(len(user_ids), n_items)``; higher = better."""

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        """Dataset-dependent setup (adjacency matrices, relations, ...)."""

    def on_epoch_start(self, epoch: int) -> None:
        """Per-epoch hook (LogiRec++ refreshes its weights here)."""

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def fit(self, dataset: InteractionDataset, split: Split,
            evaluator=None, eval_every: int = 25,
            eval_metric: str = "recall@10",
            supervisor=None) -> "Recommender":
        """Train on ``split.train`` and return self.

        If an :class:`~repro.eval.Evaluator` is supplied, validation
        performance is checked every ``eval_every`` epochs and the best
        parameter snapshot is restored at the end (the paper tunes every
        model on the validation split; best-epoch selection is part of
        that protocol and applied uniformly to all models).

        ``supervisor`` (e.g. :class:`repro.robust.TrainingSupervisor`)
        observes the loop through four hooks: ``on_fit_start`` (may
        fast-forward :class:`FitState` to resume), ``on_epoch_start``
        and ``on_batch`` (fault-injection points), and ``on_epoch_end``,
        which returns the next epoch to run — ``epoch + 1`` normally, or
        an earlier epoch to roll back after a detected divergence.  A
        supervisor that injects nothing leaves the run bit-identical to
        ``supervisor=None``: no hook consumes model RNG or touches
        parameters.

        When a :mod:`repro.obs` run is active the loop emits a span tree
        (``fit > epoch > {epoch_setup, sample, forward, backward, step,
        validate}``) plus per-epoch loss statistics, gradient norms, and
        parameter norms; with no run active the only residual cost is the
        ``perf_counter`` phase accumulators.
        """
        with obs.trace("fit", model=type(self).__name__,
                       epochs=self.config.epochs,
                       batch_size=self.config.batch_size,
                       backend=_backend.get_backend().name):
            with obs.trace("prepare"):
                self.prepare(dataset, split)
            sampler = TripletSampler(dataset, split.train, rng=self.rng,
                                     n_negatives=self.config.n_negatives)
            optimizer = self.make_optimizer()
            state = FitState()
            if supervisor is not None:
                supervisor.on_fit_start(self, optimizer, state,
                                        dataset=dataset)
            limiter = obs.RateLimiter(min_interval_s=0.5)
            epoch = state.epoch
            while epoch < self.config.epochs:
                last_epoch = epoch == self.config.epochs - 1
                if supervisor is not None:
                    supervisor.on_epoch_start(self, epoch)
                with obs.trace("epoch", epoch=epoch) as epoch_span:
                    mean_loss = self._fit_epoch(epoch, sampler, optimizer,
                                                epoch_span, supervisor)
                    if self.config.verbose and limiter.ready(
                            force=epoch == 0 or last_epoch):
                        LOG.info("%s epoch %d/%d loss=%.4f",
                                 type(self).__name__, epoch + 1,
                                 self.config.epochs, mean_loss)
                    if evaluator is not None and (
                            (epoch + 1) % eval_every == 0 or last_epoch):
                        with obs.trace("validate", epoch=epoch):
                            score = evaluator.evaluate_valid(
                                self).means[eval_metric]
                        if score > state.best_score:
                            state.best_score = score
                            state.best_state = [p.data.copy()
                                                for p in self.parameters()]
                if supervisor is None:
                    epoch += 1
                else:
                    epoch = supervisor.on_epoch_end(self, optimizer, state,
                                                    epoch, mean_loss)
            if state.best_state is not None:
                for p, data in zip(self.parameters(), state.best_state):
                    p.data[...] = data
        return self

    def _fit_epoch(self, epoch: int, sampler: TripletSampler,
                   optimizer, epoch_span, supervisor=None) -> float:
        """One epoch over the sampler; returns the epoch-mean loss.

        Phase wall-clock (sampling / forward / backward / optimizer step)
        is accumulated across batches and flushed as one pre-aggregated
        span per phase, so telemetry volume stays at a handful of events
        per epoch regardless of batch count.
        """
        telemetry = obs.enabled()
        t0 = time.perf_counter()
        self.on_epoch_start(epoch)
        t_setup = time.perf_counter() - t0
        batch_losses: List[float] = []
        t_sample = t_forward = t_backward = t_step = 0.0
        grad_norm_sum = 0.0
        batches = sampler.epoch(self.config.batch_size)
        while True:
            t0 = time.perf_counter()
            batch = next(batches, None)
            t_sample += time.perf_counter() - t0
            if batch is None:
                break
            users, pos, neg = batch
            optimizer.zero_grad()
            t0 = time.perf_counter()
            loss = self.batch_loss(users, pos, neg)
            t_forward += time.perf_counter() - t0
            t0 = time.perf_counter()
            loss.backward()
            t_backward += time.perf_counter() - t0
            if supervisor is not None:
                supervisor.on_batch(self, epoch, len(batch_losses))
            if telemetry:
                grad_norm = self._global_norm(
                    p.grad for p in self.parameters())
                grad_norm_sum += grad_norm
                obs.observe("train/grad_norm_batch", grad_norm)
            t0 = time.perf_counter()
            optimizer.step()
            t_step += time.perf_counter() - t0
            batch_losses.append(loss.item())
        n_batches = len(batch_losses)
        # Epoch-mean loss (not the last batch's): the curve consumers —
        # loss_history, the verbose log line, and the telemetry stats —
        # all see the same per-epoch aggregate.
        mean_loss = sum(batch_losses) / max(n_batches, 1)
        self.loss_history.append(mean_loss)
        if telemetry:
            obs.record_span("epoch_setup", t_setup)
            obs.record_span("sample", t_sample, count=n_batches)
            obs.record_span("forward", t_forward, count=n_batches)
            obs.record_span("backward", t_backward, count=n_batches)
            obs.record_span("step", t_step, count=n_batches)
            for value in batch_losses:
                obs.observe("train/loss_batch", value)
            obs.observe("train/loss_epoch", mean_loss)
            if not np.isfinite(mean_loss):
                obs.count("train/nonfinite_loss_epochs")
            grad_norm = grad_norm_sum / max(n_batches, 1)
            param_norm = self._global_norm(
                p.data for p in self.parameters())
            obs.gauge_set("train/grad_norm_epoch", grad_norm)
            obs.gauge_set("train/param_norm", param_norm)
            arena = _backend.arena_stats()
            if arena is not None:
                obs.gauge_set("backend/arena/buffers", arena["buffers"])
                obs.gauge_set("backend/arena/bytes", arena["bytes"])
                obs.gauge_set("backend/arena/hit_rate", arena["hit_rate"])
            epoch_span.annotate(
                n_batches=n_batches, loss_mean=round(mean_loss, 6),
                loss_min=round(min(batch_losses), 6) if batch_losses else None,
                loss_max=round(max(batch_losses), 6) if batch_losses else None,
                grad_norm=round(grad_norm, 6),
                param_norm=round(param_norm, 6))
        return mean_loss

    @staticmethod
    def _global_norm(arrays) -> float:
        """L2 norm over a collection of arrays (``None`` entries skipped)."""
        total = 0.0
        for a in arrays:
            if a is not None:
                total += float(np.sum(a * a))
        return float(np.sqrt(total))

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def normalized_adjacency(dataset: InteractionDataset,
                             train_indices: np.ndarray):
        """Row-normalized user->item and item->user adjacency (Eq. 7).

        Returns ``(a_ui, a_iu)`` where ``a_ui[u, i] = 1/|N_u|`` over the
        training interactions.
        """
        mat = dataset.interaction_matrix(train_indices)
        user_deg = np.asarray(mat.sum(axis=1)).ravel()
        item_deg = np.asarray(mat.sum(axis=0)).ravel()
        inv_u = np.divide(1.0, user_deg, out=np.zeros_like(user_deg),
                          where=user_deg > 0)
        inv_i = np.divide(1.0, item_deg, out=np.zeros_like(item_deg),
                          where=item_deg > 0)
        a_ui = sp.diags(inv_u) @ mat
        a_iu = sp.diags(inv_i) @ mat.T
        return a_ui.tocsr(), a_iu.tocsr()

    @staticmethod
    def symmetric_adjacency(dataset: InteractionDataset,
                            train_indices: np.ndarray) -> sp.csr_matrix:
        """LightGCN's symmetric normalization over the bipartite graph.

        Returns the ``(n_users + n_items)`` square matrix
        ``D^{-1/2} A D^{-1/2}``.
        """
        mat = dataset.interaction_matrix(train_indices)
        n_u, n_i = mat.shape
        upper = sp.hstack([sp.csr_matrix((n_u, n_u)), mat])
        lower = sp.hstack([mat.T, sp.csr_matrix((n_i, n_i))])
        adj = sp.vstack([upper, lower]).tocsr()
        deg = np.asarray(adj.sum(axis=1)).ravel()
        inv_sqrt = np.divide(1.0, np.sqrt(deg), out=np.zeros_like(deg),
                             where=deg > 0)
        d = sp.diags(inv_sqrt)
        return (d @ adj @ d).tocsr()

    # ------------------------------------------------------------------
    # Online learning: embedding resize for cold-start entities
    # ------------------------------------------------------------------
    def resize_universe(self, n_users: int, n_items: int, *,
                        item_neighbors: Optional[Dict[int, np.ndarray]]
                        = None, init_scale: float = 0.01) -> dict:
        """Grow the user/item universe in place for streamed entities.

        Every parameter whose name contains ``user`` (resp. ``item``)
        and whose leading axis equals the old count is treated as a
        per-user (per-item) table and extended with prior-initialized
        rows; everything else (tag embeddings, biases over other axes,
        curvatures) is untouched.  The priors:

        * **Euclidean** tables — the population centroid (mean of
          existing rows) plus tiny seeded noise: cold entities start at
          the popularity prior and differentiate as gradients arrive.
        * **Manifold** tables — ``manifold.random`` near the origin,
          which in hyperbolic space is the coarse-granularity region
          where a user with no history belongs (Eq. 13's GR is minimal
          there), and always satisfies the manifold constraint.
        * ``item_neighbors`` (optional) — a tag prior: maps a *new* item
          id to existing item ids sharing tags; the new row becomes the
          neighbors' mean (Euclidean) or a copy of the first neighbor's
          point (manifold — copying keeps the constraint exact).

        The universe may only grow.  Gradients are cleared and the
        caller must use a **fresh optimizer** (``fit`` builds one) —
        stale optimizer state has the old shapes.  Dataset-dependent
        caches (adjacency, CON weights) are rebuilt by ``prepare``,
        which ``fit`` calls on the grown dataset.
        """
        old_users, old_items = self.n_users, self.n_items
        if n_users < old_users or n_items < old_items:
            raise ValueError(
                f"universe may only grow: ({old_users}, {old_items}) -> "
                f"({n_users}, {n_items})")
        grown: List[str] = []
        for p in self.parameters():
            name = p.name or ""
            axis0 = p.data.shape[0] if p.data.ndim else -1
            # Name-first classification; tables named neither way (e.g.
            # BPRMF's per-item "bias") fall back to the leading-axis
            # size when it is unambiguous.  Tag/attribute tables are
            # never entity tables, whatever their sizes.
            is_side = "tag" in name or "attr" in name
            is_user = "user" in name and axis0 == old_users
            is_item = "item" in name and axis0 == old_items
            if not (is_user or is_item or is_side):
                is_item = axis0 == old_items != old_users
                is_user = axis0 == old_users != old_items
            if is_user and n_users > old_users:
                self._grow_table(p, n_users - old_users, init_scale)
                grown.append(name)
            elif is_item and n_items > old_items:
                self._grow_table(p, n_items - old_items, init_scale,
                                 neighbors=item_neighbors,
                                 base=old_items)
                grown.append(name)
        self.n_users, self.n_items = int(n_users), int(n_items)
        return {"n_users": self.n_users, "n_items": self.n_items,
                "new_users": self.n_users - old_users,
                "new_items": self.n_items - old_items,
                "grown_parameters": grown}

    def _grow_table(self, p: Parameter, n_new: int, scale: float,
                    neighbors: Optional[Dict[int, np.ndarray]] = None,
                    base: int = 0) -> None:
        """Append ``n_new`` prior-initialized rows to a parameter table."""
        from repro.manifolds.base import Euclidean
        rest = p.data.shape[1:]
        euclidean = isinstance(p.manifold, Euclidean)
        if euclidean:
            centroid = (p.data.mean(axis=0) if len(p.data)
                        else np.zeros(rest))
            rows = centroid + scale * self.rng.standard_normal(
                (n_new,) + rest)
        else:
            rows = p.manifold.random((n_new,) + rest, self.rng,
                                     scale=scale)
        if neighbors:
            for j in range(n_new):
                nbs = neighbors.get(base + j)
                if nbs is None or not len(nbs):
                    continue
                nbs = np.asarray(nbs, dtype=np.int64)
                if euclidean:
                    rows[j] = (p.data[nbs].mean(axis=0)
                               + scale * self.rng.standard_normal(rest))
                else:
                    rows[j] = p.data[nbs[0]]
        p.data = np.concatenate([p.data, np.asarray(rows,
                                                    dtype=p.data.dtype)])
        p.grad = None

    # ------------------------------------------------------------------
    # ServableModel contract (checkpointing / serving; see repro.serve)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Ordered ``{key: array}`` snapshot of every learnable parameter.

        Keys are ``"<position>:<name>"`` so they stay unique even when
        parameter names repeat; order matches :meth:`parameters`, which
        every model keeps deterministic.
        """
        return {f"{i:03d}:{p.name}": p.data.copy()
                for i, p in enumerate(self.parameters())}

    def load_state_dict(self, arrays: Dict[str, np.ndarray]) -> None:
        """Load a :meth:`state_dict` snapshot back into the parameters."""
        params = self.parameters()
        if len(arrays) != len(params):
            raise ValueError(
                f"state has {len(arrays)} arrays, model "
                f"{type(self).__name__} expects {len(params)}")
        for i, p in enumerate(params):
            key = f"{i:03d}:{p.name}"
            if key not in arrays:
                raise ValueError(f"state is missing parameter {key!r}")
            data = np.asarray(arrays[key])
            if data.shape != p.data.shape:
                raise ValueError(
                    f"parameter {key!r} has shape {data.shape}, "
                    f"expected {p.data.shape}")
            p.data[...] = data

    def export_extra_init(self) -> Dict[str, object]:
        """Scalar constructor kwargs beyond the universal ones.

        Inspects the concrete class's ``__init__`` signature and records
        every extra keyword whose value survives as a same-named scalar
        attribute (the repo-wide convention: ``self.l2 = float(l2)``),
        so checkpoints can rebuild models constructed with non-default
        hyperparameters.  Parameters without a matching attribute fall
        back to their constructor default on load.
        """
        universal = {"self", "n_users", "n_items", "n_tags", "config"}
        out: Dict[str, object] = {}
        for name in inspect.signature(type(self).__init__).parameters:
            if name in universal or not hasattr(self, name):
                continue
            value = getattr(self, name)
            if isinstance(value, (bool, int, float, str)):
                out[name] = value
        return out

    def export_scoring(self) -> Dict[str, object]:
        """Frozen scoring spec for the offline retrieval index.

        Returns ``{"kind": <score family>, ...arrays}`` consumed by
        :class:`repro.serve.RetrievalIndex`.  Models whose score is a
        user-factor / item-factor product override this with a factored
        kind (one matvec per request); the base fallback precomputes the
        dense ``(n_users, n_items)`` score matrix — always exact, but
        only sensible for scorers that cannot be factored (NeuMF's MLP).
        """
        users = np.arange(self.n_users, dtype=np.int64)
        rows = [self.score_users(users[s:s + 256])
                for s in range(0, self.n_users, 256)]
        scores = (np.concatenate(rows, axis=0) if rows
                  else np.zeros((0, self.n_items)))
        return {"kind": "dense", "scores": np.asarray(scores)}

    def recommend(self, user_id: int, k: int = 10,
                  exclude: Optional[Sequence[int]] = None) -> np.ndarray:
        """Top-K item ids for one user, optionally masking seen items.

        Uses the shared partial-sort top-K helper — ``O(n_items)`` instead
        of a full ``O(n_items log n_items)`` sort — with the same
        descending-score / ascending-id ordering.
        """
        scores = self.score_users(np.array([user_id]))[0]
        if exclude is not None:
            scores = scores.copy()
            scores[np.asarray(list(exclude), dtype=np.int64)] = -np.inf
        return topk_indices(scores, k)
