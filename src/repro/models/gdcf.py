"""GDCF (Zhang et al., 2022): geometric disentangled collaborative filtering.

User intentions are disentangled across geometries: the embedding is split
into a Euclidean factor and a hyperbolic factor, each propagated by its
own graph convolution and scored by its own metric; the final score is the
(learned-weighted) sum of per-geometry scores.

The hyperbolic factor uses tangent-space parameterization (Euclidean
parameters + expmap0 in the forward pass), so a single Adam instance
drives both factors.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.hgcn import euclidean_gcn, hyperbolic_gcn
from repro.data.dataset import InteractionDataset, Split
from repro.manifolds import Lorentz
from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter
from repro.tensor import (Tensor, cat, clamp_min, exp, gather_rows,
                          no_grad, norm)


def gdcf_mixed_scores(u_h: np.ndarray, v_h: np.ndarray, u_e: np.ndarray,
                      v_e: np.ndarray, mix: float) -> np.ndarray:
    """GDCF's geometry-mix score: ``-(d_H^2 + mix * d_E)``.

    Shared by :meth:`GDCF.score_users` and the serving index so the
    precomputed hyperbolic/Euclidean factor tables reproduce the live
    model's scores bit-for-bit.
    """
    inner = u_h[:, 1:] @ v_h[:, 1:].T - np.outer(u_h[:, 0], v_h[:, 0])
    d_h = -2.0 - 2.0 * inner  # squared Lorentzian distance
    sq = (np.sum(u_e * u_e, axis=1, keepdims=True) - 2.0 * u_e @ v_e.T
          + np.sum(v_e * v_e, axis=1))
    d_e = np.sqrt(np.maximum(sq, 0.0))
    return -(d_h + mix * d_e)


class GDCF(Recommender):
    """Two-geometry (Euclidean + Lorentz) disentangled CF."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None, n_layers: int = 3):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        d_each = max(4, d // 2)
        self.d_each = d_each
        self.n_layers = int(n_layers)
        self.user_hyp = Parameter(self.rng.normal(0, 0.1,
                                                  (n_users, d_each)),
                                  name="user_hyp")
        self.item_hyp = Parameter(self.rng.normal(0, 0.1,
                                                  (n_items, d_each)),
                                  name="item_hyp")
        self.user_euc = Parameter(self.rng.normal(0, 0.1,
                                                  (n_users, d_each)),
                                  name="user_euc")
        self.item_euc = Parameter(self.rng.normal(0, 0.1,
                                                  (n_items, d_each)),
                                  name="item_euc")
        # Log-weight of the Euclidean factor relative to the hyperbolic one.
        self.mix_logit = Parameter(np.zeros(1), name="mix_logit")
        self._adj_ui = None
        self._adj_iu = None

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        self._adj_ui, self._adj_iu = self.normalized_adjacency(
            dataset, split.train)

    def parameters(self) -> List[Parameter]:
        return [self.user_hyp, self.item_hyp, self.user_euc, self.item_euc,
                self.mix_logit]

    def make_optimizer(self):
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _propagate_both(self):
        zeros_u = Tensor(np.zeros((self.n_users, 1)))
        zeros_v = Tensor(np.zeros((self.n_items, 1)))
        user_h0 = Lorentz.expmap0(cat([zeros_u, self.user_hyp], axis=1))
        item_h0 = Lorentz.expmap0(cat([zeros_v, self.item_hyp], axis=1))
        user_h, item_h = hyperbolic_gcn(user_h0, item_h0, self._adj_ui,
                                        self._adj_iu, self.n_layers)
        user_e, item_e = euclidean_gcn(self.user_euc, self.item_euc,
                                       self._adj_ui, self._adj_iu,
                                       self.n_layers)
        return user_h, item_h, user_e, item_e

    def _distances(self, users, items, tables):
        user_h, item_h, user_e, item_e = tables
        d_h = Lorentz.sqdist(gather_rows(user_h, users),
                             gather_rows(item_h, items))
        d_e = norm(gather_rows(user_e, users)
                   - gather_rows(item_e, items), axis=-1)
        return d_h + exp(self.mix_logit) * d_e

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        tables = self._propagate_both()
        d_pos = self._distances(users, pos, tables)
        d_neg = self._distances(users, neg, tables)
        return clamp_min(self.config.margin + d_pos - d_neg, 0.0).mean()

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        user_ids = np.asarray(user_ids, dtype=np.int64)
        with no_grad():
            user_h, item_h, user_e, item_e = self._propagate_both()
        return gdcf_mixed_scores(
            user_h.data[user_ids], item_h.data, user_e.data[user_ids],
            item_e.data, float(np.exp(self.mix_logit.data[0])))

    def export_scoring(self):
        with no_grad():
            user_h, item_h, user_e, item_e = self._propagate_both()
        return {"kind": "gdcf_mix",
                "user_h": np.array(user_h.data),
                "item_h": np.array(item_h.data),
                "user_e": np.array(user_e.data),
                "item_e": np.array(item_e.data),
                "mix": float(np.exp(self.mix_logit.data[0]))}
