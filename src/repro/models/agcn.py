"""AGCN (Wu et al., 2020): adaptive GCN for joint item recommendation and
attribute inference.

A LightGCN-style propagation is trained jointly with an attribute-inference
head that predicts each item's tags from its propagated embedding; the
inferred attribute signal regularizes the item representations, which is
how flat tag information enters the model (the paper's strongest
non-hyperbolic baseline on tag-rich data).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset, Split
from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter
from repro.tensor import (Tensor, cat, clamp, dot, gather_rows, log,
                          no_grad, sigmoid, sparse_matmul)


class AGCN(Recommender):
    """Adaptive graph convolution with attribute (tag) inference."""

    def __init__(self, n_users: int, n_items: int, n_tags: int,
                 config: Optional[TrainConfig] = None, n_layers: int = 3,
                 attr_weight: float = 0.5, l2: float = 1e-4):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        self.n_tags = int(n_tags)
        self.n_layers = int(n_layers)
        self.attr_weight = float(attr_weight)
        self.l2 = float(l2)
        self.user_emb = Parameter(self.rng.normal(0, 0.1, (n_users, d)),
                                  name="user")
        self.item_emb = Parameter(self.rng.normal(0, 0.1, (n_items, d)),
                                  name="item")
        self.attr_w = Parameter(self.rng.normal(0, 0.1, (d, n_tags)),
                                name="attr_w")
        self.attr_b = Parameter(np.zeros(n_tags), name="attr_b")
        self._adj = None
        self._labels: Optional[np.ndarray] = None

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        self._adj = self.symmetric_adjacency(dataset, split.train)
        self._labels = np.asarray(dataset.item_tags.todense(),
                                  dtype=np.float64)

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb, self.attr_w, self.attr_b]

    def make_optimizer(self):
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _propagated(self) -> Tuple[Tensor, Tensor]:
        x = cat([self.user_emb, self.item_emb], axis=0)
        acc, cur = x, x
        for _ in range(self.n_layers):
            cur = sparse_matmul(self._adj, cur)
            acc = acc + cur
        final = acc * (1.0 / (self.n_layers + 1))
        return final[:self.n_users], final[self.n_users:]

    def _attribute_loss(self, item_all: Tensor,
                        items: np.ndarray) -> Tensor:
        """Multi-label BCE of predicted vs. actual tags on batch items."""
        unique_items = np.unique(items)
        emb = gather_rows(item_all, unique_items)
        logits = emb @ self.attr_w + self.attr_b
        probs = clamp(sigmoid(logits), 1e-8, 1.0 - 1e-8)
        labels = Tensor(self._labels[unique_items])
        bce = (-1.0) * (labels * log(probs)
                        + (1.0 - labels) * log(1.0 - probs))
        return bce.mean()

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        user_all, item_all = self._propagated()
        u = gather_rows(user_all, users)
        x_up = dot(u, gather_rows(item_all, pos))
        x_uq = dot(u, gather_rows(item_all, neg))
        bpr = (-1.0) * log(sigmoid(x_up - x_uq)).mean()
        attr = self._attribute_loss(item_all,
                                    np.concatenate([pos, neg]))
        reg = ((gather_rows(self.user_emb, users) ** 2).sum()
               + (gather_rows(self.item_emb, pos) ** 2).sum()
               + (gather_rows(self.item_emb, neg) ** 2).sum()) * (
                   self.l2 / len(users))
        return bpr + self.attr_weight * attr + reg

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        with no_grad():
            user_all, item_all = self._propagated()
        u = user_all.data[np.asarray(user_ids, dtype=np.int64)]
        return u @ item_all.data.T

    def export_scoring(self):
        with no_grad():
            user_all, item_all = self._propagated()
        return {"kind": "dot", "user": np.array(user_all.data),
                "item": np.array(item_all.data)}
