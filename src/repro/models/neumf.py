"""NeuMF (He et al., 2017): neural collaborative filtering.

Fuses a GMF branch (elementwise product of user/item factors) with an MLP
branch (two hidden layers over the concatenated factors); a final linear
layer produces the interaction logit.  Trained with binary cross-entropy
over sampled positives/negatives, as in the original.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter
from repro.tensor import (Tensor, cat, gather_rows, log, relu, sigmoid,
                          clamp)


class NeuMF(Recommender):
    """Neural matrix factorization (GMF + MLP fusion)."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        rng = self.rng
        self.user_gmf = Parameter(rng.normal(0, 0.1, (n_users, d)),
                                  name="user_gmf")
        self.item_gmf = Parameter(rng.normal(0, 0.1, (n_items, d)),
                                  name="item_gmf")
        self.user_mlp = Parameter(rng.normal(0, 0.1, (n_users, d)),
                                  name="user_mlp")
        self.item_mlp = Parameter(rng.normal(0, 0.1, (n_items, d)),
                                  name="item_mlp")
        h1, h2 = d, d // 2
        self.w1 = Parameter(rng.normal(0, np.sqrt(2.0 / (2 * d)),
                                       (2 * d, h1)), name="w1")
        self.b1 = Parameter(np.zeros(h1), name="b1")
        self.w2 = Parameter(rng.normal(0, np.sqrt(2.0 / h1), (h1, h2)),
                            name="w2")
        self.b2 = Parameter(np.zeros(h2), name="b2")
        self.w_out = Parameter(rng.normal(0, 0.1, (d + h2, 1)),
                               name="w_out")
        self.b_out = Parameter(np.zeros(1), name="b_out")

    def parameters(self) -> List[Parameter]:
        return [self.user_gmf, self.item_gmf, self.user_mlp, self.item_mlp,
                self.w1, self.b1, self.w2, self.b2, self.w_out, self.b_out]

    def make_optimizer(self):
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _logits(self, users: np.ndarray, items: np.ndarray) -> Tensor:
        gmf = (gather_rows(self.user_gmf, users)
               * gather_rows(self.item_gmf, items))
        mlp_in = cat([gather_rows(self.user_mlp, users),
                      gather_rows(self.item_mlp, items)], axis=1)
        h = relu(mlp_in @ self.w1 + self.b1)
        h = relu(h @ self.w2 + self.b2)
        fused = cat([gmf, h], axis=1)
        return (fused @ self.w_out).reshape(-1) + self.b_out

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        p_pos = clamp(sigmoid(self._logits(users, pos)), 1e-8, 1 - 1e-8)
        p_neg = clamp(sigmoid(self._logits(users, neg)), 1e-8, 1 - 1e-8)
        return ((-1.0) * log(p_pos).mean()
                + (-1.0) * log(1.0 - p_neg).mean())

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        user_ids = np.asarray(user_ids, dtype=np.int64)
        scores = np.zeros((len(user_ids), self.n_items))
        all_items = np.arange(self.n_items)
        from repro.tensor import no_grad
        with no_grad():
            for row, u in enumerate(user_ids):
                users = np.full(self.n_items, u)
                scores[row] = self._logits(users, all_items).data
        return scores
