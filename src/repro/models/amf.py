"""AMF (Hou et al., 2019): aspect-aware matrix factorization.

Item tags play the role of aspects: each item's latent factor is
regularized toward the aggregate of its aspect (tag) factors, and the
rating score fuses the MF term with a user-aspect affinity term.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset, Split
from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter
from repro.tensor import Tensor, dot, gather_rows, log, sigmoid, sparse_matmul


class AMF(Recommender):
    """Aspect(-tag)-fused matrix factorization with a BPR objective."""

    def __init__(self, n_users: int, n_items: int, n_tags: int,
                 config: Optional[TrainConfig] = None,
                 aspect_weight: float = 0.5, l2: float = 1e-4):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        self.n_tags = int(n_tags)
        self.aspect_weight = float(aspect_weight)
        self.l2 = float(l2)
        self.user_emb = Parameter(self.rng.normal(0, 0.1, (n_users, d)),
                                  name="user")
        self.item_emb = Parameter(self.rng.normal(0, 0.1, (n_items, d)),
                                  name="item")
        self.tag_emb = Parameter(self.rng.normal(0, 0.1, (n_tags, d)),
                                 name="tag")
        self._tag_mean: Optional[sp.csr_matrix] = None

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        q = dataset.item_tags.astype(np.float64)
        counts = np.asarray(q.sum(axis=1)).ravel()
        inv = np.divide(1.0, counts, out=np.zeros_like(counts),
                        where=counts > 0)
        self._tag_mean = (sp.diags(inv) @ q).tocsr()

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb, self.tag_emb]

    def make_optimizer(self):
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _fused_items(self) -> Tensor:
        """Item factors fused with their aspect centroid."""
        centroids = sparse_matmul(self._tag_mean, self.tag_emb)
        return self.item_emb + self.aspect_weight * centroids

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        fused = self._fused_items()
        u = gather_rows(self.user_emb, users)
        x_up = dot(u, gather_rows(fused, pos))
        x_uq = dot(u, gather_rows(fused, neg))
        bpr = (-1.0) * log(sigmoid(x_up - x_uq)).mean()
        reg = ((u ** 2).sum() + (gather_rows(self.item_emb, pos) ** 2).sum()
               + (gather_rows(self.item_emb, neg) ** 2).sum()) * (
                   self.l2 / len(users))
        return bpr + reg

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        from repro.tensor import no_grad
        with no_grad():
            fused = self._fused_items().data
        u = self.user_emb.data[np.asarray(user_ids, dtype=np.int64)]
        return u @ fused.T

    def export_scoring(self):
        from repro.tensor import no_grad
        with no_grad():
            fused = self._fused_items().data
        return {"kind": "dot", "user": self.user_emb.data.copy(),
                "item": np.array(fused)}
