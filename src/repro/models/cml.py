"""CML (Hsieh et al., 2017): collaborative metric learning.

Users and items are points in Euclidean space constrained to the unit
ball; training minimizes the triplet hinge
``[m + d^2(u, v_p) - d^2(u, v_q)]_+`` so positives end up closer than any
negative by the margin.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.manifolds.base import Euclidean, Manifold, neg_sq_dist_scores
from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter
from repro.tensor import Tensor, clamp_min, gather_rows


class UnitBall(Manifold):
    """Euclidean space with norms clipped to <= 1 (CML's constraint)."""

    name = "unit_ball"

    def project(self, x: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(x, axis=-1, keepdims=True)
        factor = np.where(norms > 1.0, 1.0 / np.maximum(norms, 1e-12), 1.0)
        return x * factor

    def egrad2rgrad(self, x, grad):
        return grad

    def retract(self, x, tangent):
        return self.project(x + tangent)

    def random(self, shape, rng, scale=0.1):
        return self.project(rng.normal(0.0, scale, size=shape))


class CML(Recommender):
    """Collaborative metric learning with norm clipping."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        ball = UnitBall()
        self.user_emb = Parameter.random((n_users, d), ball, self.rng,
                                         name="user")
        self.item_emb = Parameter.random((n_items, d), ball, self.rng,
                                         name="item")

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb]

    def make_optimizer(self):
        # Adam beats plain SGD decisively for the metric-learning family
        # at bench scale (tuned on validation data, as the paper's grid
        # search would have).
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _sq_dist(self, users, items) -> Tensor:
        u = gather_rows(self.user_emb, users)
        v = gather_rows(self.item_emb, items)
        return ((u - v) ** 2).sum(axis=-1)

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        d_pos = self._sq_dist(users, pos)
        d_neg = self._sq_dist(users, neg)
        return clamp_min(self.config.margin + d_pos - d_neg, 0.0).mean()

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        u = self.user_emb.data[np.asarray(user_ids, dtype=np.int64)]
        return neg_sq_dist_scores(u, self.item_emb.data)

    def export_scoring(self):
        return {"kind": "neg_sq_dist", "user": self.user_emb.data.copy(),
                "item": self.item_emb.data.copy()}
