"""LightGCN (He et al., 2020): simplified graph convolution for CF.

Embeddings are propagated over the symmetrically normalized bipartite
adjacency with no transforms or nonlinearities; the final representation
is the mean over layers 0..L, scored by inner product and trained with BPR.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import InteractionDataset, Split
from repro.models.base import Recommender, TrainConfig
from repro.optim import Adam, Parameter
from repro.tensor import (Tensor, cat, dot, gather_rows, log, no_grad,
                          sigmoid, sparse_matmul)


class LightGCN(Recommender):
    """Light graph convolution network."""

    def __init__(self, n_users: int, n_items: int,
                 config: Optional[TrainConfig] = None, n_layers: int = 3,
                 l2: float = 1e-4):
        super().__init__(n_users, n_items, config)
        d = self.config.dim
        self.n_layers = int(n_layers)
        self.l2 = float(l2)
        self.user_emb = Parameter(self.rng.normal(0, 0.1, (n_users, d)),
                                  name="user")
        self.item_emb = Parameter(self.rng.normal(0, 0.1, (n_items, d)),
                                  name="item")
        self._adj = None

    def prepare(self, dataset: InteractionDataset, split: Split) -> None:
        self._adj = self.symmetric_adjacency(dataset, split.train)

    def parameters(self) -> List[Parameter]:
        return [self.user_emb, self.item_emb]

    def make_optimizer(self):
        return Adam(self.parameters(), lr=self.config.lr,
                    max_grad_norm=self.config.max_grad_norm)

    def _propagated(self) -> Tuple[Tensor, Tensor]:
        x = cat([self.user_emb, self.item_emb], axis=0)
        acc = x
        cur = x
        for _ in range(self.n_layers):
            cur = sparse_matmul(self._adj, cur)
            acc = acc + cur
        final = acc * (1.0 / (self.n_layers + 1))
        return final[:self.n_users], final[self.n_users:]

    def batch_loss(self, users: np.ndarray, pos: np.ndarray,
                   neg: np.ndarray) -> Tensor:
        user_all, item_all = self._propagated()
        u = gather_rows(user_all, users)
        x_up = dot(u, gather_rows(item_all, pos))
        x_uq = dot(u, gather_rows(item_all, neg))
        bpr = (-1.0) * log(sigmoid(x_up - x_uq)).mean()
        reg = ((gather_rows(self.user_emb, users) ** 2).sum()
               + (gather_rows(self.item_emb, pos) ** 2).sum()
               + (gather_rows(self.item_emb, neg) ** 2).sum()) * (
                   self.l2 / len(users))
        return bpr + reg

    def score_users(self, user_ids: np.ndarray) -> np.ndarray:
        with no_grad():
            user_all, item_all = self._propagated()
        u = user_all.data[np.asarray(user_ids, dtype=np.int64)]
        return u @ item_all.data.T

    def export_scoring(self):
        with no_grad():
            user_all, item_all = self._propagated()
        return {"kind": "dot", "user": np.array(user_all.data),
                "item": np.array(item_all.data)}
