"""Recommendation models: the shared base plus the paper's 13 baselines.

Groups follow the paper's Section VI-A3:

* general: :class:`BPRMF`, :class:`NeuMF`
* metric learning: :class:`CML`, :class:`SML`, :class:`HyperML`
* tag-based: :class:`CMLF`, :class:`AMF`, :class:`TransC`, :class:`AGCN`
* graph-based: :class:`LightGCN`, :class:`HGCF`, :class:`GDCF`, :class:`HRCF`

The paper's own models live in :mod:`repro.core`
(:class:`~repro.core.LogiRec`, :class:`~repro.core.LogiRecPP`).
"""

from repro.models.base import Recommender, ServableModel, TrainConfig
from repro.models.bprmf import BPRMF
from repro.models.neumf import NeuMF
from repro.models.cml import CML
from repro.models.sml import SML
from repro.models.hyperml import HyperML
from repro.models.cmlf import CMLF
from repro.models.amf import AMF
from repro.models.transc import TransC
from repro.models.agcn import AGCN
from repro.models.lightgcn import LightGCN
from repro.models.hgcf import HGCF
from repro.models.gdcf import GDCF
from repro.models.hrcf import HRCF

__all__ = [
    "Recommender",
    "ServableModel",
    "TrainConfig",
    "BPRMF",
    "NeuMF",
    "CML",
    "SML",
    "HyperML",
    "CMLF",
    "AMF",
    "TransC",
    "AGCN",
    "LightGCN",
    "HGCF",
    "GDCF",
    "HRCF",
]
