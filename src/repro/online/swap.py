"""Hot index swap: versioned export plus the swap-under-load drills.

Two swap surfaces exist and both are exercised here:

* :meth:`repro.serve.RecommendService.swap_index` — single-process: one
  attribute rebind, old index demoted to the ``stale_index`` fallback;
* :meth:`repro.serve.frontend.ServingFrontend.swap_index` — the
  multi-worker warm/drain/cutover/teardown protocol.

:func:`run_swap_drill` is the acceptance drill for the front-end path:
it swaps a live, loaded front-end twice — first to a bit-identically
rebuilt index (proving the swap machinery itself perturbs nothing),
then to a grown fine-tuned index (proving cold-start users become
servable) — while an open-loop load generator offers traffic the whole
time, and asserts zero hard failures and zero dropped requests.

:func:`run_online_serve_drill` is the engine-level degraded-mode drill
behind ``repro robust inject serve --swap``: a fault plan fires *inside
the swap window* and the stale-index fallback (the pre-swap index) must
carry the traffic until a clean swap recovers.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

import numpy as np

from repro.data.dataset import InteractionDataset, Split


def full_split(dataset: InteractionDataset) -> Split:
    """Every interaction as train — the online index's seen mask.

    An online index has no held-out protocol: everything the user has
    touched (batch history plus stream) must be masked from their
    recommendations, and popularity should count all of it.
    """
    empty = np.zeros(0, dtype=np.int64)
    return Split(train=np.arange(dataset.n_interactions, dtype=np.int64),
                 valid=empty, test=empty)


def export_online_index(model, dataset: InteractionDataset,
                        split: Optional[Split] = None):
    """Freeze ``model`` into a servable index with a full seen mask."""
    from repro.serve.index import build_index
    return build_index(model, dataset,
                       split if split is not None else full_split(dataset))


def run_swap_drill(model_name: str = "BPRMF", dataset_name: str = "cd",
                   epochs: int = 2, finetune_epochs: int = 2,
                   n_workers: int = 2, qps: float = 150.0,
                   n_events: int = 40, n_new_users: int = 3,
                   n_new_items: int = 2, k: int = 10,
                   workdir=None, seed: int = 0) -> Dict[str, object]:
    """The tentpole drill: ingest → fine-tune → hot swap under load.

    Pass criteria surfaced in the returned record:

    * ``identity_preserved`` — responses for probe users are identical
      before and after swapping in a bit-identically rebuilt index
      (the swap machinery adds nothing and loses nothing);
    * ``zero_hard_failures`` / ``zero_dropped`` — across the whole
      loaded window covering both swaps, every offered request resolved
      (ok, degraded, or shed — never an exception, never silence);
    * ``cold_start_served`` — after the second swap, users that existed
      only in the stream get real index-backed rankings, not the
      unknown-user popularity fallback.
    """
    import tempfile

    from repro.data import load_dataset, temporal_split
    from repro.experiments.runner import build_model
    from repro.online.events import EventJournal, simulate_events
    from repro.online.finetune import incremental_finetune
    from repro.online.ingest import StreamIngestor
    from repro.serve.checkpoint import save_checkpoint
    from repro.serve.config import ServiceConfig
    from repro.serve.frontend import (FrontendConfig, ServingFrontend,
                                      run_open_loop)
    from repro.serve.index import build_index

    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro_swap_drill_")
    workdir = str(workdir)

    # -- offline base: train, checkpoint, index -------------------------
    dataset = load_dataset(dataset_name)
    split = temporal_split(dataset)
    model = build_model(model_name, dataset, seed=seed)
    model.config.epochs = int(epochs)
    model.fit(dataset, split)
    save_checkpoint(model, workdir + "/ck", dataset=dataset)
    index_v1 = build_index(model, dataset, split)
    index_v1_rebuilt = build_index(model, dataset, split)

    # -- stream: journal -> ingest (dataset grows in place) -------------
    journal = EventJournal(workdir + "/journal.jsonl")
    events = simulate_events(dataset, n_events, n_new_users, n_new_items,
                             seed=seed)
    journal.append(events)
    ingestor = StreamIngestor(dataset, journal)
    ingest_summary = ingestor.drain()

    # -- fine-tune the warm checkpoint over the grown universe ----------
    finetune = incremental_finetune(workdir + "/ck", dataset,
                                    epochs=finetune_epochs)
    index_v2 = export_online_index(finetune["model"], dataset)

    # -- serve under load; swap twice mid-stream ------------------------
    probe_users = list(range(min(5, index_v1.n_users)))
    cold_users = [dataset.n_users - 1 - j for j in range(n_new_users)] \
        if n_new_users else []
    config = FrontendConfig(
        n_workers=int(n_workers),
        service=ServiceConfig(k=int(k), cache_size=0),
        max_queue_depth=4096, default_deadline_ms=None, telemetry=False)
    rng = np.random.default_rng(seed)
    load_users = rng.integers(0, index_v1.n_users, size=256)

    record: Dict[str, object] = {
        "model": model_name, "dataset": dataset_name,
        "ingest": ingest_summary,
        "growth": finetune["growth"],
    }
    with ServingFrontend(index_v1, config) as frontend:
        outcome_box: Dict[str, object] = {}

        def _offer():
            # Deadlines off: the drill asserts zero shed outside the
            # swap window's degraded allowance, and this machine's
            # scheduling jitter should not flake the bit.
            outcome_box.update(run_open_loop(
                frontend, load_users, int(k), offered_qps=float(qps),
                duration_s=2.5, deadline_ms=None))

        loader = threading.Thread(target=_offer, daemon=True)
        loader.start()
        time.sleep(0.4)  # let traffic establish on v1

        def _answer(uid: int) -> Dict[str, object]:
            resolution = frontend.query(uid, k, deadline_ms=None)
            if resolution.get("status") != "ok":
                return {"items": [], "source": resolution.get("status"),
                        "fallback": True}
            return resolution["result"]

        before = {u: _answer(u) for u in probe_users}
        swap1 = frontend.swap_index(index_v1_rebuilt)
        after = {u: _answer(u) for u in probe_users}
        identity_preserved = all(
            before[u]["items"] == after[u]["items"]
            and not after[u]["fallback"] for u in probe_users)

        time.sleep(0.3)
        pre_cold = {u: _answer(u) for u in cold_users}
        swap2 = frontend.swap_index(index_v2)
        post_cold = {u: _answer(u) for u in cold_users}
        loader.join(timeout=10.0)
        counters = dict(frontend.counters)

    cold_start_served = all(
        pre_cold[u]["source"] == "popularity"      # unknown pre-swap
        and post_cold[u]["source"] == "index"      # servable post-swap
        and len(post_cold[u]["items"]) == int(k)
        for u in cold_users) if cold_users else True

    offered = int(outcome_box.get("n_offered", 0))
    # "degraded" is a subset of "completed" in the open-loop outcome.
    resolved = sum(int(outcome_box.get(key, 0)) for key in
                   ("completed", "shed", "draining", "hard_failures"))
    record.update({
        "swap1": swap1, "swap2": swap2,
        "identity_preserved": bool(identity_preserved),
        "cold_start_served": bool(cold_start_served),
        "load": outcome_box,
        "zero_hard_failures":
            int(outcome_box.get("hard_failures", 1)) == 0,
        "zero_dropped": offered == resolved,
        "index_swaps": counters.get("index_swaps", 0),
        "swap_stragglers": counters.get("swap_stragglers", 0),
        "passed": bool(identity_preserved and cold_start_served
                       and int(outcome_box.get("hard_failures", 1)) == 0
                       and offered == resolved),
    })
    return record


def run_online_serve_drill(model_name: str = "BPRMF",
                           dataset_name: str = "cd", epochs: int = 2,
                           finetune_epochs: int = 2, n_requests: int = 60,
                           n_events: int = 30, n_new_users: int = 2,
                           n_new_items: int = 2, k: int = 10,
                           workdir=None,
                           seed: int = 0) -> Dict[str, object]:
    """Degraded-mode serving through a faulty swap, then clean recovery.

    Three phases against one :class:`RecommendService` configured with
    the ``stale_index`` fallback:

    1. serve on the v1 index — all responses from the primary;
    2. swap in a v2 index wrapped to fail *every* scoring call (the
       fault fires mid-swap-window) — the demoted v1 index must carry
       all traffic as the ``stale_index`` fallback, zero invalid
       responses;
    3. swap in the clean v2 — service recovers to primary scoring.
    """
    import tempfile

    from repro.data import load_dataset, temporal_split
    from repro.experiments.runner import build_model
    from repro.online.events import EventJournal, simulate_events
    from repro.online.finetune import incremental_finetune
    from repro.online.ingest import StreamIngestor
    from repro.robust.faults import FaultPlan, FaultSpec, FaultyIndex
    from repro.robust.policies import BreakerPolicy, RetryPolicy
    from repro.serve.checkpoint import save_checkpoint
    from repro.serve.config import ServiceConfig
    from repro.serve.engine import RecommendService
    from repro.serve.index import build_index

    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro_online_drill_")
    workdir = str(workdir)

    dataset = load_dataset(dataset_name)
    split = temporal_split(dataset)
    model = build_model(model_name, dataset, seed=seed)
    model.config.epochs = int(epochs)
    model.fit(dataset, split)
    save_checkpoint(model, workdir + "/ck", dataset=dataset)
    index_v1 = build_index(model, dataset, split)

    journal = EventJournal(workdir + "/journal.jsonl")
    journal.append(simulate_events(dataset, n_events, n_new_users,
                                   n_new_items, seed=seed))
    StreamIngestor(dataset, journal).drain()
    finetune = incremental_finetune(workdir + "/ck", dataset,
                                    epochs=finetune_epochs)
    index_v2 = export_online_index(finetune["model"], dataset)

    config = ServiceConfig(
        k=int(k), cache_size=0, fallback="stale_index",
        retry=RetryPolicy(retries=0, backoff_s=0.0),
        breaker=BreakerPolicy())
    service = RecommendService(index_v1, config=config)
    rng = np.random.default_rng(seed)
    users = rng.integers(0, index_v1.n_users, size=int(n_requests))

    def _valid(responses) -> int:
        return sum(1 for r in responses
                   if len(r["items"]) == int(k)
                   and len(set(r["items"])) == int(k))

    phase1 = service.query_batch(users)
    plan = FaultPlan([FaultSpec("score_error", rate=1.0)], seed=seed)
    service.swap_index(FaultyIndex(index_v2, plan))
    phase2 = service.query_batch(users)
    stale_hits = service.stats["stale_index_hits"]
    service.swap_index(index_v2, keep_stale_fallback=False)
    phase3 = service.query_batch(users)

    record = {
        "model": model_name, "dataset": dataset_name,
        "n_requests": int(n_requests),
        "phase1_valid": _valid(phase1),
        "phase2_valid": _valid(phase2),
        "phase3_valid": _valid(phase3),
        "phase1_primary": sum(1 for r in phase1
                              if r["source"] == "index"),
        "phase2_stale": sum(1 for r in phase2
                            if r["source"] == "stale_index"),
        "phase3_primary": sum(1 for r in phase3
                              if r["source"] == "index"),
        "stale_index_hits": int(stale_hits),
        "index_swaps": service.stats.get("index_swaps", 0),
        "faults_injected": plan.counts(),
    }
    record["all_valid"] = (record["phase1_valid"] == record["phase2_valid"]
                           == record["phase3_valid"] == int(n_requests))
    record["degraded_mode_held"] = record["phase2_stale"] > 0
    record["recovered"] = record["phase3_primary"] == int(n_requests)
    record["passed"] = bool(record["all_valid"]
                            and record["degraded_mode_held"]
                            and record["recovered"])
    return record
