"""The online-learning driver behind ``repro online ...``.

:class:`OnlineLoop` owns a working directory and wires the pieces into
the ingest → fine-tune → swap cycle, restartable at every step because
all state lives on disk:

.. code-block:: text

    <workdir>/
      journal.jsonl         append-only event log (EventJournal)
      state.json            replay cursor + current index version
      dataset.npz           the live dataset snapshot (+ taxonomy.json)
      checkpoint/           warm-start checkpoint (PR4 format)
      index.v<N>/           versioned RetrievalIndex exports
      CURRENT               name of the live index version

The swap verb is a two-level operation: on disk it atomically flips
``CURRENT`` to the freshly exported version (readers that follow the
pointer never observe a half-written index — versions are immutable
once exported); in process, a live
:class:`~repro.serve.RecommendService` or
:class:`~repro.serve.frontend.ServingFrontend` attached via
:meth:`OnlineLoop.attach` is hot-swapped through its own
``swap_index`` protocol.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.online.events import EventJournal, simulate_events
from repro.online.finetune import incremental_finetune
from repro.online.ingest import StreamIngestor
from repro.online.swap import export_online_index, full_split

CURRENT_FILE = "CURRENT"
STATE_FILE = "state.json"


class OnlineLoop:
    """Filesystem-backed ingest → fine-tune → swap orchestration."""

    def __init__(self, workdir, model_name: str = "BPRMF",
                 dataset_name: str = "cd", seed: int = 0):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.model_name = model_name
        self.dataset_name = dataset_name
        self.seed = int(seed)
        self.journal = EventJournal(self.workdir / "journal.jsonl")
        self._dataset = None
        self._ingestor: Optional[StreamIngestor] = None
        self._live = []   # attached services/frontends to hot-swap
        self.state: Dict[str, object] = self._load_state()

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def _load_state(self) -> Dict[str, object]:
        path = self.workdir / STATE_FILE
        if path.is_file():
            with open(path) as fh:
                return json.load(fh)
        return {"journal_offset": 0, "index_version": 0,
                "model": self.model_name, "dataset": self.dataset_name,
                "last_append_wall": None}

    def _save_state(self) -> None:
        tmp = self.workdir / (STATE_FILE + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(self.state, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.workdir / STATE_FILE)

    @property
    def checkpoint_dir(self) -> Path:
        return self.workdir / "checkpoint"

    def index_dir(self, version: int) -> Path:
        return self.workdir / f"index.v{int(version)}"

    def current_version(self) -> int:
        path = self.workdir / CURRENT_FILE
        if not path.is_file():
            return 0
        return int(path.read_text().strip().rsplit(".v", 1)[1])

    def current_index_path(self) -> Optional[Path]:
        version = self.current_version()
        return self.index_dir(version) if version else None

    # ------------------------------------------------------------------
    # Dataset snapshot
    # ------------------------------------------------------------------
    @property
    def dataset(self):
        if self._dataset is None:
            from repro.data import load_dataset
            from repro.data.io import load_dataset_file
            snapshot = self.workdir / "dataset.npz"
            if snapshot.is_file():
                self._dataset = load_dataset_file(snapshot)
            else:
                self._dataset = load_dataset(self.dataset_name)
        return self._dataset

    def _save_dataset(self) -> None:
        from repro.data.io import save_dataset
        save_dataset(self.dataset, self.workdir / "dataset")

    @property
    def ingestor(self) -> StreamIngestor:
        if self._ingestor is None:
            self._ingestor = StreamIngestor(self.dataset, self.journal)
            self._ingestor.offset = int(self.state["journal_offset"])
        return self._ingestor

    def attach(self, service) -> None:
        """Register a live service/front-end for hot swaps.

        Anything with a ``swap_index(new_index)`` method qualifies
        (:class:`RecommendService`, :class:`ServingFrontend`).
        """
        self._live.append(service)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def bootstrap(self, epochs: int = 3) -> Dict[str, object]:
        """Train the base model and export index v1 (idempotent)."""
        from repro.data import temporal_split
        from repro.experiments.runner import build_model
        from repro.serve.checkpoint import save_checkpoint

        if self.current_version() and self.checkpoint_dir.is_dir():
            return {"bootstrapped": False,
                    "version": self.current_version()}
        dataset = self.dataset
        split = temporal_split(dataset)
        model = build_model(self.model_name, dataset, seed=self.seed)
        model.config.epochs = int(epochs)
        with obs.trace("online/bootstrap", model=self.model_name):
            model.fit(dataset, split)
        save_checkpoint(model, self.checkpoint_dir, dataset=dataset)
        index = export_online_index(model, dataset, full_split(dataset))
        version = self._export(index)
        self._flip_current(version)
        self._save_dataset()
        self._save_state()
        return {"bootstrapped": True, "version": version,
                "final_loss": float(model.loss_history[-1])
                if model.loss_history else None}

    def append_events(self, events) -> Dict[str, object]:
        """Append events to the journal (producer side)."""
        end = self.journal.append(list(events))
        self.state["last_append_wall"] = time.time()
        self._save_state()
        return {"n_events": len(list(events)), "journal_bytes": end}

    def simulate(self, n_events: int, n_new_users: int = 0,
                 n_new_items: int = 0) -> Dict[str, object]:
        """Append a synthetic, ingest-valid event stream (demo/CI)."""
        events = simulate_events(self.dataset, n_events, n_new_users,
                                 n_new_items, seed=self.seed)
        record = self.append_events(events)
        record["n_new_users"] = n_new_users
        record["n_new_items"] = n_new_items
        return record

    def ingest(self, max_events: Optional[int] = None
               ) -> Dict[str, object]:
        """Fold pending journal events into the dataset snapshot."""
        summary = (self.ingestor.drain() if max_events is None
                   else self.ingestor.poll(max_events))
        self.state["journal_offset"] = int(self.ingestor.offset)
        if summary["n_appended"]:
            self._save_dataset()
        self._save_state()
        if obs.enabled():
            staleness = self.staleness_s()
            if staleness is not None:
                obs.gauge_set("online/staleness_s", staleness)
        return summary

    def finetune(self, epochs: int = 3, tail_frac: float = 0.25,
                 half_life: Optional[float] = None) -> Dict[str, object]:
        """Fine-tune the warm checkpoint; export the next index version."""
        if not self.checkpoint_dir.is_dir():
            raise FileNotFoundError(
                f"no checkpoint at {self.checkpoint_dir}; run bootstrap "
                f"first (repro online run)")
        record = incremental_finetune(
            self.checkpoint_dir, self.dataset, epochs=epochs,
            tail_frac=tail_frac, half_life=half_life,
            save_to=self.checkpoint_dir)
        index = export_online_index(record["model"], self.dataset)
        version = self._export(index)
        out = {"version": version, "growth": record["growth"],
               "n_tail": record["n_tail"],
               "half_life": record["half_life"],
               "final_loss": record["final_loss"]}
        return out

    def _export(self, index) -> int:
        version = int(self.state["index_version"]) + 1
        index.meta["online_version"] = version
        index.save(self.index_dir(version))
        self.state["index_version"] = version
        self._save_state()
        return version

    def swap(self, version: Optional[int] = None) -> Dict[str, object]:
        """Flip ``CURRENT`` to ``version`` and hot-swap live services."""
        from repro.serve.index import load_index

        if version is None:
            version = int(self.state["index_version"])
        path = self.index_dir(version)
        index = load_index(path)  # validates checksum before the flip
        t0 = time.monotonic()
        self._flip_current(version)
        swaps: List[Dict[str, object]] = [
            dict(live.swap_index(index)) for live in self._live]
        latency_ms = (time.monotonic() - t0) * 1e3
        freshness_s = None
        if self.state.get("last_append_wall"):
            freshness_s = time.time() - float(
                self.state["last_append_wall"])
        if obs.enabled():
            obs.count("online/swaps")
            obs.observe("online/swap_latency_ms", latency_ms)
            if freshness_s is not None:
                obs.observe("online/freshness_s", freshness_s)
        return {"version": version, "path": str(path),
                "swap_latency_ms": latency_ms,
                "event_to_servable_s": freshness_s,
                "live_swaps": swaps}

    def _flip_current(self, version: int) -> None:
        tmp = self.workdir / (CURRENT_FILE + ".tmp")
        tmp.write_text(self.index_dir(version).name + "\n")
        os.replace(tmp, self.workdir / CURRENT_FILE)

    # ------------------------------------------------------------------
    # Full cycle + health
    # ------------------------------------------------------------------
    def run_cycle(self, n_events: int = 50, n_new_users: int = 2,
                  n_new_items: int = 2, bootstrap_epochs: int = 3,
                  finetune_epochs: int = 3, tail_frac: float = 0.25,
                  probe_k: int = 10) -> Dict[str, object]:
        """One full ingest → fine-tune → swap cycle with simulated events.

        Bootstraps on first run.  Returns the per-verb records plus the
        cycle-level health metrics: event→servable freshness and the
        cold-start hit rate (fraction of streamed-in new users served
        from the index, not a fallback, after the swap).
        """
        boot = self.bootstrap(epochs=bootstrap_epochs)
        old_users = self.dataset.n_users
        sim = self.simulate(n_events, n_new_users, n_new_items)
        ingest = self.ingest()
        finetune = self.finetune(epochs=finetune_epochs,
                                 tail_frac=tail_frac)
        swap = self.swap(finetune["version"])
        cold = self.cold_start_probe(old_users, k=probe_k)
        if obs.enabled() and cold["n_probed"]:
            obs.gauge_set("online/cold_start_hit_rate", cold["hit_rate"])
        return {"bootstrap": boot, "simulate": sim, "ingest": ingest,
                "finetune": finetune, "swap": swap, "cold_start": cold,
                "events_ingested":
                    self.ingestor.counters["events_ingested"],
                "staleness_s": self.staleness_s()}

    def cold_start_probe(self, first_new_user: int,
                         k: int = 10) -> Dict[str, object]:
        """Query users ``[first_new_user, n_users)`` on the live index."""
        from repro.serve.config import ServiceConfig
        from repro.serve.engine import RecommendService
        from repro.serve.index import load_index

        path = self.current_index_path()
        if path is None:
            return {"n_probed": 0, "n_hit": 0, "hit_rate": None}
        service = RecommendService(load_index(path),
                                   ServiceConfig(k=int(k), cache_size=0))
        probes = list(range(int(first_new_user), self.dataset.n_users))
        responses = service.query_batch(probes, k=int(k)) if probes \
            else []
        n_hit = sum(1 for r in responses if r["source"] == "index")
        return {"n_probed": len(probes), "n_hit": int(n_hit),
                "hit_rate": (n_hit / len(probes)) if probes else None}

    def staleness_s(self) -> Optional[float]:
        """Seconds of journal lag behind the live dataset (None = fresh)."""
        lag = self.ingestor.lag_bytes()
        if lag == 0:
            return 0.0
        if self.state.get("last_append_wall") is None:
            return None
        return time.time() - float(self.state["last_append_wall"])

    def status(self) -> Dict[str, object]:
        return {
            "workdir": str(self.workdir),
            "model": self.model_name,
            "dataset": self.dataset_name,
            "journal_bytes": self.journal.size(),
            "journal_offset": int(self.state["journal_offset"]),
            "lag_bytes": self.ingestor.lag_bytes(),
            "index_version": int(self.state["index_version"]),
            "current": self.current_version(),
            "n_users": self.dataset.n_users,
            "n_items": self.dataset.n_items,
            "n_interactions": self.dataset.n_interactions,
        }
