"""Streaming ingest: fold journal events into the live dataset.

:class:`StreamIngestor` is the bridge between the append-only
:class:`~repro.online.events.EventJournal` and the in-memory
:class:`~repro.data.InteractionDataset`.  Each :meth:`poll` reads the
journal from the replay cursor, pre-filters duplicates per policy, and
folds the batch in through
:meth:`~repro.data.InteractionDataset.append_interactions` — which
validates every ingest invariant *before* mutating, so a poison batch
(out-of-order timestamps, shrunk universe) raises
:class:`~repro.data.dataset.StreamError` and leaves both the dataset
and the replay cursor untouched.  The cursor advances only on success:
crash-and-retry re-reads exactly the events that were not applied.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.data.dataset import InteractionDataset, StreamError
from repro.online.events import EventJournal

DUPLICATE_POLICIES = ("skip", "error")


class StreamIngestor:
    """Replays an :class:`EventJournal` into an :class:`InteractionDataset`.

    Parameters
    ----------
    dataset:
        The live dataset, mutated in place by successful polls.
    journal:
        The event log to follow.
    on_duplicate:
        ``"skip"`` (default) silently drops events whose ``(user,
        item)`` pair is already interacted (re-sends and at-least-once
        delivery are normal in streams); ``"error"`` surfaces them as
        :class:`StreamError` — the strict mode the duplicate-injection
        drill runs under.
    """

    def __init__(self, dataset: InteractionDataset, journal: EventJournal,
                 on_duplicate: str = "skip"):
        if on_duplicate not in DUPLICATE_POLICIES:
            raise ValueError(
                f"unknown duplicate policy {on_duplicate!r}; "
                f"known: {list(DUPLICATE_POLICIES)}")
        self.dataset = dataset
        self.journal = journal
        self.on_duplicate = on_duplicate
        self.offset = 0
        self._seen = {(int(u), int(i))
                      for u, i in zip(dataset.user_ids, dataset.item_ids)}
        self.counters: Dict[str, int] = {
            "polls": 0, "events_read": 0, "events_ingested": 0,
            "duplicates_skipped": 0, "new_users": 0, "new_items": 0}

    def lag_bytes(self) -> int:
        """Journal bytes not yet applied (freshness in log terms)."""
        return max(0, self.journal.size() - self.offset)

    def poll(self, max_events: Optional[int] = None) -> Dict[str, object]:
        """Apply one batch of journal events; returns a summary dict.

        The replay cursor advances past exactly the events that were
        applied (or skipped as duplicates under the ``"skip"`` policy).
        On :class:`StreamError` — from a corrupt record, a disordered
        batch, or a duplicate under ``"error"`` — nothing advances.
        """
        self.counters["polls"] += 1
        events, next_offset = self.journal.read(self.offset, max_events)
        if not events:
            return {"n_read": 0, "n_appended": 0, "n_duplicates": 0,
                    "offset": self.offset, "n_new_users": 0,
                    "n_new_items": 0}
        self.counters["events_read"] += len(events)

        kept = events
        n_duplicates = 0
        if self.on_duplicate == "skip":
            kept = []
            batch_seen = set(self._seen)
            for event in events:
                pair = (int(event.user_id), int(event.item_id))
                if pair in batch_seen:
                    n_duplicates += 1
                else:
                    batch_seen.add(pair)
                    kept.append(event)
        # Under "error", duplicates flow through to append_interactions,
        # whose pre-mutation checks raise the typed StreamError.

        if kept:
            users = np.array([e.user_id for e in kept], dtype=np.int64)
            items = np.array([e.item_id for e in kept], dtype=np.int64)
            times = np.array([e.timestamp for e in kept], dtype=np.int64)
            summary = self.dataset.append_interactions(users, items, times)
        else:
            summary = {"n_appended": 0, "n_new_users": 0, "n_new_items": 0}

        # Success: advance the cursor and fold the batch into the seen
        # set (duplicate skips advance too — they are consumed).
        self.offset = next_offset
        for event in kept:
            self._seen.add((int(event.user_id), int(event.item_id)))
        self.counters["events_ingested"] += summary["n_appended"]
        self.counters["duplicates_skipped"] += n_duplicates
        self.counters["new_users"] += summary["n_new_users"]
        self.counters["new_items"] += summary["n_new_items"]
        if obs.enabled():
            obs.count("online/events_ingested", summary["n_appended"])
            if n_duplicates:
                obs.count("online/duplicates_skipped", n_duplicates)
            obs.gauge_set("online/ingest_lag_bytes",
                          float(self.lag_bytes()))
        return {"n_read": len(events), "n_appended": summary["n_appended"],
                "n_duplicates": n_duplicates, "offset": self.offset,
                "n_new_users": summary["n_new_users"],
                "n_new_items": summary["n_new_items"]}

    def drain(self, batch_size: int = 1024) -> Dict[str, object]:
        """Poll until the journal is exhausted; returns totals."""
        totals = {"n_read": 0, "n_appended": 0, "n_duplicates": 0,
                  "n_new_users": 0, "n_new_items": 0}
        while True:
            batch = self.poll(max_events=batch_size)
            if batch["n_read"] == 0:
                break
            for key in totals:
                totals[key] += batch[key]
        totals["offset"] = self.offset
        return totals
