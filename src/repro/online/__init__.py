"""``repro.online`` — streaming ingest, incremental fine-tune, hot swap.

The online-learning subsystem closes the loop from observed interaction
to servable recommendation without a full retrain or a restart:

* :mod:`repro.online.events` — :class:`InteractionEvent` and the
  append-only JSONL :class:`EventJournal` with byte-offset replay
  cursors (plus :func:`simulate_events` for demos and CI);
* :mod:`repro.online.ingest` — :class:`StreamIngestor`, folding journal
  batches into the live :class:`~repro.data.InteractionDataset` under
  the :class:`~repro.data.StreamError` invariants;
* :mod:`repro.online.finetune` — warm-start incremental fine-tuning on
  the recency-weighted stream tail, growing embedding tables for
  cold-start users/items with a tag prior, including the
  recency-weighted variant of LogiRec++'s consistency weighting;
* :mod:`repro.online.swap` — versioned index export and the
  swap-under-load / degraded-mode drills;
* :mod:`repro.online.loop` — :class:`OnlineLoop`, the filesystem-backed
  driver behind ``repro online ingest|finetune|swap|run``.
"""

from repro.online.events import (EventJournal, InteractionEvent,
                                 simulate_events)
from repro.online.finetune import (incremental_finetune,
                                   recency_tail_split,
                                   recency_weighted_consistency,
                                   recency_weights, tag_prior_neighbors,
                                   weighted_tag_frequencies)
from repro.online.ingest import DUPLICATE_POLICIES, StreamIngestor
from repro.online.loop import OnlineLoop
from repro.online.swap import (export_online_index, full_split,
                               run_online_serve_drill, run_swap_drill)

__all__ = [
    "DUPLICATE_POLICIES",
    "EventJournal",
    "InteractionEvent",
    "OnlineLoop",
    "StreamIngestor",
    "export_online_index",
    "full_split",
    "incremental_finetune",
    "recency_tail_split",
    "recency_weighted_consistency",
    "recency_weights",
    "run_online_serve_drill",
    "run_swap_drill",
    "simulate_events",
    "tag_prior_neighbors",
    "weighted_tag_frequencies",
]
