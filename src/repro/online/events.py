"""Append-only interaction event log for streaming ingest.

The journal is a JSONL file of :class:`InteractionEvent` records with
compact keys (``{"u": user, "i": item, "t": timestamp}``).  The format
is deliberately boring: append-only, one event per line, byte offsets
as replay cursors.  :meth:`EventJournal.read` resumes from any offset
returned by a previous read/append, so the ingest loop survives process
restarts by persisting nothing but an integer.

Robustness contract:

* a malformed line (bad JSON, missing/non-integer fields) raises
  :class:`~repro.data.dataset.StreamError` carrying the byte offset of
  the poison record — the cursor does not advance past it, so the
  corruption is inspectable and the drill in
  :func:`repro.robust.drills.run_stream_drill` can assert containment;
* a trailing line without a newline is treated as an in-progress append
  (torn write), not an error: the reader stops before it and picks it
  up once the writer finishes the line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.data.dataset import InteractionDataset, StreamError


@dataclass(frozen=True)
class InteractionEvent:
    """One observed interaction: user ``user_id`` touched ``item_id``."""

    user_id: int
    item_id: int
    timestamp: int

    def to_record(self) -> dict:
        return {"u": int(self.user_id), "i": int(self.item_id),
                "t": int(self.timestamp)}

    @classmethod
    def from_record(cls, record: dict) -> "InteractionEvent":
        try:
            return cls(user_id=int(record["u"]), item_id=int(record["i"]),
                       timestamp=int(record["t"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamError(
                f"event record {record!r} is missing or has non-integer "
                f"u/i/t fields: {exc}") from exc


class EventJournal:
    """Append-only JSONL event log with byte-offset replay cursors."""

    def __init__(self, path):
        self.path = Path(path)

    def size(self) -> int:
        """Current journal size in bytes (0 when absent)."""
        return self.path.stat().st_size if self.path.is_file() else 0

    def append(self, events: List[InteractionEvent]) -> int:
        """Append events; returns the end offset (next read cursor)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as fh:
            for event in events:
                line = json.dumps(event.to_record(),
                                  separators=(",", ":"))
                fh.write(line.encode("utf-8") + b"\n")
            fh.flush()
            return fh.tell()

    def read(self, offset: int = 0, max_events: Optional[int] = None
             ) -> Tuple[List[InteractionEvent], int]:
        """Events from ``offset`` onward, plus the next cursor.

        Only *complete* lines are consumed: the returned offset always
        points at a line boundary, so it is safe to persist as a replay
        cursor.  A malformed complete line raises :class:`StreamError`
        with its byte offset; the cursor semantics guarantee the caller
        still holds the offset *of* the poison line.
        """
        if not self.path.is_file():
            return [], int(offset)
        events: List[InteractionEvent] = []
        with open(self.path, "rb") as fh:
            fh.seek(int(offset))
            cursor = int(offset)
            while max_events is None or len(events) < max_events:
                line = fh.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    break  # torn write in progress; retry later
                stripped = line.strip()
                if stripped:
                    try:
                        record = json.loads(stripped)
                    except (json.JSONDecodeError,
                            UnicodeDecodeError) as exc:
                        raise StreamError(
                            f"corrupt journal record at byte {cursor} "
                            f"of {self.path}: {exc}") from exc
                    if not isinstance(record, dict):
                        raise StreamError(
                            f"corrupt journal record at byte {cursor} "
                            f"of {self.path}: not an object")
                    events.append(InteractionEvent.from_record(record))
                cursor += len(line)
        return events, cursor


def simulate_events(dataset: InteractionDataset, n_events: int,
                    n_new_users: int = 0, n_new_items: int = 0,
                    seed: int = 0, start_timestamp: Optional[int] = None
                    ) -> List[InteractionEvent]:
    """A synthetic, ingest-valid event stream for demos, CI, and tests.

    Generated events satisfy every :meth:`InteractionDataset.\
append_interactions` invariant by construction: timestamps are strictly
    increasing from after the dataset's newest interaction, and no
    ``(user, item)`` pair repeats — within the stream or against the
    existing interactions.  Each of the ``n_new_users`` /``n_new_items``
    cold-start entities (ids allocated densely above the current
    universe) appears in at least one event.
    """
    if n_events < n_new_users + n_new_items:
        raise ValueError(
            f"n_events={n_events} cannot cover {n_new_users} new users "
            f"+ {n_new_items} new items with one event each")
    rng = np.random.default_rng(seed)
    if start_timestamp is None:
        start_timestamp = (int(dataset.timestamps.max()) + 1
                           if dataset.n_interactions else 0)
    seen = {(int(u), int(i))
            for u, i in zip(dataset.user_ids, dataset.item_ids)}
    n_users = dataset.n_users + n_new_users
    n_items = dataset.n_items + n_new_items

    pairs: List[Tuple[int, int]] = []

    def _add_pair(user: int, item: int) -> bool:
        if (user, item) in seen:
            return False
        seen.add((user, item))
        pairs.append((user, item))
        return True

    # Cold-start coverage first: every new user and new item gets one.
    for j in range(n_new_users):
        user = dataset.n_users + j
        while not _add_pair(user, int(rng.integers(0, n_items))):
            pass
    for j in range(n_new_items):
        item = dataset.n_items + j
        while not _add_pair(int(rng.integers(0, n_users)), item):
            pass
    while len(pairs) < n_events:
        _add_pair(int(rng.integers(0, n_users)),
                  int(rng.integers(0, n_items)))

    # Shuffle so cold-start events interleave with warm traffic, then
    # stamp strictly increasing timestamps in stream order.
    order = rng.permutation(len(pairs))
    return [InteractionEvent(user_id=pairs[j][0], item_id=pairs[j][1],
                             timestamp=start_timestamp + rank)
            for rank, j in enumerate(order)]
