"""Incremental fine-tuning on the recency-weighted stream tail.

Warm-start path for online learning: load the last full-training
checkpoint, grow its embedding tables over the streamed-in users/items
(:meth:`~repro.models.base.Recommender.resize_universe`, with tag-prior
initialization for new items that share tags with known ones), and
fine-tune for a few epochs on only the most recent slice of the
interaction log.

Recency weighting appears twice:

* the **tail split** (:func:`recency_tail_split`) restricts training to
  the newest ``tail_frac`` of interactions — the stream tail;
* for LogiRec++, the data-driven consistency term CON_u (Eq. 12) is
  recomputed with **recency-weighted tag frequencies**
  (:func:`recency_weighted_consistency`): each interaction contributes
  its exponential-decay weight ``0.5 ** (age / half_life)`` to the tag
  counts of Eq. 11 instead of 1.  With all weights equal the weighted
  TF reduces exactly to :func:`repro.core.weighting.tag_frequencies`,
  so offline and online consistency agree on a static log.  GR_u
  (Eq. 13) needs no variant — it reads the *current* embedding, which
  the warm start carries forward.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.data.dataset import InteractionDataset, Split
from repro.taxonomy import LogicalRelations


def recency_weights(timestamps: np.ndarray,
                    half_life: float) -> np.ndarray:
    """Exponential-decay weights: ``0.5 ** (age / half_life)``.

    Age is measured from the newest timestamp in ``timestamps``, so the
    freshest interaction always weighs 1.0 and an interaction one
    half-life older weighs 0.5.
    """
    if half_life <= 0:
        raise ValueError(f"half_life must be positive, got {half_life}")
    t = np.asarray(timestamps, dtype=np.float64)
    if len(t) == 0:
        return np.zeros(0, dtype=np.float64)
    return 0.5 ** ((t.max() - t) / float(half_life))


def recency_tail_split(dataset: InteractionDataset,
                       tail_frac: float = 0.25,
                       min_events: int = 1) -> Split:
    """A :class:`Split` whose train set is the newest slice of the log.

    The tail is the last ``tail_frac`` of interactions by timestamp
    (stable sort, so append order breaks ties — exactly the journal
    order for streamed events).  Valid/test are empty: fine-tuning is
    not an evaluation protocol, and the caller measures quality against
    whatever offline split it maintains.
    """
    if not 0.0 < tail_frac <= 1.0:
        raise ValueError(f"tail_frac must be in (0, 1], got {tail_frac}")
    n = dataset.n_interactions
    order = np.argsort(dataset.timestamps, kind="stable")
    n_tail = min(n, max(int(min_events), int(round(tail_frac * n))))
    empty = np.zeros(0, dtype=np.int64)
    return Split(train=order[n - n_tail:], valid=empty, test=empty)


def weighted_tag_frequencies(tags: np.ndarray,
                             weights: np.ndarray) -> Dict[int, float]:
    """Recency-weighted Eq. 11: TF(t) = log(c_t + 1) / log(W_u).

    ``tags`` is the user's tag multiset and ``weights`` the per-entry
    recency weight (one per tag occurrence, inherited from the carrying
    interaction).  ``c_t`` is the weighted count of tag ``t`` and
    ``W_u`` the weighted multiset size; with unit weights this is
    bit-for-bit :func:`repro.core.weighting.tag_frequencies`.
    """
    total = float(np.sum(weights))
    if len(tags) <= 1 or total <= 1.0:
        # Mirrors the |T_u| <= 1 degenerate case of the unweighted TF:
        # too little (effective) evidence to assert any exclusion.
        return {}
    denom = np.log(total)
    out: Dict[int, float] = {}
    unique = np.unique(tags)
    for t in unique:
        c = float(np.sum(weights[tags == t]))
        out[int(t)] = float(np.log(c + 1.0) / denom)
    return out


def recency_weighted_consistency(dataset: InteractionDataset,
                                 indices: np.ndarray,
                                 weights: np.ndarray,
                                 eta: int = 4) -> np.ndarray:
    """Eq. 12 CON_u with recency-weighted tag frequencies.

    ``indices`` selects the interactions in play (the stream tail) and
    ``weights`` is the aligned per-interaction recency weight.  The
    exclusive-pair penalty and level factor ``exp(eta - k)`` are
    unchanged from :func:`repro.core.weighting.consistency_weights`;
    only the TF inputs decay with age, so a user whose conflicting
    interests are all stale drifts back toward CON = 1.
    """
    indices = np.asarray(indices, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if len(indices) != len(weights):
        raise ValueError("indices and weights must align")
    relations: LogicalRelations = dataset.relations
    con = np.ones(dataset.n_users, dtype=np.float64)
    if len(relations.exclusion) == 0 or len(indices) == 0:
        return con
    pairs = relations.exclusion
    levels = (relations.exclusion_levels
              if len(relations.exclusion_levels) == len(pairs)
              else np.full(len(pairs), eta, dtype=np.int64))
    level_factor = np.exp(eta - levels.astype(np.float64))

    users = dataset.user_ids[indices]
    items = dataset.item_ids[indices]
    per_item_tags = dataset.tags_of_items(items)
    # Expand to one (tag, weight) entry per tag occurrence per
    # interaction — the weighted analogue of user_tag_lists.
    by_user: Dict[int, list] = {}
    for u, tags, w in zip(users, per_item_tags, weights):
        if len(tags):
            by_user.setdefault(int(u), []).append(
                (tags.astype(np.int64), np.full(len(tags), w)))
    for u, chunks in by_user.items():
        tags = np.concatenate([c[0] for c in chunks])
        tag_w = np.concatenate([c[1] for c in chunks])
        tf = weighted_tag_frequencies(tags, tag_w)
        if not tf:
            continue
        present = set(tf)
        penalty = 0.0
        for (t_i, t_j), factor in zip(pairs, level_factor):
            if int(t_i) in present and int(t_j) in present:
                penalty += tf[int(t_i)] * tf[int(t_j)] * factor
        con[u] = np.exp(-penalty)
    return con


def tag_prior_neighbors(dataset: InteractionDataset, old_n_items: int,
                        max_neighbors: int = 5
                        ) -> Dict[int, np.ndarray]:
    """Warm items sharing tags with each cold item, most-overlap first.

    The tag prior for cold-start item initialization: a new item's
    embedding starts near items carrying the same tags (siblings in the
    taxonomy sense), instead of at a random point the fine-tune epochs
    would have to drag across the manifold.  Items with no tag overlap
    get no entry (they fall back to the centroid/origin prior in
    :meth:`~repro.models.base.Recommender.resize_universe`).
    """
    out: Dict[int, np.ndarray] = {}
    q = dataset.item_tags.tocsr()
    if old_n_items >= dataset.n_items or q.shape[1] == 0:
        return out
    warm = q[:old_n_items]
    for item in range(old_n_items, dataset.n_items):
        row = q[item]
        if row.nnz == 0:
            continue
        overlap = np.asarray(warm @ row.T.todense()).ravel()
        if not np.any(overlap > 0):
            continue
        ranked = np.argsort(-overlap, kind="stable")
        ranked = ranked[overlap[ranked] > 0][:max_neighbors]
        out[item] = ranked.astype(np.int64)
    return out


def incremental_finetune(checkpoint_dir, dataset: InteractionDataset, *,
                         epochs: int = 3, tail_frac: float = 0.25,
                         half_life: Optional[float] = None,
                         init_scale: float = 0.01,
                         supervisor=None,
                         save_to=None) -> Dict[str, object]:
    """Warm-start from a checkpoint, grow, and fine-tune on the tail.

    Loads the checkpoint *without* a dataset (so it comes back at its
    checkpointed universe sizes, unprepared), grows the embedding
    tables to the streamed-in universe with the tag prior, then
    fine-tunes ``epochs`` epochs on the recency tail — under the
    supplied :class:`~repro.robust.TrainingSupervisor` when given.  The
    optimizer is built fresh inside ``fit`` (grown tables cannot reuse
    stale optimizer state).  Returns ``{"model", "growth", "split",
    ...}``; ``save_to`` writes the fine-tuned checkpoint.

    ``half_life`` defaults to a quarter of the tail's time span — fresh
    events dominate without zeroing out the back of the tail.
    """
    from repro.core.logirec_pp import LogiRecPP
    from repro.serve.checkpoint import load_checkpoint, save_checkpoint

    model = load_checkpoint(checkpoint_dir)
    old_users, old_items = model.n_users, model.n_items
    neighbors = tag_prior_neighbors(dataset, old_items)
    growth = model.resize_universe(dataset.n_users, dataset.n_items,
                                   item_neighbors=neighbors,
                                   init_scale=init_scale)
    split = recency_tail_split(dataset, tail_frac=tail_frac)
    tail_t = dataset.timestamps[split.train]
    if half_life is None:
        span = float(tail_t.max() - tail_t.min()) if len(tail_t) else 0.0
        half_life = max(1.0, span / 4.0)
    weights = recency_weights(tail_t, half_life)

    model.config.epochs = int(epochs)
    if isinstance(model, LogiRecPP):
        # fit() calls prepare(), which recomputes CON from the split the
        # offline way; shadow it per instance so the online CON uses the
        # recency-weighted TF, then refresh alpha as usual.
        base_prepare = model.prepare

        def _prepare_with_recency(ds, sp):
            base_prepare(ds, sp)
            model._con = recency_weighted_consistency(
                ds, sp.train, weights, eta=model.config.eta)
            model._refresh_alpha()

        model.prepare = _prepare_with_recency

    with obs.trace("online/finetune", model=type(model).__name__,
                   epochs=int(epochs), tail=len(split.train)):
        model.fit(dataset, split, supervisor=supervisor)
    if isinstance(model, LogiRecPP):
        del model.prepare  # restore the class method

    record: Dict[str, object] = {
        "model": model,
        "model_class": type(model).__name__,
        "growth": growth,
        "split": split,
        "n_tail": int(len(split.train)),
        "half_life": float(half_life),
        "epochs": int(epochs),
        "final_loss": (float(model.loss_history[-1])
                       if model.loss_history else None),
    }
    if supervisor is not None:
        record["supervisor"] = supervisor.summary()
    if save_to is not None:
        record["checkpoint"] = str(
            save_checkpoint(model, save_to, dataset=dataset))
    if obs.enabled():
        obs.count("online/finetunes")
        obs.gauge_set("online/new_users", float(growth["new_users"]))
        obs.gauge_set("online/new_items", float(growth["new_items"]))
    return record
