"""``repro.robust`` — fault injection, recovery policies, and drills.

The robustness subsystem closes the detect→recover loop around both
halves of the system:

* :mod:`repro.robust.faults` — :class:`FaultPlan`, a seeded schedule of
  NaN gradients, poisoned parameters, process-kill points, corrupted
  checkpoint bytes, failing/slow scoring calls, and poisoned event
  streams, replayable bit-identically from tests, drills, and
  ``repro robust inject``.
* :mod:`repro.robust.policies` — frozen policy dataclasses
  (:class:`RetryPolicy`, :class:`BreakerPolicy`,
  :class:`ResilienceConfig`) shared by training and serving.
* :mod:`repro.robust.training` — :class:`TrainingSupervisor`:
  auto-checkpoint every N epochs (PR4 format + ``fit_state`` sidecar),
  divergence rollback with learning-rate backoff under a bounded retry
  budget, and bit-identical ``--resume``.
* :mod:`repro.robust.breaker` — the error-rate :class:`CircuitBreaker`
  the serving engine trips to its fallback.
* :mod:`repro.robust.drills` — the end-to-end scenarios behind
  ``repro robust inject`` and the CI fault smoke.
"""

from repro.robust.breaker import CircuitBreaker
from repro.robust.faults import (FAULT_KINDS, PROCESS_KINDS,
                                 STREAM_KINDS, FaultInjectionError,
                                 FaultPlan, FaultSpec, FaultyIndex,
                                 InjectedScoringError, SimulatedCrash)
from repro.robust.policies import (BreakerPolicy, ResilienceConfig,
                                   RetryPolicy)
from repro.robust.training import (TrainingDivergedError,
                                   TrainingSupervisor, has_fit_state,
                                   load_fit_state, save_fit_state)

__all__ = [
    "FAULT_KINDS",
    "PROCESS_KINDS",
    "STREAM_KINDS",
    "FaultInjectionError",
    "FaultPlan",
    "FaultSpec",
    "FaultyIndex",
    "InjectedScoringError",
    "SimulatedCrash",
    "BreakerPolicy",
    "ResilienceConfig",
    "RetryPolicy",
    "CircuitBreaker",
    "TrainingDivergedError",
    "TrainingSupervisor",
    "has_fit_state",
    "load_fit_state",
    "save_fit_state",
]
