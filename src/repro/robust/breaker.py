"""Error-rate circuit breaker (closed → open → half-open).

Protects the serving hot path from hammering a failing scorer: once the
recent failure rate crosses the policy threshold the breaker *opens* and
the engine serves fallbacks without touching the index at all, which is
both faster for the caller and kinder to whatever is failing.  After a
request-counted cooldown one probe is let through (*half-open*); its
outcome decides between closing and re-opening.

Single-threaded by design (the engine is synchronous), request-counted
rather than clock-based so drills replay deterministically.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.robust.policies import BreakerPolicy

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker driven by :class:`BreakerPolicy`.

    ``on_transition(old_state, new_state)`` is invoked on every state
    change — the serving engine hangs trace events off it so breaker
    open/half-open/close shows up on the request timeline.  The hook
    runs under the caller's trace context (transitions happen inside a
    request's ``allow``/``record``), and it must not raise.
    """

    def __init__(self, policy: BreakerPolicy = None,
                 on_transition: Optional[Callable[[str, str], None]] = None):
        self.policy = policy if policy is not None else BreakerPolicy()
        self.on_transition = on_transition
        self.state = CLOSED
        self.opens = 0                 # lifetime open transitions
        self._window: Deque[bool] = deque(maxlen=self.policy.window)
        self._cooldown_left = 0

    def _set_state(self, new_state: str) -> None:
        old_state = self.state
        self.state = new_state
        if self.on_transition is not None and old_state != new_state:
            self.on_transition(old_state, new_state)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Should the next request attempt real scoring?

        While open, counts down the cooldown and short-circuits; the
        request that exhausts it becomes the half-open probe.
        """
        if self.state == OPEN:
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                return False
            self._set_state(HALF_OPEN)
        return True

    def record(self, ok: bool) -> bool:
        """Record a guarded request's final outcome.

        Returns True when this outcome tripped the breaker open (the
        caller counts open transitions in its metrics).
        """
        if self.state == HALF_OPEN:
            if ok:
                self._set_state(CLOSED)
                self._window.clear()
                return False
            return self._open()
        self._window.append(ok)
        if (self.state == CLOSED
                and len(self._window) >= self.policy.min_requests):
            failures = self._window.count(False)
            if failures / len(self._window) >= self.policy.threshold:
                return self._open()
        return False

    def _open(self) -> bool:
        self._set_state(OPEN)
        self.opens += 1
        self._cooldown_left = self.policy.cooldown
        self._window.clear()
        return True

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """State for metrics/debug output."""
        return {"state": self.state, "opens": self.opens,
                "window_size": len(self._window),
                "cooldown_left": self._cooldown_left}
