"""Training resilience: auto-checkpoint, divergence rollback, resume.

:class:`TrainingSupervisor` plugs into :meth:`Recommender.fit` through
the four supervisor hooks and closes the loop that PR2 (detection) and
PR4 (bit-exact checkpoints) opened:

* **auto-checkpoint** — every ``checkpoint_every`` epochs the model is
  saved in the PR4 format, plus a ``fit_state`` sidecar carrying what
  the checkpoint alone does not: optimizer moment/momentum buffers, the
  best-validation snapshot, and the remaining rollback budget.  An
  epoch-0 checkpoint is always written so rollback has a target.
* **rollback** — when an epoch ends with a non-finite loss or
  non-finite parameters, the supervisor restores the last good
  checkpoint *in place* (parameters, RNG stream, loss history,
  optimizer state, best snapshot), multiplies the learning rate by
  ``lr_backoff``, burns one retry, and rewinds the loop to the
  checkpointed epoch.  When the budget is exhausted it raises
  :class:`TrainingDivergedError` instead of looping forever.
* **resume** — ``ResilienceConfig(resume=True)`` fast-forwards a fit
  on a checkpoint-loaded model to the saved epoch.  Because no hook
  consumes model RNG, a killed-then-resumed run is bit-identical to an
  uninterrupted one (asserted registry-wide in ``tests/test_robust.py``).

Fault injection (:class:`~repro.robust.faults.FaultPlan`) rides the
same hooks, so the machinery that recovers from real NaN blowups is the
one exercised by drills and CI.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.robust.faults import FaultPlan, SimulatedCrash
from repro.robust.policies import ResilienceConfig

LOG = obs.get_logger(__name__)

FIT_STATE_META = "fit_state.json"
FIT_STATE_ARRAYS = "fit_state.npz"


class TrainingDivergedError(RuntimeError):
    """Training kept diverging after exhausting the rollback budget."""


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# fit_state sidecar: optimizer state + best snapshot + retry budget
# ----------------------------------------------------------------------
def save_fit_state(path, optimizer, state, retries_left: int) -> Path:
    """Write the resume sidecar next to a PR4 checkpoint.

    ``state`` is the loop's :class:`~repro.models.base.FitState`;
    ``state.epoch`` must already equal the number of completed epochs.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    opt_state = optimizer.state_dict()
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, object] = {}
    for key, value in opt_state.items():
        if isinstance(value, np.ndarray):
            arrays[f"opt:{key}"] = value
        else:
            scalars[key] = value
    if state.best_state is not None:
        for i, data in enumerate(state.best_state):
            arrays[f"best:{i:03d}"] = data
    arrays_path = path / FIT_STATE_ARRAYS
    np.savez(arrays_path, **arrays)
    meta = {
        "epochs_done": int(state.epoch),
        "best_score": (None if not np.isfinite(state.best_score)
                       else float(state.best_score)),
        "has_best_state": state.best_state is not None,
        "n_best_arrays": (0 if state.best_state is None
                          else len(state.best_state)),
        "optimizer_class": type(optimizer).__name__,
        "optimizer_scalars": scalars,
        "retries_left": int(retries_left),
        "arrays_sha256": _sha256_of(arrays_path),
    }
    with open(path / FIT_STATE_META, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
    return path


def has_fit_state(path) -> bool:
    """True when ``path`` holds a resumable checkpoint + sidecar."""
    path = Path(path)
    return ((path / FIT_STATE_META).is_file()
            and (path / FIT_STATE_ARRAYS).is_file())


def load_fit_state(path, optimizer, state) -> int:
    """Restore the sidecar into ``optimizer`` and ``state``.

    Returns the saved retry budget.  Raises
    :class:`repro.serve.CheckpointError` on a missing, corrupted, or
    mismatched sidecar (same failure contract as the checkpoint itself).
    """
    from repro.serve.checkpoint import CheckpointError

    path = Path(path)
    meta_path = path / FIT_STATE_META
    arrays_path = path / FIT_STATE_ARRAYS
    if not meta_path.is_file() or not arrays_path.is_file():
        raise CheckpointError(
            f"checkpoint {path} has no fit_state sidecar; it can be "
            f"served but not resumed")
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable fit_state metadata {meta_path}: {exc}") from exc
    if _sha256_of(arrays_path) != meta.get("arrays_sha256"):
        raise CheckpointError(
            f"checkpoint {path} fit_state is corrupted: "
            f"{FIT_STATE_ARRAYS} checksum mismatch")
    if meta.get("optimizer_class") != type(optimizer).__name__:
        raise CheckpointError(
            f"checkpoint {path} fit_state was saved for optimizer "
            f"{meta.get('optimizer_class')!r}, model builds "
            f"{type(optimizer).__name__!r}")
    with np.load(arrays_path) as npz:
        arrays = {key: npz[key] for key in npz.files}
    opt_state: Dict[str, object] = dict(meta.get("optimizer_scalars", {}))
    for key, value in arrays.items():
        if key.startswith("opt:"):
            opt_state[key[len("opt:"):]] = value
    try:
        optimizer.load_state_dict(opt_state)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} fit_state does not match the "
            f"optimizer: {exc}") from exc
    state.epoch = int(meta["epochs_done"])
    best_score = meta.get("best_score")
    state.best_score = -np.inf if best_score is None else float(best_score)
    if meta.get("has_best_state"):
        n = int(meta["n_best_arrays"])
        try:
            state.best_state = [arrays[f"best:{i:03d}"] for i in range(n)]
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint {path} fit_state is missing best-snapshot "
                f"array {exc}") from exc
    else:
        state.best_state = None
    return int(meta.get("retries_left", 0))


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
class TrainingSupervisor:
    """Auto-checkpoint / rollback / resume driver for ``Recommender.fit``.

    Parameters
    ----------
    config:
        The :class:`~repro.robust.policies.ResilienceConfig` to execute.
    fault_plan:
        Optional :class:`~repro.robust.faults.FaultPlan`; its training
        faults (``nan_grad`` / ``nan_param`` / ``kill``) are injected
        through the same hooks that do the recovering.

    After a fit, :attr:`events` holds the ordered
    ``(kind, detail)`` log — ``checkpoint`` / ``rollback`` / ``resume``
    / ``crash`` — and :attr:`rollbacks` / :attr:`checkpoints` the
    counts, mirrored into obs metrics when a run is active.
    """

    def __init__(self, config: ResilienceConfig,
                 fault_plan: Optional[FaultPlan] = None):
        self.config = config
        self.plan = fault_plan
        self.dir = Path(config.checkpoint_dir)
        self.retries_left = int(config.max_retries)
        self.events: List[Tuple[str, dict]] = []
        self.rollbacks = 0
        self.checkpoints = 0
        self.resumed = False
        self._dataset = None

    # -- hooks called by Recommender.fit -------------------------------
    def on_fit_start(self, model, optimizer, state, dataset=None) -> None:
        self._dataset = dataset
        if self.config.resume and has_fit_state(self.dir):
            self.retries_left = load_fit_state(self.dir, optimizer, state)
            self.resumed = True
            self.events.append(("resume", {"epoch": state.epoch}))
            LOG.info("resuming %s from %s at epoch %d",
                     type(model).__name__, self.dir, state.epoch)
            obs.count("train/resumes")
            obs.trace_event("train/resume", epoch=state.epoch)
            return
        # Fresh start: epoch-0 checkpoint so rollback always has a
        # target, even before the first interval elapses.
        self._checkpoint(model, optimizer, state)

    def on_epoch_start(self, model, epoch: int) -> None:
        if self.plan is None:
            return
        spec = self.plan.take_nan_param(epoch)
        if spec is not None:
            params = model.parameters()
            param = params[spec.param_index % len(params)]
            param.data.flat[0] = np.nan
            LOG.warning("injected NaN into parameter %r at epoch %d",
                        param.name, epoch)

    def on_batch(self, model, epoch: int, batch_idx: int) -> None:
        if self.plan is None or batch_idx != 0:
            return
        spec = self.plan.take_nan_grad(epoch)
        if spec is not None:
            params = model.parameters()
            param = params[spec.param_index % len(params)]
            if param.grad is not None:
                param.grad.flat[0] = np.nan
                LOG.warning("injected NaN gradient on %r at epoch %d",
                            param.name, epoch)

    def on_epoch_end(self, model, optimizer, state, epoch: int,
                     mean_loss: float) -> int:
        if self._diverged(model, mean_loss):
            return self._rollback(model, optimizer, state, epoch)
        state.epoch = epoch + 1
        if (state.epoch % self.config.checkpoint_every == 0
                or state.epoch == model.config.epochs):
            self._checkpoint(model, optimizer, state)
        if self.plan is not None and self.plan.take_kill(epoch):
            self.events.append(("crash", {"epoch": epoch}))
            obs.trace_event("train/crash", epoch=epoch)
            raise SimulatedCrash(
                f"injected kill after epoch {epoch} (resume from "
                f"{self.dir})")
        return state.epoch

    # -- internals ------------------------------------------------------
    @staticmethod
    def _diverged(model, mean_loss: float) -> bool:
        if not np.isfinite(mean_loss):
            return True
        return any(not np.isfinite(p.data).all()
                   for p in model.parameters())

    def _checkpoint(self, model, optimizer, state) -> None:
        from repro.serve.checkpoint import save_checkpoint

        with obs.trace("checkpoint", epoch=state.epoch):
            save_checkpoint(model, self.dir, dataset=self._dataset)
            save_fit_state(self.dir, optimizer, state, self.retries_left)
        self.checkpoints += 1
        self.events.append(("checkpoint", {"epoch": state.epoch}))
        obs.count("train/auto_checkpoints")

    def _rollback(self, model, optimizer, state, epoch: int) -> int:
        from repro.serve.checkpoint import read_checkpoint_meta

        obs.count("train/divergence_detected")
        self.retries_left -= 1
        if self.retries_left < 0:
            raise TrainingDivergedError(
                f"{type(model).__name__} diverged at epoch {epoch} with "
                f"no rollback budget left "
                f"(max_retries={self.config.max_retries}); last good "
                f"checkpoint: {self.dir}")
        meta = read_checkpoint_meta(self.dir)
        with np.load(self.dir / "arrays.npz") as npz:
            model.load_state_dict({key: npz[key] for key in npz.files})
        model.rng.bit_generator.state = meta["rng_state"]
        model.loss_history = [float(x)
                              for x in meta.get("loss_history", [])]
        # Capture the *running* lr before the sidecar restores the
        # checkpointed one, so repeated rollbacks from the same
        # checkpoint keep compounding the backoff instead of re-applying
        # the same single step.
        running_lr = getattr(optimizer, "lr", None)
        load_fit_state(self.dir, optimizer, state)
        if running_lr is not None:
            optimizer.lr = running_lr * self.config.lr_backoff
        self.rollbacks += 1
        self.events.append(("rollback", {
            "diverged_epoch": epoch, "resumed_epoch": state.epoch,
            "lr": getattr(optimizer, "lr", None),
            "retries_left": self.retries_left}))
        LOG.warning("%s diverged at epoch %d; rolled back to epoch %d "
                    "(lr -> %s, %d retries left)", type(model).__name__,
                    epoch, state.epoch, getattr(optimizer, "lr", "?"),
                    self.retries_left)
        obs.count("train/rollbacks")
        obs.trace_event("train/rollback", diverged_epoch=epoch,
                        resumed_epoch=state.epoch,
                        retries_left=self.retries_left)
        if getattr(optimizer, "lr", None) is not None:
            obs.gauge_set("train/lr", float(optimizer.lr))
        return state.epoch

    def summary(self) -> dict:
        """Counters + event log (what drills print and tests assert)."""
        return {
            "checkpoints": self.checkpoints,
            "rollbacks": self.rollbacks,
            "resumed": self.resumed,
            "retries_left": self.retries_left,
            "events": list(self.events),
            "checkpoint_dir": str(self.dir),
        }
