"""Reusable fault-injection drills behind ``repro robust inject``.

Each drill builds a small real workload, injects the requested faults
through :class:`~repro.robust.faults.FaultPlan`, exercises the recovery
machinery end to end, and returns a plain dict of observations — the
CLI is only a formatter over these, and ``scripts/ci.sh`` greps their
output, so the exact same code path is what CI gates on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.robust.faults import (FaultPlan, FaultSpec, FaultyIndex,
                                 SimulatedCrash)
from repro.robust.policies import (BreakerPolicy, ResilienceConfig,
                                   RetryPolicy)
from repro.robust.training import TrainingSupervisor, has_fit_state


def run_training_drill(model_name: str = "BPRMF",
                       dataset_name: str = "cd", epochs: int = 4,
                       checkpoint_dir="robust_ck",
                       nan_epoch: Optional[int] = None,
                       nan_kind: str = "nan_grad",
                       kill_epoch: Optional[int] = None,
                       checkpoint_every: int = 1, max_retries: int = 3,
                       lr_backoff: float = 0.5, resume: bool = False,
                       seed: int = 0) -> Dict[str, object]:
    """Train with injected training faults; returns the recovery record.

    ``crashed=True`` means the injected kill point fired (the drill
    swallows :class:`SimulatedCrash` — that *is* the expected outcome);
    re-running with ``resume=True`` finishes the run from the
    auto-checkpoint.  Divergence-budget exhaustion is **not** swallowed:
    :class:`~repro.robust.training.TrainingDivergedError` propagates so
    callers see the failure mode they asked to provoke.
    """
    from repro.data import load_dataset, temporal_split
    from repro.experiments.runner import build_model
    from repro.serve.checkpoint import load_checkpoint

    dataset = load_dataset(dataset_name)
    split = temporal_split(dataset)
    resumed_from = None
    if resume and has_fit_state(checkpoint_dir):
        model = load_checkpoint(checkpoint_dir, dataset=dataset,
                                split=split)
        resumed_from = len(model.loss_history)
    else:
        model = build_model(model_name, dataset, seed=seed)
    model.config.epochs = int(epochs)
    specs = []
    if nan_epoch is not None:
        specs.append(FaultSpec(nan_kind, epoch=int(nan_epoch)))
    if kill_epoch is not None:
        specs.append(FaultSpec("kill", epoch=int(kill_epoch)))
    plan = FaultPlan(specs, seed=seed)
    policy = ResilienceConfig(
        checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
        max_retries=max_retries, lr_backoff=lr_backoff, resume=resume)
    supervisor = TrainingSupervisor(policy, fault_plan=plan)
    crashed = False
    try:
        model.fit(dataset, split, supervisor=supervisor)
    except SimulatedCrash:
        crashed = True
    losses = model.loss_history
    return {
        "model": type(model).__name__,
        "dataset": dataset_name,
        "epochs_requested": int(epochs),
        "epochs_done": len(losses),
        "completed": not crashed and len(losses) >= int(epochs),
        "crashed": crashed,
        "resumed_from": resumed_from,
        "final_loss": float(losses[-1]) if losses else None,
        "all_losses_finite": bool(np.isfinite(losses).all()) if losses
        else True,
        "faults_injected": plan.counts(),
        **supervisor.summary(),
    }


def run_serving_drill(model_name: str = "BPRMF", dataset_name: str = "cd",
                      epochs: int = 2, n_requests: int = 100,
                      fail_rate: float = 0.1, delay_rate: float = 0.0,
                      delay_s: float = 0.05,
                      timeout_s: Optional[float] = None,
                      retries: int = 2, k: int = 10,
                      breaker: Optional[BreakerPolicy] = None,
                      seed: int = 0) -> Dict[str, object]:
    """Serve ``n_requests`` against a fault-wrapped index.

    The acceptance bar this measures: every request gets a valid ranked
    list of ``k`` distinct item ids, no exception escapes the service,
    and the degradation shows up in the counters rather than in the
    responses.
    """
    from repro.data import load_dataset, temporal_split
    from repro.experiments.runner import build_model
    from repro.serve.config import ServiceConfig
    from repro.serve.engine import RecommendService
    from repro.serve.index import build_index

    dataset = load_dataset(dataset_name)
    split = temporal_split(dataset)
    model = build_model(model_name, dataset, seed=seed)
    model.config.epochs = int(epochs)
    model.fit(dataset, split)
    index = build_index(model, dataset, split)
    specs = []
    if fail_rate > 0:
        specs.append(FaultSpec("score_error", rate=fail_rate))
    if delay_rate > 0:
        specs.append(FaultSpec("score_delay", rate=delay_rate,
                               delay_s=delay_s))
    plan = FaultPlan(specs, seed=seed)
    config = ServiceConfig(
        k=int(k), cache_size=0,
        retry=RetryPolicy(retries=int(retries), backoff_s=0.0,
                          timeout_s=timeout_s),
        breaker=breaker if breaker is not None else BreakerPolicy())
    service = RecommendService(FaultyIndex(index, plan), config=config)
    rng = np.random.default_rng(seed)
    users = rng.integers(0, dataset.n_users, size=int(n_requests))
    responses = service.query_batch(users)
    n_valid = sum(
        1 for r in responses
        if len(r["items"]) == int(k) and len(set(r["items"])) == int(k))
    return {
        "model": model_name,
        "dataset": dataset_name,
        "n_requests": int(n_requests),
        "n_valid": int(n_valid),
        "all_valid": n_valid == int(n_requests),
        "faults_injected": plan.counts(),
        "breaker": service.breaker.snapshot(),
        "stats": dict(service.stats),
    }


def run_frontend_drill(model_name: str = "BPRMF",
                       dataset_name: str = "cd", epochs: int = 2,
                       n_requests: int = 200, n_workers: int = 2,
                       kill_after: Optional[int] = None,
                       stall_after: Optional[int] = None,
                       stall_delay_s: float = 3.0,
                       slow_rate: float = 0.0,
                       slow_delay_s: float = 0.02,
                       worker: int = 0, k: int = 10,
                       qps: float = 200.0,
                       seed: int = 0) -> Dict[str, object]:
    """Drive the multi-worker front-end through process-level faults.

    Trains a small model, shards its index across ``n_workers``
    processes, and offers ``n_requests`` open-loop while the requested
    ``worker_kill`` / ``worker_stall`` / ``slow_shard`` faults fire.
    The acceptance bar: zero hard failures (every request resolves
    ``ok``/``shed``), failures surface only as degraded fallbacks, and
    the supervisor restarts every lost worker.
    """
    from repro.data import load_dataset, temporal_split
    from repro.experiments.runner import build_model
    from repro.serve.config import ServiceConfig
    from repro.serve.frontend import (FrontendConfig, ServingFrontend,
                                      run_open_loop)
    from repro.serve.index import build_index

    dataset = load_dataset(dataset_name)
    split = temporal_split(dataset)
    model = build_model(model_name, dataset, seed=seed)
    model.config.epochs = int(epochs)
    model.fit(dataset, split)
    index = build_index(model, dataset, split)
    specs = []
    if kill_after is not None:
        specs.append(FaultSpec("worker_kill",
                               after_requests=int(kill_after),
                               worker=int(worker)))
    if stall_after is not None:
        specs.append(FaultSpec("worker_stall",
                               after_requests=int(stall_after),
                               delay_s=float(stall_delay_s),
                               worker=int(worker)))
    if slow_rate > 0:
        specs.append(FaultSpec("slow_shard", rate=float(slow_rate),
                               delay_s=float(slow_delay_s)))
    plan = FaultPlan(specs, seed=seed)
    config = FrontendConfig(
        n_workers=int(n_workers),
        service=ServiceConfig(k=int(k), cache_size=0),
        stall_after_s=max(0.5, float(stall_delay_s) / 4),
        telemetry=False)
    rng = np.random.default_rng(seed)
    users = rng.integers(0, dataset.n_users,
                         size=min(int(n_requests), dataset.n_users))
    with ServingFrontend(index, config, faults=plan) as frontend:
        outcome = run_open_loop(
            frontend, users, int(k), offered_qps=float(qps),
            duration_s=int(n_requests) / float(qps))
        restarts = frontend.supervisor.total_restarts
        fleet = frontend.supervisor.fleet_health()
        counters = dict(frontend.counters)
    return {
        "model": model_name,
        "dataset": dataset_name,
        "n_workers": int(n_workers),
        "fault_kinds": sorted({s.kind for s in specs}),
        "n_offered": outcome["n_offered"],
        "n_ok": outcome["completed"],
        "n_degraded": outcome["degraded"],
        "n_shed": outcome["shed"],
        "hard_failures": outcome["hard_failures"],
        "all_answered": outcome["hard_failures"] == 0,
        "worker_restarts": restarts,
        "fleet_ready": fleet["ready"],
        "recovered": fleet["ready"] == int(n_workers),
        "p99_ms": outcome["p99_ms"],
        "frontend_counters": counters,
    }


def run_stream_drill(kind: str = "journal_corrupt",
                     dataset_name: str = "cd", n_events: int = 20,
                     workdir=None, seed: int = 0) -> Dict[str, object]:
    """Inject one stream fault into a live ingest loop; assert containment.

    ``detected=True`` means the poison surfaced as a typed
    :class:`~repro.data.dataset.StreamError`; ``contained=True`` means
    the ingest state survived untouched — replay cursor not advanced
    past the poison, dataset interaction count and universe unchanged.
    Both must hold for the drill to pass.  For ``event_duplicate`` the
    drill additionally shows the default at-least-once policy
    (``on_duplicate="skip"``) absorbing the same re-delivery cleanly.
    """
    import tempfile

    from repro.data import load_dataset
    from repro.data.dataset import StreamError
    from repro.online.events import (EventJournal, InteractionEvent,
                                     simulate_events)
    from repro.online.ingest import StreamIngestor

    if kind not in ("journal_corrupt", "event_disorder",
                    "event_duplicate"):
        raise ValueError(f"unknown stream fault kind {kind!r}")
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro_stream_drill_")
    plan = FaultPlan([FaultSpec(kind)], seed=seed)

    dataset = load_dataset(dataset_name)
    journal = EventJournal(Path(workdir) / "journal.jsonl")
    clean = simulate_events(dataset, n_events, seed=seed)
    policy = "error" if kind == "event_duplicate" else "skip"
    ingestor = StreamIngestor(dataset, journal, on_duplicate=policy)

    plan.take_stream(kind)
    if kind == "journal_corrupt":
        # A clean prefix ingests first; the poison lands in a later
        # record, so the drill also proves the cursor holds its ground.
        journal.append(clean[:n_events // 2])
        ingestor.drain()
        end = journal.append(clean[n_events // 2:])
        # Flip one seeded byte inside the fresh records (never the
        # final newline — that would read as a torn write, not
        # corruption, and legitimately defer the tail).
        blob = bytearray(journal.path.read_bytes())
        span = end - ingestor.offset - 1
        offset = ingestor.offset + int(
            np.random.default_rng(seed).integers(0, span))
        blob[offset] ^= 0xFF
        journal.path.write_bytes(bytes(blob))
    elif kind == "event_disorder":
        journal.append(clean[:5])
        ingestor.drain()
        t0 = int(dataset.timestamps.max())
        disordered = [
            InteractionEvent(e.user_id, e.item_id, t0 + 10 - 3 * j)
            for j, e in enumerate(clean[5:8])]
        journal.append(disordered)
    else:  # event_duplicate
        journal.append(clean[:5])
        ingestor.drain()
        # At-least-once re-delivery: same (user, item), fresh timestamp.
        journal.append([InteractionEvent(
            clean[0].user_id, clean[0].item_id,
            int(dataset.timestamps.max()) + 1)])

    offset_before = ingestor.offset
    interactions_before = dataset.n_interactions
    universe_before = (dataset.n_users, dataset.n_items)
    detected = False
    error = None
    try:
        ingestor.drain()
    except StreamError as exc:
        detected = True
        error = str(exc)
    contained = (ingestor.offset == offset_before
                 and dataset.n_interactions == interactions_before
                 and (dataset.n_users, dataset.n_items) == universe_before)

    record: Dict[str, object] = {
        "kind": kind,
        "dataset": dataset_name,
        "detected": detected,
        "contained": contained,
        "offset": int(ingestor.offset),
        "n_interactions": int(dataset.n_interactions),
        "error": error,
        "faults_injected": plan.counts(),
        "passed": detected and contained,
    }
    if kind == "event_duplicate":
        # The default policy must absorb the same re-delivery.
        lenient = StreamIngestor(dataset, journal, on_duplicate="skip")
        lenient.offset = offset_before
        summary = lenient.drain()
        record["skip_policy_duplicates"] = summary["n_duplicates"]
        record["skip_policy_appended"] = summary["n_appended"]
        record["passed"] = bool(record["passed"]
                                and summary["n_duplicates"] >= 1
                                and summary["n_appended"] == 0)
    return record


def run_checkpoint_drill(path, seed: int = 0) -> Dict[str, object]:
    """Corrupt one byte of a checkpoint and verify loading rejects it.

    ``detected=True`` is the pass condition: the checksum caught the
    corruption and :class:`CheckpointError` carried a one-line reason
    instead of a silently wrong model coming back.
    """
    from repro.serve.checkpoint import (ARRAYS_FILE, CheckpointError,
                                        load_checkpoint)

    arrays_path = Path(path) / ARRAYS_FILE
    if not arrays_path.is_file():
        return {"path": str(path), "detected": False,
                "error": f"no checkpoint arrays at {arrays_path}"}
    offset = FaultPlan.corrupt_file(arrays_path, seed=seed)
    try:
        load_checkpoint(path)
    except CheckpointError as exc:
        return {"path": str(path), "detected": True,
                "corrupted_offset": offset, "error": str(exc)}
    return {"path": str(path), "detected": False,
            "corrupted_offset": offset,
            "error": "corrupted checkpoint loaded without complaint"}
