"""Deterministic fault injection for training and serving drills.

A :class:`FaultPlan` is a seeded schedule of failures.  Every draw comes
from the plan's own generator, so the same plan against the same request
sequence injects the same faults — drills, tests, and CI all replay
bit-identically.

Fault kinds
-----------
``nan_grad``
    On the first batch of epoch ``epoch``, overwrite one element of a
    parameter's gradient with NaN (the classic hyperbolic-training
    blowup: one bad conversion near the manifold boundary).
``nan_param``
    At the start of epoch ``epoch``, poison one element of a parameter
    table — diverges every model regardless of whether its optimizer
    skips non-finite gradients.
``kill``
    Raise :class:`SimulatedCrash` after epoch ``epoch``'s bookkeeping
    (a process-kill point: the auto-checkpoint for that epoch, if due,
    has already been written).
``score_error``
    Each guarded scoring call fails with probability ``rate``
    (:class:`InjectedScoringError`).
``score_delay``
    Each guarded scoring call sleeps ``delay_s`` with probability
    ``rate`` (exercises request timeouts).
``worker_kill``
    A serving worker process calls ``os._exit`` after handling
    ``after_requests`` requests — the front-end supervisor must detect
    the dead process, fail its in-flight work over to the degraded
    fallback, and restart it (:mod:`repro.serve.frontend`).
``worker_stall``
    A worker stops serving *and* heartbeating for ``delay_s`` seconds
    after ``after_requests`` requests — the live-process-but-wedged
    failure mode that only heartbeat ageing can catch.
``slow_shard``
    Requests routed to shard ``shard`` (every shard when ``None``)
    sleep ``delay_s`` with probability ``rate`` before scoring —
    drives queue growth, deadline expiry, and load shedding on one
    slice of the user space.
``journal_corrupt``
    Flip one byte of an event-journal record in place — the reader
    must raise a typed :class:`~repro.data.dataset.StreamError`
    carrying the poison offset instead of ingesting garbage.
``event_disorder``
    Deliver a batch whose timestamps go backwards — ingest must
    reject it before mutating (the temporal-split contract).
``event_duplicate``
    Re-deliver an already-ingested ``(user, item)`` pair — skipped
    under the default at-least-once policy, a typed error under
    ``on_duplicate="error"``.  Stream faults are exercised through
    :func:`repro.robust.drills.run_stream_drill`.

Training faults fire **once** by default (``once=True``): after the
recovery machinery rolls the run back, the retry proceeds cleanly —
matching real transient blowups, where a smaller learning rate gets
past the bad batch.  Set ``once=False`` for a persistent fault (used to
test retry-budget exhaustion).  Scoring faults are rate-based and use
``max_faults`` to bound how many times they fire.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

TRAINING_KINDS = ("nan_grad", "nan_param", "kill")
SCORING_KINDS = ("score_error", "score_delay")
PROCESS_KINDS = ("worker_kill", "worker_stall", "slow_shard")
STREAM_KINDS = ("journal_corrupt", "event_disorder", "event_duplicate")
FAULT_KINDS = TRAINING_KINDS + SCORING_KINDS + PROCESS_KINDS \
    + STREAM_KINDS


class FaultInjectionError(Exception):
    """Base class for every injected failure."""


class InjectedScoringError(FaultInjectionError):
    """A scoring call failed because the fault plan said so."""


class SimulatedCrash(FaultInjectionError):
    """Training hit an injected process-kill point."""


@dataclass
class FaultSpec:
    """One scheduled fault; see the module docstring for the kinds."""

    kind: str
    epoch: Optional[int] = None     # nan_grad / nan_param / kill
    rate: float = 0.0               # score_error / score_delay / slow_shard
    delay_s: float = 0.0            # score_delay / worker_stall / slow_shard
    param_index: int = 0            # which parameter to poison
    once: bool = True               # training faults fire a single time
    max_faults: Optional[int] = None  # cap on scoring-fault firings
    after_requests: Optional[int] = None  # worker_kill / worker_stall
    worker: int = 0                 # target worker id (process faults)
    shard: Optional[int] = None     # slow_shard target (None = every shard)
    fired: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {list(FAULT_KINDS)}")
        if self.kind in TRAINING_KINDS and self.epoch is None:
            raise ValueError(f"{self.kind} fault needs an epoch")
        if (self.kind in SCORING_KINDS + ("slow_shard",)
                and not 0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if (self.kind in ("worker_kill", "worker_stall")
                and self.after_requests is None):
            raise ValueError(f"{self.kind} fault needs after_requests")
        if self.kind == "worker_stall" and self.delay_s <= 0:
            raise ValueError(
                f"worker_stall needs a positive delay_s, "
                f"got {self.delay_s}")
        if self.kind == "slow_shard" and self.delay_s <= 0:
            raise ValueError(
                f"slow_shard needs a positive delay_s, got {self.delay_s}")

    def exhausted(self) -> bool:
        if self.kind in (TRAINING_KINDS + ("worker_kill", "worker_stall")
                         + STREAM_KINDS):
            return self.once and self.fired > 0
        return self.max_faults is not None and self.fired >= self.max_faults


class FaultPlan:
    """A seeded, replayable schedule of :class:`FaultSpec` entries.

    The plan is consulted by :class:`repro.robust.TrainingSupervisor`
    (training faults) and :class:`FaultyIndex` (scoring faults); every
    injection is appended to :attr:`events` as ``(kind, detail)`` so
    drills and tests can assert exactly what fired.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.specs: List[FaultSpec] = list(specs)
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.events: List[Tuple[str, dict]] = []

    def _record(self, spec: FaultSpec, **detail) -> None:
        spec.fired += 1
        self.events.append((spec.kind, detail))

    # ------------------------------------------------------------------
    # Training-side queries (consulted by the TrainingSupervisor)
    # ------------------------------------------------------------------
    def _training_spec(self, kind: str, epoch: int) -> Optional[FaultSpec]:
        for spec in self.specs:
            if (spec.kind == kind and spec.epoch == epoch
                    and not spec.exhausted()):
                return spec
        return None

    def take_nan_grad(self, epoch: int) -> Optional[FaultSpec]:
        """The ``nan_grad`` spec due this epoch, marking it fired."""
        spec = self._training_spec("nan_grad", epoch)
        if spec is not None:
            self._record(spec, epoch=epoch, param_index=spec.param_index)
        return spec

    def take_nan_param(self, epoch: int) -> Optional[FaultSpec]:
        """The ``nan_param`` spec due this epoch, marking it fired."""
        spec = self._training_spec("nan_param", epoch)
        if spec is not None:
            self._record(spec, epoch=epoch, param_index=spec.param_index)
        return spec

    def take_kill(self, epoch: int) -> bool:
        """True when an unexpired kill point is scheduled for ``epoch``."""
        spec = self._training_spec("kill", epoch)
        if spec is not None:
            self._record(spec, epoch=epoch)
            return True
        return False

    # ------------------------------------------------------------------
    # Serving-side draws (consulted by FaultyIndex per scoring call)
    # ------------------------------------------------------------------
    def draw_scoring_fault(self) -> Optional[FaultSpec]:
        """One seeded draw per active scoring spec; first hit wins.

        Draw order is the spec order, and the generator advances once
        per active spec per call, so the fault sequence is a pure
        function of ``(seed, call sequence)``.
        """
        hit: Optional[FaultSpec] = None
        for spec in self.specs:
            if spec.kind not in SCORING_KINDS or spec.exhausted():
                continue
            if self.rng.random() < spec.rate and hit is None:
                hit = spec
        if hit is not None:
            self._record(hit, delay_s=hit.delay_s)
        return hit

    # ------------------------------------------------------------------
    # Stream-side draws (consulted by the ingest drill)
    # ------------------------------------------------------------------
    def take_stream(self, kind: str) -> Optional[FaultSpec]:
        """The unexpired stream spec of ``kind``, marking it fired."""
        if kind not in STREAM_KINDS:
            raise ValueError(f"not a stream fault kind: {kind!r}")
        for spec in self.specs:
            if spec.kind == kind and not spec.exhausted():
                self._record(spec)
                return spec
        return None

    # ------------------------------------------------------------------
    # Artifact corruption
    # ------------------------------------------------------------------
    @staticmethod
    def corrupt_file(path, seed: int = 0) -> int:
        """Flip one seeded byte of ``path`` in place; returns the offset.

        Used to prove the checkpoint/index checksum actually catches
        bit rot instead of loading a silently wrong model.
        """
        path = Path(path)
        blob = bytearray(path.read_bytes())
        if not blob:
            raise ValueError(f"cannot corrupt empty file {path}")
        offset = int(np.random.default_rng(seed).integers(0, len(blob)))
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        return offset

    def counts(self) -> dict:
        """``{kind: times fired}`` over everything injected so far."""
        out: dict = {}
        for kind, _ in self.events:
            out[kind] = out.get(kind, 0) + 1
        return out


class FaultyIndex:
    """Proxy over a :class:`~repro.serve.RetrievalIndex` that injects
    scoring faults at the exact boundary the serving engine guards.

    Only :meth:`score_user` is intercepted — masks, popularity, and
    metadata pass straight through — so everything the engine does with
    a *successful* score stays bit-identical to the clean index.
    """

    def __init__(self, index, plan: FaultPlan):
        self._index = index
        self._plan = plan

    def __getattr__(self, name):
        return getattr(self._index, name)

    def score_user(self, user_id: int) -> np.ndarray:
        spec = self._plan.draw_scoring_fault()
        if spec is not None:
            if spec.kind == "score_error":
                raise InjectedScoringError(
                    f"injected scoring failure for user {user_id}")
            time.sleep(spec.delay_s)
        return self._index.score_user(user_id)
