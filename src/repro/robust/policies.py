"""Declarative robustness policies.

Three small frozen dataclasses describe *what* the system should do
under failure; the mechanisms that *execute* them live elsewhere:

* :class:`RetryPolicy` / :class:`BreakerPolicy` — consumed by
  :class:`repro.serve.RecommendService` (via
  :class:`repro.serve.ServiceConfig`) to guard index scoring calls;
* :class:`ResilienceConfig` — consumed by
  :class:`repro.robust.TrainingSupervisor` to drive auto-checkpointing,
  divergence rollback, and resume inside :meth:`Recommender.fit`.

Keeping the policies as plain data (no callables, no state) means a
drill, a test, and production serving can share the exact same policy
object, and the policy round-trips through ``repr`` for logging.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-backoff around a single scoring call.

    Parameters
    ----------
    retries:
        Additional attempts after the first failure (``0`` = fail fast).
    backoff_s:
        Sleep before retry ``i`` is ``backoff_s * 2**(i-1)`` seconds;
        ``0`` retries immediately (what deterministic tests use).
    timeout_s:
        A call that takes longer than this counts as a failure (the
        caller cannot preempt a running numpy kernel, so this is a
        deadline check, not a hard cancel).  ``None`` disables it.
    """

    retries: int = 2
    backoff_s: float = 0.0
    timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(
                f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive or None, got {self.timeout_s}")


@dataclass(frozen=True)
class BreakerPolicy:
    """Error-rate circuit breaker over a sliding request window.

    The breaker opens when, over the last ``window`` guarded requests
    (and at least ``min_requests`` of them), the failure rate reaches
    ``threshold``.  While open it short-circuits ``cooldown`` requests
    straight to the fallback, then lets one probe request through
    (half-open): a probe success closes the breaker, a failure re-opens
    it.  Cooldown is counted in *requests*, not seconds, so drills and
    tests are deterministic.
    """

    window: int = 50
    threshold: float = 0.5
    min_requests: int = 10
    cooldown: int = 25

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {self.threshold}")
        if self.min_requests <= 0:
            raise ValueError(
                f"min_requests must be positive, got {self.min_requests}")
        if self.cooldown <= 0:
            raise ValueError(
                f"cooldown must be positive, got {self.cooldown}")


@dataclass(frozen=True)
class ResilienceConfig:
    """Training-side recovery policy (auto-checkpoint / rollback / resume).

    Parameters
    ----------
    checkpoint_dir:
        Directory for the rolling auto-checkpoint (PR4 format plus a
        ``fit_state`` sidecar holding optimizer state, best-epoch
        snapshot, and the retry budget).
    checkpoint_every:
        Save after every N completed epochs.  An initial epoch-0
        checkpoint is always written so rollback has a target even
        before the first interval elapses.
    max_retries:
        Divergence rollbacks allowed before :class:`TrainingDivergedError`
        is raised.  The budget spans the whole fit (and survives
        resume), so a persistently unstable run cannot loop forever.
    lr_backoff:
        Multiplier applied to the optimizer learning rate after each
        rollback (``0.5`` halves it).
    resume:
        Start from the checkpoint in ``checkpoint_dir`` when one exists
        (what ``repro train --resume`` sets).
    """

    checkpoint_dir: Union[str, Path]
    checkpoint_every: int = 5
    max_retries: int = 3
    lr_backoff: float = 0.5
    resume: bool = False

    def __post_init__(self):
        if self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, "
                f"got {self.checkpoint_every}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ValueError(
                f"lr_backoff must be in (0, 1], got {self.lr_backoff}")
