"""Online inference engine over a :class:`~repro.serve.RetrievalIndex`.

:class:`RecommendService` handles single and batched top-K requests:

* **Micro-batching** — a batch request computes every uncached user's
  exact score row, masks all seen items in one vectorized CSR pass, and
  ranks the whole batch with one :func:`~repro.eval.metrics.topk_indices`
  call.  Masking and top-K are shape-invariant, so batching them keeps
  results bit-identical to the single-request path (scoring itself stays
  per-row; see :mod:`repro.serve.index` for why).
* **LRU response cache** — bounded, keyed ``(user_id, k)``, with hit /
  miss counters.  ``cache_size=0`` disables it.
* **Graceful degradation** — a user id outside ``[0, n_users)`` never
  raises; it gets the global popularity top-K and is counted as a
  fallback.

Every request path is instrumented through :mod:`repro.obs` (spans,
counters, and a latency histogram), all no-ops unless a run is active.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.eval.metrics import topk_indices
from repro.serve.index import RetrievalIndex


class RecommendService:
    """Batched top-K recommendation over a frozen index.

    Parameters
    ----------
    index:
        The offline :class:`RetrievalIndex`.
    k:
        Default list length per request.
    cache_size:
        Maximum cached responses (LRU eviction); ``0`` disables caching.
    exclude_seen:
        Mask each user's training items out of their ranking (the same
        policy the evaluator applies).
    """

    def __init__(self, index: RetrievalIndex, k: int = 10,
                 cache_size: int = 1024, exclude_seen: bool = True):
        self.index = index
        self.k = int(k)
        self.cache_size = int(cache_size)
        self.exclude_seen = bool(exclude_seen)
        self._cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "requests": 0, "cache_hits": 0, "cache_misses": 0,
            "fallbacks": 0}

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_get(self, key) -> Optional[np.ndarray]:
        if self.cache_size <= 0:
            return None
        items = self._cache.get(key)
        if items is not None:
            self._cache.move_to_end(key)
        return items

    def _cache_put(self, key, items: np.ndarray) -> None:
        if self.cache_size <= 0:
            return
        self._cache[key] = items
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, user_id: int, k: Optional[int] = None) -> Dict[str, object]:
        """Top-K for one user; see :meth:`query_batch` for the schema."""
        return self.query_batch([user_id], k=k)[0]

    def query_batch(self, user_ids: Sequence[int],
                    k: Optional[int] = None) -> List[Dict[str, object]]:
        """Top-K for each requested user.

        Returns one dict per request, in request order::

            {"user_id": int, "items": [int, ...],
             "cached": bool, "fallback": bool}

        Known users get exactly what ``model.recommend(u, k,
        exclude=<train items>)`` returns on the live model; unknown users
        get the popularity fallback.
        """
        k = self.k if k is None else int(k)
        user_ids = [int(u) for u in user_ids]
        with obs.trace("serve/query_batch", n_requests=len(user_ids),
                       k=k):
            results: List[Optional[Dict[str, object]]] = (
                [None] * len(user_ids))
            to_score: List[int] = []      # positions needing fresh scores
            for pos, uid in enumerate(user_ids):
                self.stats["requests"] += 1
                if not 0 <= uid < self.index.n_users:
                    self.stats["fallbacks"] += 1
                    results[pos] = {
                        "user_id": uid,
                        "items": [int(i) for i in
                                  self.index.popularity[:k]],
                        "cached": False, "fallback": True}
                    continue
                cached = self._cache_get((uid, k))
                if cached is not None:
                    self.stats["cache_hits"] += 1
                    results[pos] = {"user_id": uid,
                                    "items": [int(i) for i in cached],
                                    "cached": True, "fallback": False}
                else:
                    self.stats["cache_misses"] += 1
                    to_score.append(pos)
            if to_score:
                batch = np.array([user_ids[pos] for pos in to_score],
                                 dtype=np.int64)
                scores = self.index.score_batch(batch, mode="exact")
                if self.exclude_seen:
                    rows, cols = self.index.mask_coords(batch)
                    scores[rows, cols] = -np.inf
                topk = topk_indices(scores, k)
                for row, pos in enumerate(to_score):
                    uid = user_ids[pos]
                    items = topk[row].astype(np.int64)
                    self._cache_put((uid, k), items)
                    results[pos] = {"user_id": uid,
                                    "items": [int(i) for i in items],
                                    "cached": False, "fallback": False}
            if obs.enabled():
                obs.count("serve/requests", len(user_ids))
                obs.count("serve/scored_users", len(to_score))
                obs.observe("serve/batch_size", float(len(user_ids)))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Current cache occupancy plus the lifetime counters."""
        return {"size": len(self._cache), "capacity": self.cache_size,
                **self.stats}
