"""Online inference engine over a :class:`~repro.serve.RetrievalIndex`.

:class:`RecommendService` handles single and batched top-K requests,
configured by one :class:`~repro.serve.ServiceConfig`:

* **Micro-batching** — a batch request scores every uncached user's
  exact row, masks all seen items in one vectorized CSR pass per chunk,
  and ranks with one :func:`~repro.eval.metrics.topk_indices` call.
  Scoring stays per-row (see :mod:`repro.serve.index` for why), so
  batching is shape-invariant and results are bit-identical to the
  single-request path.
* **LRU response cache** — bounded, keyed ``(user_id, k)``, with hit /
  miss counters.  ``cache_size=0`` disables it.
* **Resilience** — every scoring call is guarded by the config's
  :class:`~repro.robust.policies.RetryPolicy` (retry with exponential
  backoff, per-request deadline) behind an error-rate
  :class:`~repro.robust.CircuitBreaker`.  Callers can additionally
  propagate absolute per-request deadlines (and front-end admission
  timestamps) into :meth:`RecommendService.query_batch`, which is how
  the multi-worker front-end (:mod:`repro.serve.frontend`) threads its
  edge deadline through queue wait into worker scoring.  A request whose scoring
  ultimately fails — or arrives while the breaker is open — degrades to
  the configured fallback (stale index and/or popularity) instead of
  erroring: the engine's contract is that ``query_batch`` returns a
  valid ranked list for **every** request, and failures surface in
  counters, not exceptions.
* **Graceful degradation for unknown users** — a user id outside
  ``[0, n_users)`` never raises; it gets the global popularity top-K
  and is counted as a fallback.

Every request path is instrumented through :mod:`repro.obs` (spans and
counters), all no-ops unless a run is active.
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.eval.metrics import topk_indices
from repro.robust.breaker import CircuitBreaker
from repro.serve.config import ServiceConfig
from repro.serve.index import RetrievalIndex

LOG = obs.get_logger(__name__)


def popularity_items(index, uid: Optional[int], k: int,
                     exclude_seen: bool = True) -> np.ndarray:
    """Popularity top-K from ``index``; seen items masked for known users.

    Module-level so the multi-worker front-end can serve the same
    degraded ranking from the parent process (no worker round trip)
    that the in-process engine serves — the two fallback paths agree
    by construction.
    """
    popularity = index.popularity
    if (uid is None or not exclude_seen
            or not 0 <= uid < index.n_users):
        return popularity[:k].astype(np.int64)
    seen = set(int(i) for i in index.seen_items(uid))
    unseen = [int(i) for i in popularity if int(i) not in seen]
    items = unseen[:k]
    if len(items) < k:
        # Tiny catalogs: pad with the most popular seen items so the
        # list is still k long and duplicate-free.
        items += [int(i) for i in popularity
                  if int(i) not in items][:k - len(items)]
    return np.asarray(items, dtype=np.int64)


class RecommendService:
    """Batched, fault-tolerant top-K recommendation over a frozen index.

    Parameters
    ----------
    index:
        The offline :class:`RetrievalIndex` (or any object with its
        scoring/mask/popularity surface, e.g. a fault-injection proxy).
    config:
        The :class:`~repro.serve.ServiceConfig`; defaults apply when
        omitted.
    fallback_index:
        Optional stale :class:`RetrievalIndex` consulted when
        ``config.fallback == "stale_index"`` and primary scoring fails.
    k, cache_size, exclude_seen:
        Deprecated PR4-era keywords, kept as a shim; pass a
        :class:`~repro.serve.ServiceConfig` instead.
    """

    def __init__(self, index: RetrievalIndex,
                 config: Optional[ServiceConfig] = None, *,
                 fallback_index: Optional[RetrievalIndex] = None,
                 k: Optional[int] = None, cache_size: Optional[int] = None,
                 exclude_seen: Optional[bool] = None):
        legacy = {name: value for name, value in
                  (("k", k), ("cache_size", cache_size),
                   ("exclude_seen", exclude_seen)) if value is not None}
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass either a ServiceConfig or the legacy "
                    f"keywords, not both (got config and {sorted(legacy)})")
            warnings.warn(
                "RecommendService(index, k=..., cache_size=..., "
                "exclude_seen=...) is deprecated; pass "
                "RecommendService(index, ServiceConfig(...)) instead",
                DeprecationWarning, stacklevel=2)
            config = ServiceConfig(**legacy)
        self.config = config if config is not None else ServiceConfig()
        self.index = index
        self.fallback_index = fallback_index
        self.breaker = CircuitBreaker(self.config.breaker,
                                      on_transition=self._breaker_transition)
        self._cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "requests": 0, "cache_hits": 0, "cache_misses": 0,
            "fallbacks": 0, "degraded": 0, "scoring_failures": 0,
            "retries": 0, "timeouts": 0, "breaker_opens": 0,
            "breaker_short_circuits": 0, "stale_index_hits": 0}

    # -- deprecated attribute surface (reads forward to the config) ----
    @property
    def k(self) -> int:
        return self.config.k

    @property
    def cache_size(self) -> int:
        return self.config.cache_size

    @property
    def exclude_seen(self) -> bool:
        return self.config.exclude_seen

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_get(self, key) -> Optional[np.ndarray]:
        if self.config.cache_size <= 0:
            return None
        items = self._cache.get(key)
        if items is not None:
            self._cache.move_to_end(key)
        return items

    def _cache_put(self, key, items: np.ndarray) -> None:
        if self.config.cache_size <= 0:
            return
        self._cache[key] = items
        self._cache.move_to_end(key)
        while len(self._cache) > self.config.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Guarded scoring (retry + deadline + breaker bookkeeping)
    # ------------------------------------------------------------------
    def _score_guarded(self, uid: int,
                       deadline: Optional[float] = None
                       ) -> Optional[np.ndarray]:
        """One user's exact score row, or None after the retry budget.

        Failures counted here: exceptions out of the index, calls that
        blow the policy's per-call timeout, and calls that blow the
        request's absolute ``deadline`` (``time.monotonic()`` seconds —
        the engine cannot preempt a running numpy kernel, so both are
        checked after the fact; injected delays and real stalls both
        register).  A deadline that expires before *any* scoring was
        attempted still degrades the request — and increments
        ``timeouts`` — but does not feed the circuit breaker: the index
        was never exercised, so its health is unknown.  Otherwise the
        request's *final* outcome feeds the breaker exactly once.
        """
        policy = self.config.retry
        attempted = False
        for attempt in range(policy.retries + 1):
            if (deadline is not None
                    and time.monotonic() >= deadline):
                self.stats["timeouts"] += 1
                obs.count("serve/timeouts")
                obs.trace_event("serve/deadline_exceeded", user=uid,
                                attempt=attempt, scored=attempted)
                break
            if attempt:
                self.stats["retries"] += 1
                obs.count("serve/retries")
                obs.trace_event("serve/retry", user=uid, attempt=attempt)
                if policy.backoff_s > 0:
                    pause = policy.backoff_s * (2 ** (attempt - 1))
                    if deadline is not None:
                        pause = min(pause,
                                    max(0.0, deadline - time.monotonic()))
                    time.sleep(pause)
            start = time.perf_counter()
            try:
                with obs.trace("serve/score", user=uid, attempt=attempt):
                    row = self.index.score_user(uid)
            except Exception as exc:
                attempted = True
                self.stats["scoring_failures"] += 1
                obs.count("serve/scoring_failures")
                obs.trace_event("serve/scoring_error", user=uid,
                                attempt=attempt, error=type(exc).__name__)
                LOG.warning("scoring user %d failed (attempt %d/%d): %s",
                            uid, attempt + 1, policy.retries + 1, exc)
                continue
            attempted = True
            if (policy.timeout_s is not None
                    and time.perf_counter() - start > policy.timeout_s):
                self.stats["timeouts"] += 1
                self.stats["scoring_failures"] += 1
                obs.count("serve/timeouts")
                obs.count("serve/scoring_failures")
                obs.trace_event("serve/timeout", user=uid, attempt=attempt)
                continue
            if deadline is not None and time.monotonic() > deadline:
                self.stats["timeouts"] += 1
                self.stats["scoring_failures"] += 1
                obs.count("serve/timeouts")
                obs.count("serve/scoring_failures")
                obs.trace_event("serve/deadline_exceeded", user=uid,
                                attempt=attempt, scored=True)
                continue
            self._record_outcome(True)
            return row
        if attempted:
            self._record_outcome(False)
        return None

    def _record_outcome(self, ok: bool) -> None:
        if self.breaker.record(ok):
            self.stats["breaker_opens"] += 1
            obs.count("serve/breaker_opens")
            LOG.warning("circuit breaker opened after repeated scoring "
                        "failures (cooldown: %d requests)",
                        self.config.breaker.cooldown)

    def _breaker_transition(self, old_state: str, new_state: str) -> None:
        """Breaker state changes land on the triggering request's trace."""
        obs.trace_event("serve/breaker_transition", old=old_state,
                        new=new_state)

    # ------------------------------------------------------------------
    # Fallbacks
    # ------------------------------------------------------------------
    def _popularity_items(self, uid: Optional[int], k: int) -> np.ndarray:
        """Popularity top-K; seen items masked for known users."""
        return popularity_items(self.index, uid, k,
                                self.config.exclude_seen)

    def _degraded_items(self, uid: int, k: int) -> "tuple[np.ndarray, str]":
        """Best available ranking when primary scoring is unavailable."""
        if (self.config.fallback == "stale_index"
                and self.fallback_index is not None):
            try:
                scores = self.fallback_index.score_user(uid).copy()
                if self.config.exclude_seen:
                    seen = self.fallback_index.seen_items(uid)
                    scores[seen] = -np.inf
                self.stats["stale_index_hits"] += 1
                obs.count("serve/stale_index_hits")
                return topk_indices(scores, k).astype(np.int64), \
                    "stale_index"
            except Exception as exc:
                LOG.warning("stale-index fallback failed for user %d: "
                            "%s; using popularity", uid, exc)
        return self._popularity_items(uid, k), "popularity"

    def _fallback_response(self, uid: int, k: int,
                           degraded: bool) -> Dict[str, object]:
        """A valid ranked response without fresh primary scores.

        ``degraded=False`` is the unknown-user path (policy, not
        failure): raw popularity, exactly as PR4 served it.
        """
        self.stats["fallbacks"] += 1
        obs.count("serve/fallbacks")
        if degraded:
            self.stats["degraded"] += 1
            obs.count("serve/degraded")
            items, source = self._degraded_items(uid, k)
        else:
            items, source = self.index.popularity[:k], "popularity"
        obs.trace_event("serve/fallback", user=uid, degraded=degraded,
                        source=source)
        return {"user_id": uid, "items": [int(i) for i in items],
                "cached": False, "fallback": True, "degraded": degraded,
                "source": source}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, user_id: int, k: Optional[int] = None) -> Dict[str, object]:
        """Top-K for one user; see :meth:`query_batch` for the schema."""
        return self.query_batch([user_id], k=k)[0]

    def query_batch(self, user_ids: Sequence[int],
                    k: Optional[int] = None, *,
                    deadlines=None,
                    enqueued_at=None) -> List[Dict[str, object]]:
        """Top-K for each requested user.

        Returns one dict per request, in request order::

            {"user_id": int, "items": [int, ...], "cached": bool,
             "fallback": bool, "degraded": bool, "source": str}

        ``source`` is one of ``"index"``, ``"cache"``, ``"popularity"``,
        ``"stale_index"``.  Known users whose scoring succeeds get
        exactly what ``model.recommend(u, k, exclude=<train items>)``
        returns on the live model; unknown users get the popularity
        fallback; scoring failures and an open breaker degrade to the
        configured fallback.  Every request gets a ranked list — the
        engine never lets a scoring exception escape.

        ``deadlines`` propagates per-request absolute deadlines
        (``time.monotonic()`` seconds; a scalar applies to the whole
        batch, ``None`` entries disable the check).  A request past its
        deadline degrades to the fallback instead of scoring further —
        see :meth:`_score_guarded`.

        ``enqueued_at`` carries per-request admission timestamps
        (``time.monotonic()`` seconds) from a front-end queue: the
        recorded ``serve/latency_ms`` then spans admission →
        completion — what the caller actually experienced — and the
        admission → batch-entry gap lands in ``serve/queue_wait_ms``.
        Without it both default to batch entry (zero queue wait).
        """
        k = self.config.k if k is None else int(k)
        user_ids = [int(u) for u in user_ids]
        if deadlines is None or isinstance(deadlines, (int, float)):
            deadlines = [deadlines] * len(user_ids)
        else:
            deadlines = list(deadlines)
        # One enabled() check per batch gates all per-request telemetry
        # (trace minting, binding, latency recording) so the disabled
        # path stays within the 2% overhead budget.
        telemetry = obs.enabled()
        ctxs: List[Optional[obs.TraceContext]] = [None] * len(user_ids)
        t_batch = time.monotonic() if telemetry else 0.0
        with obs.trace("serve/query_batch", n_requests=len(user_ids),
                       k=k):
            results: List[Optional[Dict[str, object]]] = (
                [None] * len(user_ids))

            def _complete(pos: int) -> None:
                # Per-request latency is admission (enqueued_at, when
                # the caller supplied it; batch entry otherwise) → this
                # request's completion: honest about both front-end
                # queueing and micro-batched work.
                result = results[pos]
                enq = t_batch if enqueued_at is None \
                    else float(enqueued_at[pos])
                obs.observe_hdr("serve/queue_wait_ms",
                                max(0.0, t_batch - enq) * 1e3)
                dur = time.monotonic() - enq
                obs.observe_hdr("serve/latency_ms", dur * 1e3)
                obs.record_span("serve/request", dur,
                                user=result["user_id"],
                                source=result["source"],
                                trace=ctxs[pos].trace_id)

            to_score: List[int] = []      # positions needing fresh scores
            for pos, uid in enumerate(user_ids):
                self.stats["requests"] += 1
                if telemetry:
                    ctxs[pos] = obs.new_trace("serve/request", user=uid)
                if not 0 <= uid < self.index.n_users:
                    with obs.bind_trace(ctxs[pos]):
                        results[pos] = self._fallback_response(
                            uid, k, degraded=False)
                    if telemetry:
                        _complete(pos)
                    continue
                cached = self._cache_get((uid, k))
                if cached is not None:
                    self.stats["cache_hits"] += 1
                    results[pos] = {"user_id": uid,
                                    "items": [int(i) for i in cached],
                                    "cached": True, "fallback": False,
                                    "degraded": False, "source": "cache"}
                    if telemetry:
                        with obs.bind_trace(ctxs[pos]):
                            obs.trace_event("serve/cache_hit", user=uid)
                        _complete(pos)
                else:
                    self.stats["cache_misses"] += 1
                    to_score.append(pos)
            scored_pos: List[int] = []
            rows: List[np.ndarray] = []

            def _score_one(pos: int) -> bool:
                """True when the request still awaits the top-K pass."""
                uid = user_ids[pos]
                if not self.breaker.allow():
                    self.stats["breaker_short_circuits"] += 1
                    obs.count("serve/breaker_short_circuits")
                    obs.trace_event("serve/short_circuit", user=uid)
                    results[pos] = self._fallback_response(uid, k,
                                                           degraded=True)
                    return False
                row = self._score_guarded(uid, deadline=deadlines[pos])
                if row is None:
                    results[pos] = self._fallback_response(uid, k,
                                                           degraded=True)
                    return False
                scored_pos.append(pos)
                rows.append(row)
                return True

            for pos in to_score:
                if telemetry:
                    with obs.bind_trace(ctxs[pos]):
                        pending = _score_one(pos)
                    if not pending:
                        _complete(pos)
                else:
                    _score_one(pos)
            chunk = self.config.batch_size
            for start in range(0, len(scored_pos), chunk):
                positions = scored_pos[start:start + chunk]
                batch = np.array([user_ids[pos] for pos in positions],
                                 dtype=np.int64)
                scores = np.stack(rows[start:start + chunk])
                if self.config.exclude_seen:
                    mask_rows, mask_cols = self.index.mask_coords(batch)
                    scores[mask_rows, mask_cols] = -np.inf
                topk = topk_indices(scores, k)
                for row_i, pos in enumerate(positions):
                    uid = user_ids[pos]
                    items = topk[row_i].astype(np.int64)
                    self._cache_put((uid, k), items)
                    results[pos] = {"user_id": uid,
                                    "items": [int(i) for i in items],
                                    "cached": False, "fallback": False,
                                    "degraded": False, "source": "index"}
                    if telemetry:
                        _complete(pos)
            if telemetry:
                obs.count("serve/requests", len(user_ids))
                obs.count("serve/scored_users", len(scored_pos))
                obs.observe("serve/batch_size", float(len(user_ids)))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Hot swap (online learning)
    # ------------------------------------------------------------------
    def swap_index(self, new_index: RetrievalIndex, *,
                   keep_stale_fallback: bool = True) -> Dict[str, object]:
        """Atomically replace the live index with a fresher one.

        The outgoing index becomes the ``stale_index`` fallback (when
        ``keep_stale_fallback``), so a request that fails on the new
        index during the cutover window still gets the ranking the old
        index would have served — PR5's degraded mode is the swap
        window's safety net.  The response cache is cleared (entries
        were computed against the old scores).  Single-threaded callers
        see the swap as one attribute rebind between ``query_batch``
        calls; the multi-process front-end adds its own drain protocol
        on top (:meth:`repro.serve.frontend.ServingFrontend.swap_index`).
        """
        old_index = self.index
        old_users, old_items = old_index.n_users, old_index.n_items
        self.index = new_index
        if keep_stale_fallback:
            self.fallback_index = old_index
        self._cache.clear()
        # The breaker's error window measured the *old* index's health;
        # carrying an open breaker over would short-circuit the fresh
        # index for faults it never produced (the multi-worker swap gets
        # the same clean slate from its replacement supervisor).
        self.breaker = CircuitBreaker(self.config.breaker,
                                      on_transition=self._breaker_transition)
        self.stats["index_swaps"] = self.stats.get("index_swaps", 0) + 1
        obs.count("serve/index_swaps")
        obs.trace_event("serve/index_swap",
                        old_users=old_users, new_users=new_index.n_users,
                        old_items=old_items, new_items=new_index.n_items)
        return {"swaps": self.stats["index_swaps"],
                "new_users": new_index.n_users - old_users,
                "new_items": new_index.n_items - old_items}

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Current cache occupancy plus the lifetime counters."""
        return {"size": len(self._cache),
                "capacity": self.config.cache_size, **self.stats}

    def health(self) -> Dict[str, object]:
        """Breaker state + counters, the shape a /health endpoint wants."""
        return {"breaker": self.breaker.snapshot(),
                "cache": {"size": len(self._cache),
                          "capacity": self.config.cache_size},
                "stats": dict(self.stats)}
