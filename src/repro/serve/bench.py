"""Serving load harness: latency percentiles, QPS, and the index payoff.

:func:`run_serve_benchmark` trains a small model, freezes it into a
:class:`~repro.serve.RetrievalIndex`, and measures four request paths:

* ``naive`` — ``model.recommend`` per request on the live model (graph
  models re-run the full propagation every call);
* ``indexed`` — :class:`~repro.serve.RecommendService` single requests
  with the cache disabled (the honest cold-path number);
* ``cached`` — the same requests repeated against a warm LRU cache;
* ``batched`` — ``query_batch`` throughput at a fixed micro-batch size.

Each path reports p50/p95/p99 request latency (milliseconds) and QPS.
``benchmarks/bench_serve.py`` and ``repro serve bench`` are thin wrappers
over this module; the ≥5x indexed-vs-naive speedup is the acceptance
floor the benchmark records into ``BENCH_serve.json``.

Two extras support operations work:

* ``index_path`` benchmarks a *saved* index (``repro serve export``)
  instead of training in-process — the naive path and speedup are
  skipped because there is no live model to compare against.
* ``fail_rate`` injects seeded scoring failures through
  :class:`~repro.robust.FaultyIndex` and measures the ``degraded`` path:
  what latency/QPS look like when retries and fallbacks are doing the
  serving.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro import obs
from repro.obs.hdr import HdrHistogram

# Bench percentiles come from the same bounded-error HDR histograms the
# live serve path records into (serve/latency_ms) so the offline number
# and the SLO number agree by construction.  0.5% relative error is far
# below run-to-run noise.
_HDR_REL_ERROR = 0.005


def _percentiles_ms(times_s: List[float]) -> Dict[str, float]:
    hist = HdrHistogram("bench/latency_ms", rel_error=_HDR_REL_ERROR,
                        min_value=1e-4, max_value=1e7)
    total = 0.0
    for t in times_s:
        ms = t * 1e3
        hist.observe(ms)
        total += ms
    return {
        "p50_ms": float(hist.percentile(50)),
        "p95_ms": float(hist.percentile(95)),
        "p99_ms": float(hist.percentile(99)),
        "mean_ms": total / len(times_s) if times_s else float("nan"),
        "hdr_rel_error": _HDR_REL_ERROR,
    }


def _timed_each(fn, requests) -> Dict[str, float]:
    """Per-request latencies + aggregate QPS for ``fn(request)``."""
    times: List[float] = []
    start_all = time.perf_counter()
    for request in requests:
        start = time.perf_counter()
        fn(request)
        times.append(time.perf_counter() - start)
    wall = time.perf_counter() - start_all
    out = _percentiles_ms(times)
    out["qps"] = len(times) / wall
    out["n_requests"] = len(times)
    return out


def run_serve_benchmark(model_name: str = "LogiRec++",
                        dataset_name: str = "ciao", epochs: int = 3,
                        n_requests: int = 200, batch_size: int = 32,
                        k: int = 10, seed: int = 0,
                        index_path=None,
                        fail_rate: float = 0.0,
                        frontend_workers: int = 0,
                        frontend_kill_drill: bool = True
                        ) -> Dict[str, object]:
    """Measure the request paths; returns the results dict.

    ``epochs`` is tiny on purpose: request latency does not depend on
    model quality, only on the scoring arithmetic being the real one.
    With ``index_path`` the saved index is benchmarked as-is (no
    training, no naive path).  ``fail_rate > 0`` adds a ``degraded``
    path measured under injected scoring failures.
    ``frontend_workers > 0`` appends the multi-worker open-loop
    overload benchmark (:func:`~repro.serve.frontend.
    run_frontend_benchmark`) over the same index as ``frontend``.
    """
    from repro.serve.config import ServiceConfig
    from repro.serve.engine import RecommendService
    from repro.serve.index import build_index, load_index

    with obs.trace("serve_bench", model=model_name, dataset=dataset_name):
        model = None
        naive = None
        if index_path is not None:
            with obs.trace("load_index"):
                index = load_index(index_path)
            model_name = str(index.meta.get("model_class", model_name))
            dataset_name = str(index.meta.get("dataset", dataset_name))
            n_users, n_items = index.n_users, index.n_items
        else:
            from repro.data import load_dataset, temporal_split
            from repro.experiments.runner import build_model

            dataset = load_dataset(dataset_name)
            split = temporal_split(dataset)
            model = build_model(model_name, dataset, seed=seed)
            model.config.epochs = int(epochs)
            with obs.trace("train"):
                model.fit(dataset, split)
            with obs.trace("build_index"):
                index = build_index(model, dataset, split)
            n_users, n_items = dataset.n_users, dataset.n_items

        rng = np.random.default_rng(seed)
        users = rng.integers(0, n_users, size=n_requests)

        cold = RecommendService(index, ServiceConfig(k=k, cache_size=0))
        warm = RecommendService(
            index, ServiceConfig(k=k, cache_size=4 * n_requests))

        if model is not None:
            train_items = dataset.items_of_user(split.train)

            def _naive(uid: int):
                return model.recommend(
                    int(uid), k=k, exclude=train_items.get(int(uid), ()))

            with obs.trace("naive"):
                naive = _timed_each(_naive, users)
        with obs.trace("indexed"):
            indexed = _timed_each(lambda u: cold.query(int(u)), users)
        with obs.trace("cached"):
            warm.query_batch(users)         # fill the cache
            cached = _timed_each(lambda u: warm.query(int(u)), users)
        with obs.trace("batched"):
            batch_req = RecommendService(
                index, ServiceConfig(k=k, cache_size=0))
            batches = [users[s:s + batch_size]
                       for s in range(0, len(users), batch_size)]
            start = time.perf_counter()
            for batch in batches:
                batch_req.query_batch(batch)
            wall = time.perf_counter() - start
            batched = {"qps": len(users) / wall,
                       "batch_size": batch_size,
                       "n_requests": int(len(users))}
        degraded = None
        if fail_rate > 0:
            from repro.robust import FaultPlan, FaultSpec, FaultyIndex

            plan = FaultPlan([FaultSpec("score_error", rate=fail_rate)],
                             seed=seed)
            shaky = RecommendService(FaultyIndex(index, plan),
                                     ServiceConfig(k=k, cache_size=0))
            with obs.trace("degraded"):
                degraded = _timed_each(lambda u: shaky.query(int(u)),
                                       users)
            degraded["fail_rate"] = float(fail_rate)
            degraded["stats"] = dict(shaky.stats)

    # Aggregate counters over the healthy services (cold/warm/batched);
    # the fault-injected service is excluded so deliberate fault drills
    # don't fail the availability SLO.
    service_stats: Dict[str, int] = {}
    for service in (cold, warm, batch_req):
        for stat_name, value in service.stats.items():
            service_stats[stat_name] = (
                service_stats.get(stat_name, 0) + int(value))

    results = {
        "model": model_name,
        "dataset": dataset_name,
        "n_users": int(n_users),
        "n_items": int(n_items),
        "k": k,
        "epochs": int(epochs),
        "index_kind": index.kind,
        "naive": naive,
        "indexed": indexed,
        "cached": cached,
        "batched": batched,
        "speedup_indexed_vs_naive": (
            naive["mean_ms"] / indexed["mean_ms"] if naive else None),
        "cache_stats": warm.cache_info(),
        "service_stats": service_stats,
    }
    if degraded is not None:
        results["degraded"] = degraded
    from repro.obs.slo import evaluate_serve_results
    results["slo"] = evaluate_serve_results(results)
    if frontend_workers > 0:
        from repro.serve.frontend import run_frontend_benchmark
        with obs.trace("frontend_bench", n_workers=frontend_workers):
            results["frontend"] = run_frontend_benchmark(
                index, n_workers=int(frontend_workers), k=k, seed=seed,
                kill_drill=frontend_kill_drill)
    return results


def format_results(results: Dict[str, object]) -> str:
    lines = [
        f"serve bench: {results['model']} on {results['dataset']} "
        f"({results['n_users']} users x {results['n_items']} items, "
        f"index kind={results['index_kind']}, k={results['k']})"]
    for path in ("naive", "indexed", "cached", "degraded"):
        row = results.get(path)
        if row is None:
            continue
        lines.append(
            f"{path:>8}: p50={row['p50_ms']:.3f}ms "
            f"p95={row['p95_ms']:.3f}ms p99={row['p99_ms']:.3f}ms "
            f"({row['qps']:.0f} qps)")
    batched = results["batched"]
    lines.append(f" batched: {batched['qps']:.0f} qps at "
                 f"batch_size={batched['batch_size']}")
    speedup = results.get("speedup_indexed_vs_naive")
    if speedup is not None:
        lines.append(f"speedup (indexed vs naive single request): "
                     f"{speedup:.1f}x")
    slo = results.get("slo")
    if slo is not None:
        from repro.obs.slo import format_report
        lines.append(format_report(slo))
    frontend = results.get("frontend")
    if frontend is not None:
        from repro.serve.frontend import format_frontend_results
        lines.append(format_frontend_results(frontend))
    return "\n".join(lines)
