"""Serving load harness: latency percentiles, QPS, and the index payoff.

:func:`run_serve_benchmark` trains a small model, freezes it into a
:class:`~repro.serve.RetrievalIndex`, and measures four request paths:

* ``naive`` — ``model.recommend`` per request on the live model (graph
  models re-run the full propagation every call);
* ``indexed`` — :class:`~repro.serve.RecommendService` single requests
  with the cache disabled (the honest cold-path number);
* ``cached`` — the same requests repeated against a warm LRU cache;
* ``batched`` — ``query_batch`` throughput at a fixed micro-batch size.

Each path reports p50/p95/p99 request latency (milliseconds) and QPS.
``benchmarks/bench_serve.py`` and ``repro serve bench`` are thin wrappers
over this module; the ≥5x indexed-vs-naive speedup is the acceptance
floor the benchmark records into ``BENCH_serve.json``.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro import obs


def _percentiles_ms(times_s: List[float]) -> Dict[str, float]:
    arr = np.asarray(times_s) * 1e3
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "mean_ms": float(arr.mean()),
    }


def _timed_each(fn, requests) -> Dict[str, float]:
    """Per-request latencies + aggregate QPS for ``fn(request)``."""
    times: List[float] = []
    start_all = time.perf_counter()
    for request in requests:
        start = time.perf_counter()
        fn(request)
        times.append(time.perf_counter() - start)
    wall = time.perf_counter() - start_all
    out = _percentiles_ms(times)
    out["qps"] = len(times) / wall
    out["n_requests"] = len(times)
    return out


def run_serve_benchmark(model_name: str = "LogiRec++",
                        dataset_name: str = "ciao", epochs: int = 3,
                        n_requests: int = 200, batch_size: int = 32,
                        k: int = 10, seed: int = 0) -> Dict[str, object]:
    """Measure the four request paths; returns the results dict.

    ``epochs`` is tiny on purpose: request latency does not depend on
    model quality, only on the scoring arithmetic being the real one.
    """
    from repro.data import load_dataset, temporal_split
    from repro.experiments.runner import build_model
    from repro.serve.engine import RecommendService
    from repro.serve.index import build_index

    with obs.trace("serve_bench", model=model_name, dataset=dataset_name):
        dataset = load_dataset(dataset_name)
        split = temporal_split(dataset)
        model = build_model(model_name, dataset, seed=seed)
        model.config.epochs = int(epochs)
        with obs.trace("train"):
            model.fit(dataset, split)
        with obs.trace("build_index"):
            index = build_index(model, dataset, split)

        rng = np.random.default_rng(seed)
        users = rng.integers(0, dataset.n_users, size=n_requests)
        train_items = dataset.items_of_user(split.train)

        def _naive(uid: int):
            return model.recommend(int(uid), k=k,
                                   exclude=train_items.get(int(uid), ()))

        cold = RecommendService(index, k=k, cache_size=0)
        warm = RecommendService(index, k=k, cache_size=4 * n_requests)

        with obs.trace("naive"):
            naive = _timed_each(_naive, users)
        with obs.trace("indexed"):
            indexed = _timed_each(lambda u: cold.query(int(u)), users)
        with obs.trace("cached"):
            warm.query_batch(users)         # fill the cache
            cached = _timed_each(lambda u: warm.query(int(u)), users)
        with obs.trace("batched"):
            batch_req = RecommendService(index, k=k, cache_size=0)
            batches = [users[s:s + batch_size]
                       for s in range(0, len(users), batch_size)]
            start = time.perf_counter()
            for batch in batches:
                batch_req.query_batch(batch)
            wall = time.perf_counter() - start
            batched = {"qps": len(users) / wall,
                       "batch_size": batch_size,
                       "n_requests": int(len(users))}

    speedup = naive["mean_ms"] / indexed["mean_ms"]
    return {
        "model": model_name,
        "dataset": dataset_name,
        "n_users": int(dataset.n_users),
        "n_items": int(dataset.n_items),
        "k": k,
        "epochs": int(epochs),
        "index_kind": index.kind,
        "naive": naive,
        "indexed": indexed,
        "cached": cached,
        "batched": batched,
        "speedup_indexed_vs_naive": speedup,
        "cache_stats": warm.cache_info(),
    }


def format_results(results: Dict[str, object]) -> str:
    lines = [
        f"serve bench: {results['model']} on {results['dataset']} "
        f"({results['n_users']} users x {results['n_items']} items, "
        f"index kind={results['index_kind']}, k={results['k']})"]
    for path in ("naive", "indexed", "cached"):
        row = results[path]
        lines.append(
            f"{path:>8}: p50={row['p50_ms']:.3f}ms "
            f"p95={row['p95_ms']:.3f}ms p99={row['p99_ms']:.3f}ms "
            f"({row['qps']:.0f} qps)")
    batched = results["batched"]
    lines.append(f" batched: {batched['qps']:.0f} qps at "
                 f"batch_size={batched['batch_size']}")
    lines.append(f"speedup (indexed vs naive single request): "
                 f"{results['speedup_indexed_vs_naive']:.1f}x")
    return "\n".join(lines)
