"""Offline retrieval index: frozen scoring tables + request-time masks.

:func:`build_index` freezes a trained model's scoring arithmetic via
:meth:`Recommender.export_scoring` into a :class:`RetrievalIndex`.  For
graph models this is the payoff of serving offline: ``score_users`` on
the live model re-runs the full (hyperbolic) graph convolution per call,
while the index stores the *propagated* tables once and replays only the
final distance arithmetic — one small matvec per request.

Exactness contract
------------------
``RetrievalIndex.score_user(u)`` is bit-identical to
``model.score_users(np.array([u]))[0]``.  Two ingredients make that hold
by construction rather than by luck:

* the per-kind formulas are the *same module-level functions* the live
  models call (``lorentz_ranking_scores`` & co. in :mod:`repro.manifolds`,
  ``gdcf_mixed_scores`` in :mod:`repro.models.gdcf`);
* scoring always slices a ``(1, d)`` row and calls the formula with the
  exact shapes ``recommend()`` uses.  This matters because batched GEMM
  is **not** row-wise bit-identical to single-row matmul under BLAS
  blocking — ``(U @ V.T)[i]`` can differ from ``(U[i:i+1] @ V.T)[0]`` in
  the last ulp.  The batched :meth:`score_batch` therefore defaults to
  stacking exact per-row results; its ``gemm`` mode exists only for
  throughput measurements.

The index also carries everything request handling needs beyond scores:
the train-interaction CSR structure (per-user seen-item masks) and a
global popularity ranking (the unknown-user fallback).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.data.dataset import InteractionDataset, Split
from repro.eval.evaluator import csr_row_coords

INDEX_VERSION = 1

ARRAYS_FILE = "index.npz"
META_FILE = "index.json"

# Array-slot names per score kind; every listed slot must be present.
_KIND_SLOTS = {
    "dot": ("user", "item"),
    "dot_bias": ("user", "item", "bias"),
    "neg_sq_dist": ("user", "item"),
    "neg_dist": ("user", "item"),
    "lorentz": ("user", "item"),
    "poincare": ("user", "item"),
    "gdcf_mix": ("user_h", "item_h", "user_e", "item_e"),
    "dense": ("scores",),
}


class IndexFormatError(Exception):
    """An index could not be read: missing, corrupted, or wrong version."""


class RetrievalIndex:
    """Precomputed scoring tables plus per-request masks and fallback.

    Parameters
    ----------
    kind:
        Score family from :meth:`Recommender.export_scoring`.
    arrays:
        The kind's table slots (see ``_KIND_SLOTS``).
    scalars:
        Scalar parameters of the score formula (``gdcf_mix``'s mix
        weight).
    train_indptr, train_indices:
        CSR structure of the training interaction matrix, for per-user
        seen-item masking.
    popularity:
        All item ids ordered most- to least-popular on the training
        split (ties broken by ascending id) — the unknown-user fallback.
    meta:
        Provenance (model class, dataset name, universe sizes).
    """

    def __init__(self, kind: str, arrays: Dict[str, np.ndarray],
                 scalars: Dict[str, float], train_indptr: np.ndarray,
                 train_indices: np.ndarray, popularity: np.ndarray,
                 meta: Dict[str, object]):
        if kind not in _KIND_SLOTS:
            raise IndexFormatError(f"unknown score kind {kind!r}")
        missing = [s for s in _KIND_SLOTS[kind] if s not in arrays]
        if missing:
            raise IndexFormatError(
                f"score kind {kind!r} is missing array slots {missing}")
        self.kind = kind
        self.arrays = {k: np.asarray(v) for k, v in arrays.items()}
        self.scalars = {k: float(v) for k, v in scalars.items()}
        self.train_indptr = np.asarray(train_indptr, dtype=np.int64)
        self.train_indices = np.asarray(train_indices, dtype=np.int64)
        self.popularity = np.asarray(popularity, dtype=np.int64)
        self.meta = dict(meta)
        self.n_users = int(meta["n_users"])
        self.n_items = int(meta["n_items"])

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_rows(self, user_ids: np.ndarray) -> np.ndarray:
        """Score formula on a user-id slice; shape-faithful to the kind."""
        from repro.manifolds import (lorentz_ranking_scores,
                                     neg_dist_scores, neg_sq_dist_scores,
                                     poincare_ranking_scores)
        from repro.models.gdcf import gdcf_mixed_scores

        a = self.arrays
        if self.kind == "dense":
            return a["scores"][user_ids]
        if self.kind == "gdcf_mix":
            return gdcf_mixed_scores(
                a["user_h"][user_ids], a["item_h"],
                a["user_e"][user_ids], a["item_e"], self.scalars["mix"])
        u = a["user"][user_ids]
        if self.kind == "dot":
            return u @ a["item"].T
        if self.kind == "dot_bias":
            return u @ a["item"].T + a["bias"]
        if self.kind == "neg_sq_dist":
            return neg_sq_dist_scores(u, a["item"])
        if self.kind == "neg_dist":
            return neg_dist_scores(u, a["item"])
        if self.kind == "lorentz":
            return lorentz_ranking_scores(u, a["item"])
        return poincare_ranking_scores(u, a["item"])

    def score_user(self, user_id: int) -> np.ndarray:
        """Exact score row — bit-identical to the live model's.

        Always evaluates the formula on a ``(1, d)`` slice, matching the
        shapes ``Recommender.recommend`` feeds ``score_users``.
        """
        uid = int(user_id)
        return self._score_rows(np.array([uid], dtype=np.int64))[0]

    def score_batch(self, user_ids: np.ndarray,
                    mode: str = "exact") -> np.ndarray:
        """Score matrix for a batch of users.

        ``mode="exact"`` (default) stacks per-row exact scores and is
        what the serving engine uses.  ``mode="gemm"`` evaluates the
        formula once on the whole batch — faster, but only
        almost-identical (BLAS batching changes last-ulp rounding), so
        it is reserved for throughput benchmarking.
        """
        user_ids = np.asarray(user_ids, dtype=np.int64)
        if mode == "gemm":
            return self._score_rows(user_ids)
        if mode != "exact":
            raise ValueError(f"unknown scoring mode {mode!r}")
        out = np.empty((len(user_ids), self.n_items), dtype=np.float64)
        for row, uid in enumerate(user_ids):
            out[row] = self._score_rows(
                np.array([uid], dtype=np.int64))[0]
        return out

    # ------------------------------------------------------------------
    # Masks and fallback
    # ------------------------------------------------------------------
    def seen_items(self, user_id: int) -> np.ndarray:
        """Training items of one user (the engine's exclusion set)."""
        uid = int(user_id)
        return self.train_indices[
            self.train_indptr[uid]:self.train_indptr[uid + 1]]

    def mask_coords(self, user_ids: np.ndarray):
        """(local_row, item) coords of the batch users' seen items."""
        return csr_row_coords(self.train_indptr, self.train_indices,
                              user_ids)

    def with_extended_seen(self, user_ids: np.ndarray,
                           item_ids: np.ndarray) -> "RetrievalIndex":
        """A new index sharing this one's scores with a fresher seen mask.

        The online-ingest fast path: streamed interactions must stop
        being recommended back immediately, long before the next
        fine-tune re-exports scoring tables.  Score arrays are shared
        (no copy); only the seen-mask CSR is rebuilt with the new
        ``(user, item)`` pairs appended and deduplicated.  Users beyond
        ``n_users`` are ignored here — truly cold users are served from
        popularity until a fine-tuned index lands.

        Returns a *new* index (generation-bumped in ``meta``) so callers
        swap it in atomically rather than mutating a live one.
        """
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        known = (user_ids >= 0) & (user_ids < self.n_users) \
            & (item_ids >= 0) & (item_ids < self.n_items)
        user_ids, item_ids = user_ids[known], item_ids[known]
        counts = np.diff(self.train_indptr)
        old_users = np.repeat(np.arange(self.n_users, dtype=np.int64),
                              counts)
        all_u = np.concatenate([old_users, user_ids])
        all_i = np.concatenate([self.train_indices, item_ids])
        keys = np.unique(all_u * np.int64(self.n_items) + all_i)
        new_users, new_items = keys // self.n_items, keys % self.n_items
        indptr = np.zeros(self.n_users + 1, dtype=np.int64)
        np.add.at(indptr, new_users + 1, 1)
        indptr = np.cumsum(indptr)
        meta = dict(self.meta)
        meta["generation"] = int(meta.get("generation", 0)) + 1
        return RetrievalIndex(kind=self.kind, arrays=self.arrays,
                              scalars=self.scalars, train_indptr=indptr,
                              train_indices=new_items,
                              popularity=self.popularity, meta=meta)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        arrays_path = path / ARRAYS_FILE
        payload = {f"slot:{k}": v for k, v in self.arrays.items()}
        payload["train_indptr"] = self.train_indptr
        payload["train_indices"] = self.train_indices
        payload["popularity"] = self.popularity
        np.savez(arrays_path, **payload)
        meta = {
            "format_version": INDEX_VERSION,
            "kind": self.kind,
            "scalars": self.scalars,
            "meta": self.meta,
            "arrays_sha256": _sha256_of(arrays_path),
        }
        with open(path / META_FILE, "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
        return path


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def build_index(model, dataset: InteractionDataset,
                split: Split) -> RetrievalIndex:
    """Freeze ``model`` + the training split into a servable index."""
    spec = dict(model.export_scoring())
    kind = str(spec.pop("kind"))
    scalars = {k: float(v) for k, v in spec.items()
               if isinstance(v, (int, float)) and not isinstance(v, bool)}
    arrays = {k: np.asarray(v) for k, v in spec.items()
              if not isinstance(v, (int, float, bool))}
    train_matrix = dataset.interaction_matrix(split.train)
    counts = np.asarray(train_matrix.sum(axis=0)).ravel()
    # Stable argsort on -counts: most popular first, ties by ascending id.
    popularity = np.argsort(-counts, kind="stable").astype(np.int64)
    meta = {
        "model_class": type(model).__name__,
        "dataset": dataset.name,
        "n_users": int(model.n_users),
        "n_items": int(model.n_items),
    }
    return RetrievalIndex(kind=kind, arrays=arrays, scalars=scalars,
                          train_indptr=train_matrix.indptr,
                          train_indices=train_matrix.indices,
                          popularity=popularity, meta=meta)


def load_index(path) -> RetrievalIndex:
    """Load a saved index; validates version and checksum."""
    path = Path(path)
    meta_path = path / META_FILE
    arrays_path = path / ARRAYS_FILE
    if not meta_path.is_file():
        raise IndexFormatError(f"no index at {path} (missing {META_FILE})")
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexFormatError(
            f"unreadable index metadata {meta_path}: {exc}") from exc
    version = meta.get("format_version")
    if version != INDEX_VERSION:
        raise IndexFormatError(
            f"index {path} has format_version {version!r}; this build "
            f"reads version {INDEX_VERSION}")
    if not arrays_path.is_file():
        raise IndexFormatError(f"index {path} is missing {ARRAYS_FILE}")
    if _sha256_of(arrays_path) != meta.get("arrays_sha256"):
        raise IndexFormatError(
            f"index {path} is corrupted: {ARRAYS_FILE} checksum mismatch")
    with np.load(arrays_path) as npz:
        payload = {key: npz[key] for key in npz.files}
    arrays = {key[len("slot:"):]: value for key, value in payload.items()
              if key.startswith("slot:")}
    try:
        return RetrievalIndex(
            kind=meta["kind"], arrays=arrays,
            scalars=meta.get("scalars", {}),
            train_indptr=payload["train_indptr"],
            train_indices=payload["train_indices"],
            popularity=payload["popularity"], meta=meta["meta"])
    except KeyError as exc:
        raise IndexFormatError(
            f"index {path} is missing required entry {exc}") from exc
