"""Versioned model checkpoints: ``arrays.npz`` + ``checkpoint.json``.

A checkpoint is a directory with two files:

* ``arrays.npz`` — every learnable parameter, keyed exactly as
  :meth:`Recommender.state_dict` emits them (``"<position>:<name>"``);
* ``checkpoint.json`` — format version, model/config class names, the
  full config, extra constructor kwargs, universe sizes, dataset
  provenance, the RNG bit-generator state, the loss history, and a
  sha256 checksum of ``arrays.npz``.

Design constraints the format satisfies:

* **Zero dependencies** — numpy + the standard library only.
* **Bit-identical round trips** — ``.npz`` stores float64 arrays
  losslessly and the RNG state is the exact ``bit_generator.state``
  dict, so a loaded model both scores and *continues training*
  identically to the live one.
* **Corruption detection** — the JSON carries a sha256 of the array
  payload; any mismatch (or a version bump) raises
  :class:`CheckpointError` with a one-line reason instead of producing
  a silently wrong model.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Type

import numpy as np

from repro.data.dataset import InteractionDataset, Split

CHECKPOINT_VERSION = 1

ARRAYS_FILE = "arrays.npz"
META_FILE = "checkpoint.json"


class CheckpointError(Exception):
    """A checkpoint could not be read: missing, corrupted, or wrong version."""


def _model_registry() -> Dict[str, Type]:
    """Name -> class for every checkpointable model.

    Imported lazily so ``repro.serve`` stays importable without pulling
    the full model zoo at module-import time.
    """
    import repro.models as models
    from repro.core import LogiRec, LogiRecPP

    registry = {name: getattr(models, name) for name in models.__all__
                if name not in ("Recommender", "ServableModel",
                                "TrainConfig")}
    registry["LogiRec"] = LogiRec
    registry["LogiRecPP"] = LogiRecPP
    return registry


def _config_registry() -> Dict[str, Type]:
    from repro.core.config import LogiRecConfig
    from repro.models.base import TrainConfig

    return {"TrainConfig": TrainConfig, "LogiRecConfig": LogiRecConfig}


def _sha256_of(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fold_legacy_positional(func: str, legacy_args: tuple,
                            **keywords) -> Dict[str, object]:
    """Shim for the PR4 signatures where dataset/split were positional.

    The formal API takes them keyword-only; positional values are still
    accepted for one deprecation cycle, folded into the keyword slots in
    declaration order, and warned about.  Mixing both spellings for the
    same slot is an error, not a guess.
    """
    if not legacy_args:
        return keywords
    names = list(keywords)
    if len(legacy_args) > len(names):
        raise TypeError(
            f"{func}() takes at most {len(names)} optional arguments "
            f"({', '.join(names)}), got {len(legacy_args)} positionally")
    warnings.warn(
        f"passing {', '.join(names[:len(legacy_args)])} to {func}() "
        f"positionally is deprecated; pass keyword arguments instead",
        DeprecationWarning, stacklevel=3)
    for name, value in zip(names, legacy_args):
        if keywords[name] is not None:
            raise TypeError(
                f"{func}() got {name} both positionally and as a keyword")
        keywords[name] = value
    return keywords


def save_checkpoint(model, path, *legacy_args,
                    dataset: Optional[InteractionDataset] = None) -> Path:
    """Write ``model`` to the directory ``path``; returns the directory.

    ``dataset`` (keyword-only) records provenance — the dataset name and
    universe statistics — so ``repro serve export`` can regenerate the
    deterministic synthetic dataset from the registry without the caller
    re-specifying it.
    """
    dataset = _fold_legacy_positional("save_checkpoint", legacy_args,
                                      dataset=dataset)["dataset"]
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    arrays_path = path / ARRAYS_FILE
    np.savez(arrays_path, **model.state_dict())
    meta: Dict[str, object] = {
        "format_version": CHECKPOINT_VERSION,
        "model_class": type(model).__name__,
        "config_class": type(model.config).__name__,
        "config": asdict(model.config),
        "extra_init": model.export_extra_init(),
        "n_users": int(model.n_users),
        "n_items": int(model.n_items),
        "rng_state": model.rng.bit_generator.state,
        "loss_history": [float(x) for x in model.loss_history],
        "arrays_sha256": _sha256_of(arrays_path),
    }
    if hasattr(model, "n_tags"):
        meta["n_tags"] = int(model.n_tags)
    if dataset is not None:
        meta["dataset"] = {
            "name": dataset.name,
            "n_users": int(dataset.n_users),
            "n_items": int(dataset.n_items),
            "n_tags": int(dataset.n_tags),
            "n_interactions": int(dataset.n_interactions),
        }
    with open(path / META_FILE, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
    return path


def read_checkpoint_meta(path) -> Dict[str, object]:
    """Parse and validate ``checkpoint.json`` (version + checksum)."""
    path = Path(path)
    meta_path = path / META_FILE
    arrays_path = path / ARRAYS_FILE
    if not meta_path.is_file():
        raise CheckpointError(f"no checkpoint at {path} "
                              f"(missing {META_FILE})")
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint metadata {meta_path}: {exc}") from exc
    version = meta.get("format_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format_version {version!r}; this "
            f"build reads version {CHECKPOINT_VERSION}")
    if not arrays_path.is_file():
        raise CheckpointError(f"checkpoint {path} is missing {ARRAYS_FILE}")
    actual = _sha256_of(arrays_path)
    if actual != meta.get("arrays_sha256"):
        raise CheckpointError(
            f"checkpoint {path} is corrupted: {ARRAYS_FILE} checksum "
            f"mismatch")
    return meta


def load_checkpoint(path, *legacy_args,
                    dataset: Optional[InteractionDataset] = None,
                    split: Optional[Split] = None):
    """Rebuild the checkpointed model; returns the ready model.

    ``dataset`` and ``split`` are keyword-only.
    Passing ``dataset``/``split`` runs :meth:`Recommender.prepare` so
    graph models come back with their adjacency caches and can score or
    resume training immediately.  Loading restores parameters, the RNG
    state, and the loss history, making a resumed ``fit`` bit-identical
    to the never-serialized model continuing in place.
    """
    folded = _fold_legacy_positional("load_checkpoint", legacy_args,
                                     dataset=dataset, split=split)
    dataset, split = folded["dataset"], folded["split"]
    path = Path(path)
    meta = read_checkpoint_meta(path)
    models = _model_registry()
    model_class = meta.get("model_class")
    if model_class not in models:
        raise CheckpointError(
            f"checkpoint {path} names unknown model class {model_class!r}")
    configs = _config_registry()
    config_class = meta.get("config_class")
    if config_class not in configs:
        raise CheckpointError(
            f"checkpoint {path} names unknown config class {config_class!r}")
    cls = models[model_class]
    try:
        config = configs[config_class](**meta["config"])
    except TypeError as exc:
        raise CheckpointError(
            f"checkpoint {path} config does not match "
            f"{config_class}: {exc}") from exc
    kwargs = dict(meta.get("extra_init", {}))
    kwargs["config"] = config
    ctor_params = inspect.signature(cls.__init__).parameters
    if "n_tags" in ctor_params:
        if "n_tags" not in meta:
            raise CheckpointError(
                f"checkpoint {path}: {model_class} requires n_tags but "
                f"the checkpoint does not record it")
        kwargs["n_tags"] = int(meta["n_tags"])
    try:
        model = cls(int(meta["n_users"]), int(meta["n_items"]), **kwargs)
    except TypeError as exc:
        raise CheckpointError(
            f"checkpoint {path}: cannot construct {model_class}: "
            f"{exc}") from exc
    with np.load(path / ARRAYS_FILE) as npz:
        arrays = {key: npz[key] for key in npz.files}
    try:
        model.load_state_dict(arrays)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} arrays do not match {model_class}: "
            f"{exc}") from exc
    model.rng.bit_generator.state = meta["rng_state"]
    model.loss_history = [float(x) for x in meta.get("loss_history", [])]
    if dataset is not None and split is not None:
        model.prepare(dataset, split)
    return model
