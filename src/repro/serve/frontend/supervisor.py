"""Worker supervision: spawn, health-check, restart, aggregate health.

:class:`WorkerSupervisor` owns the worker processes of a
:class:`~repro.serve.frontend.core.ServingFrontend`.  It detects the
two distinct failure modes a process fleet has:

* **crash** — the process is gone; ``Process.is_alive()`` is false and
  the exit code says how it died.  Detected on the next health check.
* **stall** — the process is alive but wedged (the injected
  ``worker_stall`` fault, a hung syscall, a livelock): it stops
  draining its queue *and* stops heartbeating.  Detected when the last
  heartbeat is older than ``stall_after_s``; the supervisor kills the
  process so the failure collapses into the crash path.

Recovery is restart-with-generation: the replacement worker gets a
fresh request queue and an incremented generation number, so messages
from the dead incarnation (late results, stale heartbeats) are
recognizable and dropped by the parent pump.  While the replacement
warms up (attaches the shard, builds its engine, sends the first
heartbeat) the shard's handle reports not-ready and the front-end
serves that user range from the popularity fallback — degraded, never
failed.

The supervisor also aggregates per-worker engine stats and circuit-
breaker snapshots (carried on every heartbeat and result message) into
:meth:`fleet_health` — the per-shard view behind
``repro serve http --status``, where one worker's OPEN breaker is
visible without asking each process.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.robust.faults import FaultPlan
from repro.serve.frontend.config import FrontendConfig
from repro.serve.frontend.sharding import ShardLayout
from repro.serve.frontend.worker import worker_main

LOG = obs.get_logger(__name__)

STARTING = "starting"
READY = "ready"
DEAD = "dead"
STOPPED = "stopped"


class WorkerHandle:
    """Parent-side state for one shard worker (one per shard)."""

    def __init__(self, worker_id: int, shard_id: int):
        self.worker_id = worker_id
        self.shard_id = shard_id
        self.generation = 0
        self.process = None
        self.request_queue = None
        self.state = STOPPED
        self.last_heartbeat = 0.0
        self.handled = 0
        self.stats: Dict[str, int] = {}
        self.breaker: Dict[str, object] = {}
        self.restarts = 0

    @property
    def ready(self) -> bool:
        return self.state == READY

    def snapshot(self) -> Dict[str, object]:
        return {"worker_id": self.worker_id, "shard_id": self.shard_id,
                "state": self.state, "generation": self.generation,
                "restarts": self.restarts, "handled": self.handled,
                "pid": getattr(self.process, "pid", None),
                "breaker": dict(self.breaker),
                "stats": dict(self.stats)}


class WorkerSupervisor:
    """Spawns, health-checks, and restarts the worker fleet.

    ``on_failure(worker_id, generation, reason)`` fires once per
    detected failure *before* the replacement is spawned — the
    front-end uses it to fail the dead generation's in-flight requests
    over to the degraded fallback.  Thread-safe: heartbeats arrive from
    the response pump while ``check`` runs on the monitor thread.
    """

    def __init__(self, layout: ShardLayout, config: FrontendConfig,
                 response_queue,
                 faults: Optional[FaultPlan] = None,
                 mp_context=None,
                 on_failure: Optional[
                     Callable[[int, int, str], None]] = None):
        if mp_context is None:
            import multiprocessing
            # fork: workers inherit the layout/config without pickling
            # and start in milliseconds, which is what makes restart-
            # under-load viable on small machines.
            mp_context = multiprocessing.get_context("fork")
        self._mp = mp_context
        self.layout = layout
        self.config = config
        self.response_queue = response_queue
        self.faults = faults
        self.on_failure = on_failure
        self._lock = threading.Lock()
        self._stopping = False
        self.handles: List[WorkerHandle] = [
            WorkerHandle(i, i) for i in range(config.n_workers)]
        self.total_restarts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn_locked(self, handle: WorkerHandle) -> None:
        handle.generation += 1
        handle.request_queue = self._mp.Queue()
        handle.state = STARTING
        handle.last_heartbeat = time.monotonic()
        handle.process = self._mp.Process(
            target=worker_main,
            args=(handle.worker_id, handle.generation, self.layout,
                  handle.shard_id, self.config, handle.request_queue,
                  self.response_queue, self.faults),
            daemon=True,
            name=f"repro-serve-w{handle.worker_id}")
        handle.process.start()

    def start(self) -> None:
        with self._lock:
            for handle in self.handles:
                self._spawn_locked(handle)

    def wait_ready(self, drain_responses: Callable[[], None],
                   timeout: Optional[float] = None) -> None:
        """Block until every worker heartbeats (or raise on timeout).

        ``drain_responses`` is the front-end's pump step — the caller
        owns the response queue, so readiness heartbeats must flow
        through it rather than being consumed here.
        """
        budget = self.config.start_timeout_s if timeout is None \
            else timeout
        deadline = time.monotonic() + budget
        while True:
            drain_responses()
            with self._lock:
                if all(h.ready for h in self.handles):
                    return
                missing = [h.worker_id for h in self.handles
                           if not h.ready]
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"workers {missing} not ready after {budget:.1f}s")
            time.sleep(0.005)

    def stop(self, timeout: float = 5.0) -> None:
        """Shut every worker down (sentinel, join, then escalate)."""
        from repro.serve.frontend.worker import SHUTDOWN
        with self._lock:
            # Taken under the lock so a concurrent check() can never
            # spawn a replacement after this point (it would be joined
            # by nobody and leak its queue).
            self._stopping = True
            handles = list(self.handles)
        for handle in handles:
            if handle.request_queue is not None:
                try:
                    handle.request_queue.put(SHUTDOWN)
                except Exception:  # pragma: no cover - queue closed
                    pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            proc = handle.process
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - last resort
                    proc.kill()
                    proc.join(timeout=1.0)
            handle.state = STOPPED
            if handle.request_queue is not None:
                handle.request_queue.close()
                handle.request_queue.join_thread()
                handle.request_queue = None

    # ------------------------------------------------------------------
    # Health signals (called from the response pump)
    # ------------------------------------------------------------------
    def note_alive(self, worker_id: int, generation: int, handled: int,
                   stats: Dict[str, int],
                   breaker: Dict[str, object]) -> None:
        """Record a heartbeat or result message from a worker."""
        with self._lock:
            handle = self.handles[worker_id]
            if generation != handle.generation:
                return  # a replaced incarnation talking past its death
            if handle.state == STARTING:
                handle.state = READY
                obs.trace_event("frontend/worker_ready",
                                worker=worker_id, generation=generation)
            handle.last_heartbeat = time.monotonic()
            handle.handled = handled
            handle.stats = stats
            handle.breaker = breaker

    def is_current(self, worker_id: int, generation: int) -> bool:
        with self._lock:
            return generation == self.handles[worker_id].generation

    def route(self, shard_id: int) -> Optional[WorkerHandle]:
        """The ready handle serving ``shard_id``, or None (degraded)."""
        with self._lock:
            handle = self.handles[shard_id]
            return handle if handle.ready else None

    # ------------------------------------------------------------------
    # Detection and restart (called from the monitor thread)
    # ------------------------------------------------------------------
    def check(self) -> List[Tuple[int, int, str]]:
        """One health pass: detect failures, restart, report them.

        Returns ``[(worker_id, dead_generation, reason), ...]`` for
        every worker that failed since the last pass; ``on_failure``
        has already fired and the replacement is already starting when
        this returns.
        """
        failures: List[Tuple[int, int, str]] = []
        now = time.monotonic()
        with self._lock:
            if self._stopping:
                return failures
            for handle in self.handles:
                if handle.state not in (READY, STARTING):
                    continue
                proc = handle.process
                if proc is not None and not proc.is_alive():
                    reason = f"crashed (exit code {proc.exitcode})"
                elif (handle.state == READY
                        and now - handle.last_heartbeat
                        > self.config.stall_after_s):
                    reason = (f"stalled (no heartbeat for "
                              f"{now - handle.last_heartbeat:.2f}s)")
                    proc.terminate()
                    proc.join(timeout=1.0)
                    if proc.is_alive():  # pragma: no cover
                        proc.kill()
                        proc.join(timeout=1.0)
                elif (handle.state == STARTING
                        and now - handle.last_heartbeat
                        > self.config.start_timeout_s):
                    reason = "never became ready"
                    proc.terminate()
                    proc.join(timeout=1.0)
                else:
                    continue
                failures.append((handle.worker_id, handle.generation,
                                 reason))
                handle.state = DEAD
        for worker_id, generation, reason in failures:
            LOG.warning("worker %d (gen %d) %s; restarting",
                        worker_id, generation, reason)
            obs.count("frontend/worker_restarts")
            obs.trace_event("frontend/worker_failure", worker=worker_id,
                            generation=generation, reason=reason)
            # Restart bookkeeping BEFORE the failover callback: the
            # callback resolves client futures, and a client that saw
            # its future resolve must also see total_restarts reflect
            # the failure (drills read it right after their last
            # future).  Routing cannot reach the replacement early —
            # it stays not-ready until its first heartbeat.
            with self._lock:
                if self._stopping:
                    break
                handle = self.handles[worker_id]
                old_queue = handle.request_queue
                handle.restarts += 1
                self.total_restarts += 1
                self._spawn_locked(handle)
            if old_queue is not None:
                old_queue.close()
            if self.on_failure is not None:
                self.on_failure(worker_id, generation, reason)
        return failures

    # ------------------------------------------------------------------
    # Aggregated health (satellite view for /status)
    # ------------------------------------------------------------------
    def fleet_health(self) -> Dict[str, object]:
        """Per-shard worker + breaker view, plus fleet-wide rollups.

        ``shards`` maps shard id → that worker's state and breaker
        snapshot; ``breaker_states`` counts workers per breaker state,
        and ``any_breaker_open`` is the one-glance flag surfaced by
        ``repro serve http --status``.
        """
        with self._lock:
            shards = {str(h.shard_id): h.snapshot()
                      for h in self.handles}
        states: Dict[str, int] = {}
        for snap in shards.values():
            state = str(snap["breaker"].get("state", "unknown"))
            states[state] = states.get(state, 0) + 1
        return {
            "n_workers": len(shards),
            "ready": sum(1 for s in shards.values()
                         if s["state"] == READY),
            "total_restarts": self.total_restarts,
            "shards": shards,
            "breaker_states": states,
            "any_breaker_open": any(
                s["breaker"].get("state") == "open"
                for s in shards.values()),
        }
