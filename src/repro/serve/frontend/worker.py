"""Worker-process entry point for the multi-worker serving front-end.

Each worker owns one user-range shard: it attaches the shard's
shared-memory tables zero-copy (:func:`~repro.serve.frontend.sharding.
attach_shard`), builds a plain in-process
:class:`~repro.serve.RecommendService` over the local view, and serves
micro-batches from its request queue.  All the per-request semantics —
retry/deadline guards, circuit breaker, LRU cache, fallback ranking —
are the engine's, unchanged; this module only adds the process shell:

* **id translation** — requests carry global user ids; the worker
  subtracts its shard's ``lo`` at the boundary and adds it back in
  responses, so the engine sees a dense local universe.
* **heartbeats** — while idle the worker emits a heartbeat every
  ``heartbeat_interval_s`` carrying its engine stats and breaker
  snapshot; result messages carry the same payload, so a busy worker
  is never mistaken for a stalled one and the supervisor's per-shard
  health view is always one message old at worst.
* **deadline pre-shed** — a request whose absolute deadline expired
  while sitting in the inter-process queue is answered ``"shed"``
  without touching the engine (no scoring, no breaker feed); the
  front-end maps that to the load-shedding path.
* **fault hooks** — process-level :class:`~repro.robust.FaultSpec`
  kinds (``worker_kill`` / ``worker_stall`` / ``slow_shard``) fire here
  so ``repro robust inject serve`` and the kill-drill benchmark can
  exercise crash detection, stall detection, and hot-shard overload
  deterministically.

Observability in the child is quiesced at entry: the worker nulls the
inherited run globals (without closing the parent's sink — the file
descriptor is re-pointed at ``/dev/null`` first) and ships raw stats
upward; the parent's response pump re-emits telemetry under the
original request traces, keeping ``events.jsonl`` single-writer.
"""

from __future__ import annotations

import os
import queue
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.robust.faults import FaultPlan, FaultSpec
from repro.serve.engine import RecommendService
from repro.serve.frontend.config import FrontendConfig
from repro.serve.frontend.sharding import ShardLayout, attach_shard

# Queue message tags (worker → parent).
HEARTBEAT = "heartbeat"
RESULT = "result"
BYE = "bye"

# Parent → worker shutdown sentinel.
SHUTDOWN = None

# Exit code for the injected worker_kill fault, so tests and the
# supervisor log can tell a drill kill from a real crash.
KILL_EXIT_CODE = 17


def _quiesce_observability() -> None:
    """Disable inherited telemetry without disturbing the parent's sink.

    The front-end forks workers while a run may be active.  Calling
    ``obs.disable()`` here would close the inherited ``events.jsonl``
    handle — flushing whatever the fork captured into the parent's
    stream.  Instead the sink's file descriptor is re-pointed at
    ``/dev/null`` (parent's descriptor is untouched; fd tables are
    per-process) and the run globals are nulled, so every obs helper in
    the child is a no-op from the first instruction of the worker loop.
    """
    from repro.obs import run as run_mod
    active = run_mod._RUN
    if active is not None:
        fh = getattr(active._sink, "_fh", None)
        if fh is not None:
            try:
                devnull = os.open(os.devnull, os.O_WRONLY)
                os.dup2(devnull, fh.fileno())
                os.close(devnull)
            except OSError:  # pragma: no cover - sink already closed
                pass
    run_mod._RUN = None
    run_mod._NAN_CHECKS = False


class _FaultState:
    """Worker-local view of the process-level fault specs.

    The worker counts requests *handled* (not batches); ``worker_kill``
    and ``worker_stall`` trigger the first time the running count
    reaches ``after_requests``.  The plan's ``fired`` bookkeeping lives
    in whichever process fired the fault, which for a kill is the
    process that just died — so once-by-default semantics are enforced
    by *generation*: a replacement worker (generation > 1) skips
    ``once=True`` faults, exactly as an exhausted spec would be skipped
    in-process.  ``slow_shard`` draws from a generator seeded by
    ``(plan seed, worker id)`` so the delay schedule is replayable per
    worker without coordinating across processes.
    """

    def __init__(self, plan: Optional[FaultPlan], worker_id: int,
                 shard_id: int, generation: int):
        self.kill_spec: Optional[FaultSpec] = None
        self.stall_spec: Optional[FaultSpec] = None
        self.slow_specs: List[FaultSpec] = []
        self.stall_fired = False
        seed = plan.seed if plan is not None else 0
        self.rng = np.random.default_rng((seed, worker_id))
        if plan is None:
            return
        replacement = generation > 1
        for spec in plan.specs:
            if spec.kind == "worker_kill" and spec.worker == worker_id:
                if not (spec.once and replacement):
                    self.kill_spec = spec
            elif spec.kind == "worker_stall" and spec.worker == worker_id:
                if not (spec.once and replacement):
                    self.stall_spec = spec
            elif spec.kind == "slow_shard" and spec.shard in (None,
                                                              shard_id):
                self.slow_specs.append(spec)

    def kill_due(self, handled: int) -> bool:
        return (self.kill_spec is not None
                and handled >= self.kill_spec.after_requests)

    def stall_due(self, handled: int) -> Optional[float]:
        if (self.stall_spec is not None and not self.stall_fired
                and handled >= self.stall_spec.after_requests):
            self.stall_fired = True
            return self.stall_spec.delay_s
        return None

    def slow_delay(self, n_requests: int) -> float:
        """Total injected delay for a batch of ``n_requests``."""
        total = 0.0
        for spec in self.slow_specs:
            hits = int(np.count_nonzero(
                self.rng.random(n_requests) < spec.rate))
            total += hits * spec.delay_s
        return total


def worker_main(worker_id: int, generation: int, layout: ShardLayout,
                shard_id: int, config: FrontendConfig, request_queue,
                response_queue,
                faults: Optional[FaultPlan] = None) -> None:
    """Run one shard worker until the shutdown sentinel (fork target).

    Request messages are ``(batch_id, requests)`` with each request a
    ``(req_id, user_id, k, deadline, t_admit)`` tuple (global user id;
    ``deadline``/``t_admit`` in ``time.monotonic()`` seconds, deadline
    may be None).  Responses are tagged tuples — see the module
    constants — and every response carries ``generation`` so the parent
    can drop messages from a worker it has already replaced.
    """
    _quiesce_observability()
    shard = attach_shard(layout, shard_id)
    engine = RecommendService(shard.index, config.service)
    fault_state = _FaultState(faults, worker_id, shard_id, generation)
    handled = 0

    def _payload() -> Tuple[Dict[str, int], dict]:
        return dict(engine.stats), engine.breaker.snapshot()

    def _heartbeat() -> None:
        stats, breaker = _payload()
        response_queue.put((HEARTBEAT, worker_id, generation,
                            time.monotonic(), handled, stats, breaker))

    try:
        _heartbeat()  # "ready": releases the supervisor's start wait
        while True:
            try:
                message = request_queue.get(
                    timeout=config.heartbeat_interval_s)
            except queue.Empty:
                _heartbeat()
                continue
            if message is SHUTDOWN:
                break
            batch_id, requests = message
            t_start = time.monotonic()  # queue wait ends here
            handled += len(requests)
            if fault_state.kill_due(handled):
                # Injected crash mid-batch: die without responding, so
                # the supervisor must fail over the in-flight work.
                os._exit(KILL_EXIT_CODE)
            stall = fault_state.stall_due(handled)
            if stall is not None:
                # Wedged, not dead: no serving, no heartbeats.  Only
                # heartbeat ageing can catch this.
                time.sleep(stall)
            delay = fault_state.slow_delay(len(requests))
            if delay > 0:
                time.sleep(delay)
            now = time.monotonic()
            shed: List[Tuple[int, str]] = []
            live: List[Tuple[int, int, int, Optional[float], float]] = []
            for req in requests:
                req_id, uid, k, deadline, t_admit = req
                if deadline is not None and now >= deadline:
                    shed.append((req_id, "deadline"))
                else:
                    live.append(req)
            entries: List[Tuple[int, object]] = [
                (req_id, reason) for req_id, reason in shed]
            by_k: Dict[int, List[Tuple[int, int, Optional[float], float]]]
            by_k = {}
            for req_id, uid, k, deadline, t_admit in live:
                by_k.setdefault(k, []).append(
                    (req_id, uid, deadline, t_admit))
            for k, group in by_k.items():
                local = [uid - shard.lo for _, uid, _, _ in group]
                results = engine.query_batch(
                    local, k,
                    deadlines=[deadline for _, _, deadline, _ in group])
                for (req_id, uid, _, _), result in zip(group, results):
                    result["user_id"] = uid  # back to the global id
                    entries.append((req_id, result))
            stats, breaker = _payload()
            response_queue.put((RESULT, worker_id, generation, batch_id,
                                t_start, entries, stats, breaker))
    finally:
        try:
            response_queue.put((BYE, worker_id, generation))
        except Exception:  # pragma: no cover - queue torn down first
            pass
        shard.close()
