"""The multi-worker serving front-end: admission, dispatch, supervision.

:class:`ServingFrontend` is the parent-process half of
:mod:`repro.serve.frontend`.  It shards a frozen
:class:`~repro.serve.RetrievalIndex` into shared memory
(:mod:`~repro.serve.frontend.sharding`), runs one worker process per
shard (:mod:`~repro.serve.frontend.worker`) under a
:class:`~repro.serve.frontend.supervisor.WorkerSupervisor`, and exposes
one thread-safe entry point — :meth:`submit` — that the HTTP layer (or
a load generator, or a test) calls per request.

The robustness contract, end to end:

* **Bounded admission.**  At most ``max_queue_depth`` requests are in
  flight; arrivals beyond that — or arriving while the EWMA queue wait
  exceeds ``wait_budget_ms``, or already past their deadline — are
  *shed*: resolved immediately with ``status="shed"`` (HTTP 429) and
  counted in ``shed_requests``.  Overload degrades throughput, never
  latency of the admitted or the stability of the process.
* **Deadline propagation.**  Each admitted request carries an absolute
  ``time.monotonic()`` deadline from the edge.  The dispatcher drops
  requests that expire waiting for a batch window; the worker drops
  ones that expire in the inter-process queue (both without scoring);
  the engine's retry loop observes the same deadline mid-scoring.
* **Supervised workers.**  Crashed or stalled workers are restarted;
  their in-flight requests fail over to the popularity fallback
  (``degraded=True``, never an error), and while a replacement warms
  up its whole shard serves the same fallback.
* **Graceful drain.**  :meth:`drain` stops admitting (new submits get
  ``status="draining"``), flushes every in-flight request, then tears
  down workers and shared memory.  Zero admitted requests are dropped.

Telemetry is single-writer by construction: workers run with
observability quiesced and ship raw stats on every message; the
response pump re-emits latency/queue-wait histograms, counters, and
per-request spans under the trace context minted at admission, so
``repro obs export-trace`` renders cross-process requests on one
timeline.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

from repro import obs
from repro.robust.faults import FaultPlan
from repro.serve.engine import popularity_items
from repro.serve.frontend.config import FrontendConfig
from repro.serve.frontend.sharding import create_shards
from repro.serve.frontend.supervisor import WorkerSupervisor
from repro.serve.frontend.worker import BYE, HEARTBEAT, RESULT
from repro.serve.index import RetrievalIndex

LOG = obs.get_logger(__name__)

# EWMA smoothing for the observed queue wait (admission wait-budget
# trigger): ~10 samples of memory — reacts within a few batches without
# flapping on one slow request.
_EWMA_ALPHA = 0.2


class PendingRequest:
    """One admitted request: identity, deadline, and its future.

    ``resolve`` is idempotent (first caller wins) because two paths can
    race to answer: a worker's late result vs. the failover sweep after
    that worker was declared dead.
    """

    __slots__ = ("req_id", "user_id", "k", "deadline", "t_admit",
                 "future", "ctx", "worker_id", "generation")

    def __init__(self, req_id: int, user_id: int, k: int,
                 deadline: Optional[float], t_admit: float,
                 ctx: Optional[obs.TraceContext]):
        self.req_id = req_id
        self.user_id = user_id
        self.k = k
        self.deadline = deadline
        self.t_admit = t_admit
        self.future: Future = Future()
        self.ctx = ctx
        self.worker_id: Optional[int] = None
        self.generation: Optional[int] = None

    def resolve(self, payload: Dict[str, object]) -> bool:
        """Complete the future; False when it already was."""
        try:
            self.future.set_result(payload)
            return True
        except Exception:
            return False


def _done_future(payload: Dict[str, object]) -> Future:
    future: Future = Future()
    future.set_result(payload)
    return future


class ServingFrontend:
    """Sharded multi-process serving with admission control.

    Parameters
    ----------
    index:
        The frozen :class:`RetrievalIndex` to shard and serve.
    config:
        The :class:`FrontendConfig`; defaults apply when omitted.
    faults:
        Optional :class:`~repro.robust.FaultPlan` whose process-level
        specs (``worker_kill`` / ``worker_stall`` / ``slow_shard``)
        are handed to every worker — the drill hook behind
        ``repro robust inject serve``.
    """

    def __init__(self, index: RetrievalIndex,
                 config: Optional[FrontendConfig] = None,
                 faults: Optional[FaultPlan] = None):
        self.config = config if config is not None else FrontendConfig()
        self.index = index
        self.faults = faults
        import multiprocessing
        self._mp = multiprocessing.get_context("fork")
        self._arena = None
        self._response_queue = None
        self.supervisor: Optional[WorkerSupervisor] = None
        self._lock = threading.Lock()
        self._pending: Dict[int, PendingRequest] = {}
        self._admitted: List[PendingRequest] = []   # awaiting dispatch
        self._admit_cv = threading.Condition(self._lock)
        self._req_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._ewma_wait_ms = 0.0
        self._started = False
        self._draining = False
        self._stopping = False
        self._swapping = False
        self._swap_pausing = False
        self._threads: List[threading.Thread] = []
        self.counters: Dict[str, int] = {
            "requests": 0, "admitted": 0, "completed": 0,
            "shed_requests": 0, "shed_queue_full": 0,
            "shed_wait_budget": 0, "shed_deadline": 0,
            "draining_rejects": 0, "degraded_fallbacks": 0,
            "failovers": 0, "unknown_users": 0,
            "index_swaps": 0, "swap_stragglers": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingFrontend":
        """Shard the index, spawn workers, and wait for readiness."""
        if self._started:
            return self
        self._arena = create_shards(self.index, self.config.n_workers)
        self._response_queue = self._mp.Queue()
        self.supervisor = WorkerSupervisor(
            self._arena.layout, self.config, self._response_queue,
            faults=self.faults, mp_context=self._mp,
            on_failure=self._failover)
        self.supervisor.start()
        self._started = True
        self._threads = [
            threading.Thread(target=self._pump_loop,
                             name="repro-fe-pump", daemon=True),
            threading.Thread(target=self._dispatch_loop,
                             name="repro-fe-dispatch", daemon=True),
            threading.Thread(target=self._monitor_loop,
                             name="repro-fe-monitor", daemon=True),
        ]
        for thread in self._threads:
            thread.start()
        try:
            self.supervisor.wait_ready(lambda: time.sleep(0.005))
        except Exception:
            self.stop()
            raise
        return self

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def drain(self, timeout: Optional[float] = None) -> int:
        """Stop admitting, flush in-flight work, then shut down.

        Returns how many in-flight requests were still resolved during
        the drain.  Requests arriving after drain starts get
        ``status="draining"`` (HTTP 503).  In-flight requests that the
        workers cannot answer within ``drain_timeout_s`` are resolved
        from the degraded fallback — drained, never dropped.
        """
        with self._lock:
            if self._draining:
                in_flight = len(self._pending)
            else:
                self._draining = True
                in_flight = len(self._pending)
                self._admit_cv.notify_all()
        budget = self.config.drain_timeout_s if timeout is None \
            else timeout
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending:
                    break
            time.sleep(0.005)
        leftovers = self._sweep_pending(reason="drain timeout")
        if leftovers:
            LOG.warning("drain resolved %d request(s) from the fallback "
                        "after %.1fs", leftovers, budget)
        self.stop()
        return in_flight

    def stop(self) -> None:
        """Tear everything down; safe to call twice.

        Any still-pending request resolves from the degraded fallback
        first, so even a hard stop drops nothing that was admitted.
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            self._draining = True
            self._admit_cv.notify_all()
        self._sweep_pending(reason="shutdown")
        if self.supervisor is not None:
            self.supervisor.stop()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []
        if self._response_queue is not None:
            self._response_queue.close()
            self._response_queue.join_thread()
            self._response_queue = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._started = False

    # ------------------------------------------------------------------
    # Hot swap (online learning)
    # ------------------------------------------------------------------
    def swap_index(self, new_index: RetrievalIndex, *,
                   drain_timeout_s: Optional[float] = None
                   ) -> Dict[str, object]:
        """Replace the served index with zero dropped requests.

        The protocol, in order:

        1. **Warm.**  A complete replacement fleet — new shared-memory
           arena, new response queue, new :class:`WorkerSupervisor` —
           is built and brought to ready while the old fleet keeps
           serving.  The queues are separate by design: worker ids and
           generations restart from scratch in the new supervisor, so
           sharing the old queue would let stale messages collide in
           ``note_alive`` / ``is_current``.
        2. **Pause + drain.**  The dispatcher stops handing batches to
           workers (``submit`` stays open — arrivals queue up) and the
           in-flight requests on the old fleet drain through the old
           response pump.  Stragglers past ``drain_timeout_s`` resolve
           from the degraded fallback — allowed in the swap window,
           never dropped.
        3. **Cutover.**  Under the lock, supervisor / arena / response
           queue / index rebind atomically and the dispatcher resumes
           against the new fleet.  The pump re-reads the queue
           attribute every iteration, so it follows the swap on its
           next ``get``.
        4. **Teardown.**  The old supervisor stops, then its queue and
           arena close.  A late message from an old worker at most
           lands one no-op ``note_alive`` before the old queue dies.

        Post-swap, users/items that exist only in ``new_index`` are
        servable: admission checks ``self.index.n_users``, which now
        covers them.  Returns swap latency and straggler counts.
        """
        t0 = time.monotonic()
        with self._lock:
            if not self._started or self._stopping or self._draining:
                raise RuntimeError(
                    "swap_index requires a running front-end")
            if self._swapping:
                raise RuntimeError("an index swap is already in progress")
            self._swapping = True
        new_arena = new_queue = new_sup = None
        try:
            # Phase 1: warm the replacement fleet (old fleet serving).
            new_arena = create_shards(new_index, self.config.n_workers)
            new_queue = self._mp.Queue()
            # The replacement starts with a clean slate: no fault plan
            # (a swap is also the recovery path out of an injected
            # fault) and no failover hook until it owns live requests.
            new_sup = WorkerSupervisor(
                new_arena.layout, self.config, new_queue,
                faults=None, mp_context=self._mp, on_failure=None)
            new_sup.start()
            new_sup.wait_ready(
                lambda: self._pump_swap_queue(new_queue, new_sup))

            # Phase 2: pause dispatch, drain in-flight on the old fleet.
            with self._lock:
                self._swap_pausing = True
            budget = self.config.drain_timeout_s \
                if drain_timeout_s is None else drain_timeout_s
            deadline = time.monotonic() + budget
            while time.monotonic() < deadline:
                with self._lock:
                    if not any(p.worker_id is not None
                               for p in self._pending.values()):
                        break
                time.sleep(0.002)

            # Phase 3: sweep stragglers + cutover, atomically.
            swept = 0
            with self._lock:
                stragglers = [p for p in self._pending.values()
                              if p.worker_id is not None]
                for pending in stragglers:
                    self.counters["degraded_fallbacks"] += 1
                    self.counters["swap_stragglers"] += 1
                    self._resolve_locked(pending, self._degraded_result(
                        pending.user_id, pending.k))
                    swept += 1
                old_sup = self.supervisor
                old_queue = self._response_queue
                old_arena = self._arena
                self.supervisor = new_sup
                self._response_queue = new_queue
                self._arena = new_arena
                self.index = new_index
                new_sup.on_failure = self._failover
                self.counters["index_swaps"] += 1
                self._swap_pausing = False
                self._admit_cv.notify_all()
            new_arena = new_queue = new_sup = None  # now owned live
        except Exception:
            if new_sup is not None:
                new_sup.stop()
            if new_queue is not None:
                new_queue.close()
                new_queue.join_thread()
            if new_arena is not None:
                new_arena.close()
            raise
        finally:
            with self._lock:
                self._swapping = False
                self._swap_pausing = False
                self._admit_cv.notify_all()

        # Phase 4: tear down the old fleet (no live requests point at
        # it — phase 2/3 drained or resolved every assigned request).
        old_sup.on_failure = None
        old_sup.stop()
        old_queue.close()
        old_queue.join_thread()
        old_arena.close()
        latency_ms = (time.monotonic() - t0) * 1e3
        if self.config.telemetry:
            obs.count("frontend/index_swaps")
            obs.observe("frontend/swap_latency_ms", latency_ms)
            obs.trace_event("frontend/index_swap",
                            latency_ms=round(latency_ms, 3),
                            stragglers=swept,
                            n_users=new_index.n_users,
                            n_items=new_index.n_items)
        LOG.info("index swap complete in %.1fms (%d straggler(s) served "
                 "degraded)", latency_ms, swept)
        return {"swap_latency_ms": latency_ms, "stragglers": swept,
                "n_users": new_index.n_users,
                "n_items": new_index.n_items}

    def _pump_swap_queue(self, response_queue, supervisor) -> None:
        """Drain a warming fleet's own queue (heartbeats) during a swap.

        The main pump thread still owns the *old* queue at this point;
        readiness heartbeats of the replacement fleet flow through here
        until the cutover hands its queue to the main pump.
        """
        import queue as queue_mod
        try:
            while True:
                message = response_queue.get_nowait()
                tag = message[0]
                if tag == HEARTBEAT:
                    _, worker_id, generation, _, handled, stats, \
                        breaker = message
                    supervisor.note_alive(worker_id, generation,
                                          handled, stats, breaker)
                elif tag == RESULT:
                    (_, worker_id, generation, _, _, _, stats,
                     breaker) = message
                    supervisor.note_alive(worker_id, generation,
                                          stats.get("requests", 0),
                                          stats, breaker)
        except queue_mod.Empty:
            pass
        time.sleep(0.005)

    # ------------------------------------------------------------------
    # Admission (any thread)
    # ------------------------------------------------------------------
    def submit(self, user_id: int, k: int,
               deadline_ms: Optional[float] = "default") -> Future:
        """Admit (or shed) one request; the future resolves to a dict.

        Resolutions::

            {"status": "ok", "result": {...engine response...}}
            {"status": "shed", "reason": "queue_full" | "wait_budget"
                                         | "deadline"}
            {"status": "draining"}

        ``deadline_ms`` is the remaining budget at the edge; the
        sentinel ``"default"`` applies the config's
        ``default_deadline_ms`` and ``None`` disables the deadline.
        Shedding decisions happen here, synchronously, in O(1) — an
        overloaded front-end answers 429 in microseconds, which is the
        whole point of admission control.
        """
        now = time.monotonic()
        uid, k = int(user_id), int(k)
        telemetry = self.config.telemetry and obs.enabled()
        if deadline_ms == "default":
            deadline_ms = self.config.default_deadline_ms
        deadline = None if deadline_ms is None \
            else now + float(deadline_ms) / 1e3
        with self._lock:
            self.counters["requests"] += 1
            if self._draining or self._stopping or not self._started:
                self.counters["draining_rejects"] += 1
                return _done_future({"status": "draining"})
            reason = None
            if deadline is not None and now >= deadline:
                reason = "deadline"       # dead on arrival: reject now
            elif len(self._pending) >= self.config.max_queue_depth:
                reason = "queue_full"
            elif (self.config.wait_budget_ms is not None
                    and self._ewma_wait_ms > self.config.wait_budget_ms):
                reason = "wait_budget"
            if reason is not None:
                self.counters["shed_requests"] += 1
                self.counters[f"shed_{reason}"] += 1
                if telemetry:
                    obs.count("frontend/shed_requests")
                    obs.trace_event("frontend/shed", user=uid,
                                    reason=reason)
                return _done_future({"status": "shed", "reason": reason})
            ctx = obs.new_trace("serve/request", user=uid) \
                if telemetry else None
            pending = PendingRequest(next(self._req_ids), uid, k,
                                     deadline, now, ctx)
            self.counters["admitted"] += 1
            # Unknown users never cross into a worker: no shard owns
            # them, and the engine would only hand back popularity
            # anyway.  Answer at the edge, same schema as the engine.
            if not 0 <= uid < self.index.n_users:
                self.counters["unknown_users"] += 1
                self._resolve_locked(pending, {
                    "user_id": uid,
                    "items": [int(i)
                              for i in self.index.popularity[:k]],
                    "cached": False, "fallback": True,
                    "degraded": False, "source": "popularity"})
                return pending.future
            self._pending[pending.req_id] = pending
            self._admitted.append(pending)
            self._admit_cv.notify()
        return pending.future

    def query(self, user_id: int, k: int,
              deadline_ms: Optional[float] = "default",
              timeout: Optional[float] = 30.0) -> Dict[str, object]:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(user_id, k, deadline_ms).result(timeout)

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def _degraded_result(self, uid: int, k: int) -> Dict[str, object]:
        """Parent-side popularity fallback (worker down / failover).

        Same ranking the worker's engine would serve in its own
        degraded path, computed from the parent's copy of the index.
        """
        items = popularity_items(self.index, uid, k,
                                 self.config.service.exclude_seen)
        return {"user_id": uid, "items": [int(i) for i in items],
                "cached": False, "fallback": True, "degraded": True,
                "source": "popularity"}

    def _resolve_locked(self, pending: PendingRequest,
                        result: Dict[str, object],
                        queue_wait_s: Optional[float] = None) -> None:
        """Complete one request and emit its telemetry (lock held)."""
        if not pending.resolve({"status": "ok", "result": result}):
            return
        self._pending.pop(pending.req_id, None)
        self.counters["completed"] += 1
        now = time.monotonic()
        wait = (now - pending.t_admit) if queue_wait_s is None \
            else queue_wait_s
        wait = max(0.0, wait)
        self._ewma_wait_ms += _EWMA_ALPHA * (
            wait * 1e3 - self._ewma_wait_ms)
        if pending.ctx is None or not obs.enabled():
            return
        dur = now - pending.t_admit
        with obs.bind_trace(pending.ctx):
            obs.count("serve/requests")
            obs.observe_hdr("serve/queue_wait_ms", wait * 1e3)
            obs.observe_hdr("serve/latency_ms", dur * 1e3)
            if result.get("fallback"):
                obs.count("serve/fallbacks")
                obs.trace_event("serve/fallback", user=pending.user_id,
                                degraded=bool(result.get("degraded")),
                                source=result.get("source"))
            if result.get("degraded"):
                obs.count("serve/degraded")
            obs.record_span("serve/request", dur, user=pending.user_id,
                            source=result.get("source"),
                            trace=pending.ctx.trace_id)

    def _shed_locked(self, pending: PendingRequest, reason: str) -> None:
        """Shed an already-admitted request (deadline died in queue)."""
        if not pending.resolve({"status": "shed", "reason": reason}):
            return
        self._pending.pop(pending.req_id, None)
        self.counters["shed_requests"] += 1
        self.counters["shed_deadline"] += 1
        if pending.ctx is not None and obs.enabled():
            with obs.bind_trace(pending.ctx):
                obs.count("frontend/shed_requests")
                obs.trace_event("frontend/shed", user=pending.user_id,
                                reason=reason)

    def _sweep_pending(self, reason: str) -> int:
        """Resolve every pending request from the fallback (shutdown)."""
        with self._lock:
            leftovers = list(self._pending.values())
            self._admitted.clear()
            count = 0
            for pending in leftovers:
                self.counters["degraded_fallbacks"] += 1
                self._resolve_locked(pending, self._degraded_result(
                    pending.user_id, pending.k))
                count += 1
        if count:
            obs.trace_event("frontend/sweep", n=count, reason=reason)
        return count

    def _failover(self, worker_id: int, generation: int,
                  why: str) -> None:
        """Fail a dead worker generation's in-flight work to fallback."""
        with self._lock:
            victims = [p for p in self._pending.values()
                       if p.worker_id == worker_id
                       and p.generation == generation]
            for pending in victims:
                self.counters["failovers"] += 1
                self.counters["degraded_fallbacks"] += 1
                self._resolve_locked(pending, self._degraded_result(
                    pending.user_id, pending.k))
        if victims:
            LOG.warning("worker %d (gen %d) %s: failed %d in-flight "
                        "request(s) over to the popularity fallback",
                        worker_id, generation, why, len(victims))
            obs.count("frontend/failovers", len(victims))

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        window = self.config.batch_window_ms / 1e3
        while True:
            with self._admit_cv:
                # A swap in its pause window holds dispatch entirely:
                # arrivals keep queueing in _admitted and flow to the
                # new fleet the moment the cutover notifies.
                while ((not self._admitted or self._swap_pausing)
                        and not self._stopping):
                    self._admit_cv.wait(timeout=0.1)
                if self._stopping:
                    return
            if window > 0:
                time.sleep(window)   # let concurrent arrivals coalesce
            with self._lock:
                batch, self._admitted = self._admitted, []
                now = time.monotonic()
                by_shard: Dict[int, List[PendingRequest]] = {}
                for pending in batch:
                    if pending.req_id not in self._pending:
                        continue     # resolved while waiting (sweep)
                    if (pending.deadline is not None
                            and now >= pending.deadline):
                        self._shed_locked(pending, "deadline")
                        continue
                    shard_id = self._arena.layout.shard_for_user(
                        pending.user_id)
                    by_shard.setdefault(shard_id, []).append(pending)
                plans = []   # (handle|None, shard chunk) built under lock
                for shard_id, group in by_shard.items():
                    handle = self.supervisor.route(shard_id)
                    for start in range(0, len(group),
                                       self.config.max_batch):
                        chunk = group[start:start + self.config.max_batch]
                        if handle is None:
                            # Shard down (worker restarting): serve the
                            # whole chunk degraded from the parent.
                            for pending in chunk:
                                self.counters["degraded_fallbacks"] += 1
                                self._resolve_locked(
                                    pending, self._degraded_result(
                                        pending.user_id, pending.k))
                            continue
                        for pending in chunk:
                            pending.worker_id = handle.worker_id
                            pending.generation = handle.generation
                        plans.append((handle, chunk))
            for handle, chunk in plans:
                message = (next(self._batch_ids),
                           [(p.req_id, p.user_id, p.k, p.deadline,
                             p.t_admit) for p in chunk])
                try:
                    handle.request_queue.put(message)
                except Exception:
                    # Queue died under us (restart race): fail over now.
                    self._failover(handle.worker_id, handle.generation,
                                   "request queue closed")

    # ------------------------------------------------------------------
    # Response pump thread
    # ------------------------------------------------------------------
    def _pump_loop(self) -> None:
        import queue as queue_mod
        while True:
            try:
                message = self._response_queue.get(timeout=0.05)
            except (queue_mod.Empty, OSError, ValueError):
                if self._stopping:
                    return
                continue
            tag = message[0]
            if tag == HEARTBEAT:
                _, worker_id, generation, _, handled, stats, breaker = \
                    message
                self.supervisor.note_alive(worker_id, generation,
                                           handled, stats, breaker)
            elif tag == RESULT:
                (_, worker_id, generation, _, t_start, entries, stats,
                 breaker) = message
                self.supervisor.note_alive(worker_id, generation,
                                           stats.get("requests", 0),
                                           stats, breaker)
                current = self.supervisor.is_current(worker_id,
                                                     generation)
                with self._lock:
                    for req_id, payload in entries:
                        pending = self._pending.get(req_id)
                        if pending is None:
                            continue  # already failed over / swept
                        if not current:
                            # Late result from a replaced worker; the
                            # failover already answered or will.
                            continue
                        if isinstance(payload, str):
                            self._shed_locked(pending, payload)
                        else:
                            self._resolve_locked(
                                pending, payload,
                                queue_wait_s=t_start - pending.t_admit)
            elif tag == BYE:
                pass  # exit codes are read by the supervisor's check

    # ------------------------------------------------------------------
    # Monitor thread
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(self.config.health_check_interval_s)
            if self._stopping:
                return
            try:
                self.supervisor.check()
            except Exception as exc:  # pragma: no cover - never expected
                LOG.error("supervisor health check failed: %s", exc)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Everything ``/status`` reports: admission, fleet, breakers."""
        with self._lock:
            counters = dict(self.counters)
            depth = len(self._pending)
            ewma = self._ewma_wait_ms
            draining = self._draining
        return {
            "config": {
                "n_workers": self.config.n_workers,
                "max_queue_depth": self.config.max_queue_depth,
                "wait_budget_ms": self.config.wait_budget_ms,
                "default_deadline_ms": self.config.default_deadline_ms,
                "max_batch": self.config.max_batch,
            },
            "draining": draining,
            "queue_depth": depth,
            "ewma_queue_wait_ms": round(ewma, 3),
            "counters": counters,
            "fleet": self.supervisor.fleet_health()
            if self.supervisor is not None else {},
        }
