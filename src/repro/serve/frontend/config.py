"""Deployment configuration for the multi-worker serving front-end.

:class:`FrontendConfig` is to :class:`~repro.serve.frontend.core.
ServingFrontend` what :class:`~repro.serve.ServiceConfig` is to the
in-process engine: one frozen dataclass holding every knob the
front-end is allowed to decide per deployment — worker count, admission
bounds, deadline defaults, micro-batch shape, and supervisor timing.
The nested :class:`ServiceConfig` is handed verbatim to every worker's
engine, so per-worker behaviour (retries, breaker, cache, fallback)
stays declared in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.serve.config import ServiceConfig


@dataclass(frozen=True)
class FrontendConfig:
    """Everything the multi-worker front-end decides per deployment.

    Parameters
    ----------
    n_workers:
        Worker processes; the user space is range-sharded into exactly
        this many shards, one worker per shard.
    service:
        Per-worker :class:`~repro.serve.ServiceConfig` (list length,
        LRU cache, retry/breaker policies, fallback mode).
    max_queue_depth:
        Admission bound: with this many admitted-but-unresolved
        requests in the system, new arrivals are shed (HTTP 429,
        ``shed_requests`` counter) instead of queueing unboundedly.
    wait_budget_ms:
        Second shedding trigger: when the EWMA of recently observed
        queue waits exceeds this budget, arrivals are shed until the
        backlog drains.  ``None`` disables it (depth bound only).
    default_deadline_ms:
        Deadline attached to requests that do not carry their own;
        ``None`` means no deadline.  The deadline propagates from
        admission through queue wait into worker scoring.
    batch_window_ms:
        How long the dispatcher waits for concurrent arrivals to
        coalesce into one per-shard micro-batch.
    max_batch:
        Micro-batch ceiling per dispatch per shard.
    heartbeat_interval_s:
        Worker heartbeat period while idle (busy workers heartbeat via
        their result messages).
    stall_after_s:
        A worker whose last heartbeat is older than this is declared
        stalled, killed, and restarted.  Must comfortably exceed
        ``heartbeat_interval_s`` plus the longest legitimate batch.
    health_check_interval_s:
        Supervisor poll period for crash/stall detection.
    start_timeout_s:
        How long to wait for every worker's first heartbeat at startup
        (and for a replacement worker to warm up) before giving up.
    drain_timeout_s:
        Graceful-drain budget: how long :meth:`ServingFrontend.drain`
        waits for in-flight requests before force-stopping.
    telemetry:
        Record front-end counters/histograms/trace events through
        :mod:`repro.obs` when a run is active.  Fault drills that would
        pollute a run's SLO numbers (deliberate kill benchmarks) turn
        this off.
    """

    n_workers: int = 2
    service: ServiceConfig = field(default_factory=ServiceConfig)
    max_queue_depth: int = 256
    wait_budget_ms: Optional[float] = None
    default_deadline_ms: Optional[float] = 250.0
    batch_window_ms: float = 2.0
    max_batch: int = 64
    heartbeat_interval_s: float = 0.1
    stall_after_s: float = 2.0
    health_check_interval_s: float = 0.1
    start_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0
    telemetry: bool = True

    def __post_init__(self):
        if self.n_workers <= 0:
            raise ValueError(
                f"n_workers must be positive, got {self.n_workers}")
        if self.max_queue_depth <= 0:
            raise ValueError(f"max_queue_depth must be positive, "
                             f"got {self.max_queue_depth}")
        if self.wait_budget_ms is not None and self.wait_budget_ms <= 0:
            raise ValueError(f"wait_budget_ms must be positive or None, "
                             f"got {self.wait_budget_ms}")
        if (self.default_deadline_ms is not None
                and self.default_deadline_ms <= 0):
            raise ValueError(
                f"default_deadline_ms must be positive or None, "
                f"got {self.default_deadline_ms}")
        if self.batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, "
                             f"got {self.batch_window_ms}")
        if self.max_batch <= 0:
            raise ValueError(
                f"max_batch must be positive, got {self.max_batch}")
        for name in ("heartbeat_interval_s", "stall_after_s",
                     "health_check_interval_s", "start_timeout_s",
                     "drain_timeout_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, "
                                 f"got {getattr(self, name)}")
        if self.stall_after_s <= self.heartbeat_interval_s:
            raise ValueError(
                f"stall_after_s ({self.stall_after_s}) must exceed "
                f"heartbeat_interval_s ({self.heartbeat_interval_s}); "
                f"healthy idle workers would look stalled")

    def with_overrides(self, **overrides) -> "FrontendConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)
