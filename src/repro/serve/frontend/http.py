"""Stdlib-asyncio HTTP edge for the multi-worker serving front-end.

``repro serve http`` runs this server: a deliberately small HTTP/1.1
implementation over :func:`asyncio.start_server` — no framework, no
dependency — that turns concurrent GET requests into
:meth:`~repro.serve.frontend.core.ServingFrontend.submit` calls.  The
front-end's dispatcher micro-batches whatever arrives concurrently, so
HTTP concurrency and batched scoring compose without the edge knowing.

Routes
------
``GET /recommend?user=U&k=K[&deadline_ms=D]``
    Top-K for one user.  200 with the engine's response schema;
    **429** when admission sheds the request (body says why: queue
    depth, wait budget, or a dead-on-arrival deadline); **503** while
    draining.
``GET /status``
    Full front-end status: admission counters, queue depth, EWMA queue
    wait, and the supervisor's per-shard fleet/breaker view.
``GET /health``
    Liveness: 200 when every worker is ready, 503 while any shard is
    degraded (a load balancer's readiness probe).

Graceful drain: SIGTERM (and SIGINT) stops the listener, lets in-flight
HTTP exchanges finish, drains the front-end's admitted requests, tears
down workers and shared memory, and exits 0.  Zero admitted requests
are dropped — the drill ``kill -TERM`` in CI asserts exactly that.
"""

from __future__ import annotations

import asyncio
import json
import signal
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Optional, Tuple

from repro import obs
from repro.serve.frontend.core import ServingFrontend

LOG = obs.get_logger(__name__)

_REASON_PHRASE = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable"}

# HTTP status per submit() resolution status.
_SHED_STATUS = 429
_DRAINING_STATUS = 503


def _response_bytes(status: int, payload: Dict[str, object]) -> bytes:
    body = json.dumps(payload).encode()
    head = (f"HTTP/1.1 {status} {_REASON_PHRASE.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode()
    return head + body


class HttpFrontendServer:
    """One listening socket in front of one :class:`ServingFrontend`."""

    def __init__(self, frontend: ServingFrontend,
                 host: str = "127.0.0.1", port: int = 0):
        self.frontend = frontend
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._drain_requested = asyncio.Event()

    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind and listen; returns the bound port (for ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def request_drain(self) -> None:
        """Signal-safe drain trigger (installed on SIGTERM/SIGINT)."""
        self._drain_requested.set()

    async def serve_until_drained(self) -> None:
        """Serve until a drain is requested, then drain gracefully."""
        await self._drain_requested.wait()
        LOG.info("drain requested: closing listener on port %d",
                 self.port)
        self._server.close()
        await self._server.wait_closed()
        # Let in-flight HTTP exchanges write their responses.
        try:
            await asyncio.wait_for(
                self._idle.wait(),
                timeout=self.frontend.config.drain_timeout_s)
        except asyncio.TimeoutError:  # pragma: no cover - slow client
            LOG.warning("drain: active connections outlived the "
                        "timeout; continuing shutdown")
        # Flush whatever the front-end still has admitted, then stop
        # workers + shared memory.  Blocking call → executor.
        await asyncio.get_running_loop().run_in_executor(
            None, self.frontend.drain)

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._active += 1
        self._idle.clear()
        try:
            status, payload = await self._dispatch(reader)
            writer.write(_response_bytes(status, payload))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    async def _dispatch(self, reader: asyncio.StreamReader
                        ) -> Tuple[int, Dict[str, object]]:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                asyncio.LimitOverrunError):
            return 400, {"error": "malformed request"}
        request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        if len(parts) != 3 or parts[0] != "GET":
            return 400, {"error": f"unsupported request "
                                  f"{request_line!r}"}
        url = urllib.parse.urlsplit(parts[1])
        query = dict(urllib.parse.parse_qsl(url.query))
        if url.path == "/recommend":
            return await self._recommend(query)
        if url.path == "/status":
            return 200, self.frontend.status()
        if url.path == "/health":
            fleet = self.frontend.status()["fleet"]
            healthy = fleet.get("ready") == fleet.get("n_workers")
            return (200 if healthy else 503), {
                "ready": fleet.get("ready"),
                "n_workers": fleet.get("n_workers"),
                "any_breaker_open": fleet.get("any_breaker_open")}
        return 404, {"error": f"no route {url.path}"}

    async def _recommend(self, query: Dict[str, str]
                         ) -> Tuple[int, Dict[str, object]]:
        try:
            user = int(query["user"])
            k = int(query.get("k", self.frontend.config.service.k))
            deadline_ms = float(query["deadline_ms"]) \
                if "deadline_ms" in query else "default"
        except (KeyError, ValueError) as exc:
            return 400, {"error": f"bad query parameter: {exc}"}
        future = self.frontend.submit(user, k, deadline_ms)
        try:
            resolution = await asyncio.wrap_future(future)
        except Exception as exc:  # pragma: no cover - engine never raises
            LOG.error("request for user %d failed: %s", user, exc)
            return 500, {"error": type(exc).__name__}
        status = resolution["status"]
        if status == "ok":
            return 200, resolution["result"]
        if status == "shed":
            return _SHED_STATUS, {"error": "shed",
                                  "reason": resolution["reason"]}
        return _DRAINING_STATUS, {"error": "draining"}


def run_http_server(frontend: ServingFrontend, host: str = "127.0.0.1",
                    port: int = 0,
                    port_file: Optional[str] = None,
                    ready_message=None) -> int:
    """Start ``frontend``, serve HTTP until SIGTERM/SIGINT, drain, exit.

    ``port_file`` (CI's ephemeral-port handshake) receives the bound
    port once the socket is listening *and* the workers are ready.
    ``ready_message`` is an optional callable invoked with the bound
    port at that same moment (the CLI prints the serving line with it).
    Returns the process exit code: 0 after a graceful drain.
    """

    async def _main() -> int:
        server = HttpFrontendServer(frontend, host, port)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_drain)
        if port_file:
            with open(port_file, "w") as fh:
                fh.write(str(server.port))
        if ready_message is not None:
            ready_message(server.port)
        LOG.info("serving %d worker(s) on http://%s:%d",
                 frontend.config.n_workers, host, server.port)
        await server.serve_until_drained()
        return 0

    frontend.start()
    try:
        return asyncio.run(_main())
    finally:
        frontend.stop()   # idempotent; covers startup failures too


def fetch_status(port: int, host: str = "127.0.0.1",
                 timeout: float = 5.0) -> Dict[str, object]:
    """GET ``/status`` from a running front-end (CLI ``--status``)."""
    url = f"http://{host}:{port}/status"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode())
    except (urllib.error.URLError, OSError) as exc:
        raise ConnectionError(
            f"no serving front-end answering on {url}: {exc}") from exc
