"""Open-loop load generation and the front-end overload benchmark.

Closed-loop benchmarks (issue the next request when the last returns)
cannot see overload: the generator slows down with the server and the
queue never grows.  :func:`run_open_loop` therefore schedules arrivals
on a fixed clock — request *i* is offered at ``start + i / qps``
whether or not earlier requests completed — which is how real traffic
behaves and the only way to measure shed rate and admitted-latency
percentiles under pressure.

:func:`run_frontend_benchmark` is the overload drill recorded into
``BENCH_serve.json``:

1. estimate single-box capacity with a pipelined closed loop;
2. size admission bounds off capacity (≈50 ms of queue), then sweep
   offered load at 0.5x and 2x capacity — under overload the shed rate
   must be positive while the **admitted** p99 stays within the
   latency SLO (shedding is the mechanism that protects it);
3. optionally re-run under a ``worker_kill``
   :class:`~repro.robust.FaultPlan` (telemetry off, so the deliberate
   fault does not pollute the run's SLO metrics) and report that zero
   requests hard-failed while the supervisor restarted the worker.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait as wait_futures
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.hdr import HdrHistogram
from repro.robust.faults import FaultPlan, FaultSpec
from repro.serve.config import ServiceConfig
from repro.serve.frontend.config import FrontendConfig
from repro.serve.frontend.core import ServingFrontend
from repro.serve.index import RetrievalIndex

_HDR_REL_ERROR = 0.005

# Admission sizing for the benchmark: bound the queue at roughly this
# many seconds of work at estimated capacity, so typical queue wait
# stays well inside the latency objective.
_QUEUE_SECONDS = 0.05

# Per-request deadline for the benchmark levels.  The admitted-latency
# tail is bounded by deadline + one micro-batch of scoring (a request
# can start scoring just before its deadline expires), so the deadline
# sits below the 250 ms p99 objective with enough headroom for a full
# batch on a contended box.
_BENCH_DEADLINE_MS = 150.0


def estimate_capacity(frontend: ServingFrontend,
                      user_ids: Sequence[int], k: int,
                      duration_s: float = 1.0,
                      pipeline: int = 16) -> float:
    """Sustained QPS from a pipelined closed loop (no deadlines).

    ``pipeline`` requests are kept in flight so micro-batching and both
    workers are exercised; the result is the denominator every
    open-loop level is sized against.
    """
    users = list(user_ids)
    completed = 0
    i = 0
    start = time.monotonic()
    deadline = start + duration_s
    while time.monotonic() < deadline:
        futures = [frontend.submit(int(users[(i + j) % len(users)]), k,
                                   deadline_ms=None)
                   for j in range(pipeline)]
        i += pipeline
        for future in futures:
            if future.result(timeout=30.0)["status"] == "ok":
                completed += 1
    wall = time.monotonic() - start
    return completed / wall if wall > 0 else 0.0


def run_open_loop(frontend: ServingFrontend, user_ids: Sequence[int],
                  k: int, offered_qps: float, duration_s: float,
                  deadline_ms="default") -> Dict[str, object]:
    """Offer ``offered_qps`` for ``duration_s``; classify every outcome.

    Latency percentiles cover **admitted, completed** requests only
    (submit → future resolution, i.e. what a client that was not shed
    experienced).  Shed/draining responses are counted, not timed —
    they resolve in microseconds by design and would only flatter the
    percentiles.
    """
    users = list(user_ids)
    n_offered = max(1, int(offered_qps * duration_s))
    interval = 1.0 / offered_qps
    hist = HdrHistogram("loadgen/latency_ms", rel_error=_HDR_REL_ERROR,
                        min_value=1e-4, max_value=1e7)
    lock = threading.Lock()
    outcomes = {"ok": 0, "degraded": 0, "shed": 0, "draining": 0,
                "hard_failures": 0}
    latency_sum = [0.0]

    def _classify(future, t_submit: float) -> None:
        elapsed = time.monotonic() - t_submit
        try:
            resolution = future.result()
            status = resolution.get("status")
        except Exception:
            status = None
        with lock:
            if status == "ok":
                outcomes["ok"] += 1
                if resolution["result"].get("degraded"):
                    outcomes["degraded"] += 1
                hist.observe(elapsed * 1e3)
                latency_sum[0] += elapsed * 1e3
            elif status in ("shed", "draining"):
                outcomes[status] += 1
            else:
                outcomes["hard_failures"] += 1

    futures: List = []
    start = time.monotonic()
    for i in range(n_offered):
        target = start + i * interval
        now = time.monotonic()
        if target > now:
            time.sleep(target - now)
        # Behind schedule: do NOT skip or delay — open loop means the
        # backlog lands on the server, not on the generator.
        t_submit = time.monotonic()
        future = frontend.submit(int(users[i % len(users)]), k,
                                 deadline_ms)
        future.add_done_callback(
            lambda f, t=t_submit: _classify(f, t))
        futures.append(future)
    wait_futures(futures, timeout=30.0)
    wall = time.monotonic() - start
    with lock:
        done = dict(outcomes)
        total_ms = latency_sum[0]
    admitted = done["ok"]
    return {
        "offered_qps": float(offered_qps),
        "duration_s": float(duration_s),
        "n_offered": n_offered,
        "completed": admitted,
        "degraded": done["degraded"],
        "shed": done["shed"],
        "draining": done["draining"],
        "hard_failures": done["hard_failures"],
        "shed_rate": done["shed"] / n_offered,
        "achieved_qps": admitted / wall if wall > 0 else 0.0,
        "p50_ms": float(hist.percentile(50)) if admitted else None,
        "p95_ms": float(hist.percentile(95)) if admitted else None,
        "p99_ms": float(hist.percentile(99)) if admitted else None,
        "mean_ms": total_ms / admitted if admitted else None,
    }


def _bench_config(n_workers: int, capacity_qps: float, k: int,
                  telemetry: bool) -> FrontendConfig:
    depth = max(4, int(capacity_qps * _QUEUE_SECONDS))
    return FrontendConfig(
        n_workers=n_workers,
        service=ServiceConfig(k=k, cache_size=0),
        max_queue_depth=depth,
        default_deadline_ms=_BENCH_DEADLINE_MS,
        batch_window_ms=1.0,
        telemetry=telemetry)


def run_frontend_benchmark(index: RetrievalIndex, n_workers: int = 2,
                           k: int = 10, seed: int = 0,
                           n_probe_users: int = 256,
                           capacity_duration_s: float = 1.0,
                           level_duration_s: float = 1.5,
                           drill_duration_s: float = 2.0,
                           kill_drill: bool = True,
                           faults: Optional[FaultPlan] = None
                           ) -> Dict[str, object]:
    """The overload + kill drill; returns the BENCH ``frontend`` dict.

    ``faults`` overrides the default kill-drill plan (the CLI's
    ``robust inject serve --frontend`` path reuses this with stall and
    slow-shard plans).
    """
    rng = np.random.default_rng(seed)
    users = rng.integers(0, index.n_users,
                         size=min(n_probe_users, index.n_users))

    # Phase 1+2: capacity, then open-loop levels, one telemetered
    # front-end for all of it (capacity sizing uses a generous queue).
    sizing = _bench_config(n_workers, 1e4, k, telemetry=True)
    with ServingFrontend(index, sizing) as frontend:
        capacity = estimate_capacity(frontend, users, k,
                                     capacity_duration_s)
    config = _bench_config(n_workers, capacity, k, telemetry=True)
    levels: List[Dict[str, object]] = []
    with ServingFrontend(index, config) as frontend:
        for factor in (0.5, 2.0):
            level = run_open_loop(
                frontend, users, k,
                offered_qps=max(1.0, capacity * factor),
                duration_s=level_duration_s)
            level["load_factor"] = factor
            levels.append(level)
        admission = dict(frontend.counters)
        status = frontend.status()

    results: Dict[str, object] = {
        "n_workers": n_workers,
        "k": k,
        "capacity_qps": float(capacity),
        "max_queue_depth": config.max_queue_depth,
        "default_deadline_ms": config.default_deadline_ms,
        "levels": levels,
        "admission_counters": admission,
        "ewma_queue_wait_ms": status["ewma_queue_wait_ms"],
    }

    # SLO view over the open-loop levels: worst admitted p99 against
    # the latency objective, degraded fraction of completed requests
    # against availability.  Sheds are excluded by construction — the
    # SLO covers what was admitted; the shed rate is reported (and
    # asserted positive under overload) separately.
    from repro.obs.slo import _report, evaluate_slos, load_slo_config
    p99s = [lvl["p99_ms"] for lvl in levels if lvl["p99_ms"] is not None]
    completed = sum(lvl["completed"] for lvl in levels)
    degraded = sum(lvl["degraded"] for lvl in levels)
    results["slo"] = _report(evaluate_slos(
        load_slo_config(),
        latency_p99_ms={"serve/latency_ms": max(p99s)} if p99s else {},
        requests=completed, degraded=degraded))

    if kill_drill:
        plan = faults
        if plan is None:
            # Kill worker 0 early in the drill window: roughly 5% of
            # the drill's offered traffic, at least a handful.
            after = max(5, int(0.05 * capacity * drill_duration_s / 2))
            plan = FaultPlan([FaultSpec("worker_kill",
                                        after_requests=after)],
                             seed=seed)
        drill_config = _bench_config(n_workers, capacity, k,
                                     telemetry=False)
        with ServingFrontend(index, drill_config,
                             faults=plan) as frontend:
            drill = run_open_loop(
                frontend, users, k,
                offered_qps=max(1.0, capacity * 0.7),
                duration_s=drill_duration_s)
            drill["worker_restarts"] = frontend.supervisor.total_restarts
            drill["fault_kinds"] = sorted(
                {spec.kind for spec in plan.specs})
            fleet = frontend.supervisor.fleet_health()
            drill["fleet_ready"] = fleet["ready"]
        results["kill_drill"] = drill
    return results


def format_frontend_results(results: Dict[str, object]) -> str:
    lines = [f"frontend bench: {results['n_workers']} worker(s), "
             f"capacity~{results['capacity_qps']:.0f} qps, "
             f"queue depth {results['max_queue_depth']}, "
             f"deadline {results['default_deadline_ms']:.0f}ms"]
    for level in results["levels"]:
        p99 = level["p99_ms"]
        p99_s = f"p99={p99:.1f}ms" if p99 is not None else "p99=-"
        lines.append(
            f"  {level['load_factor']:>4}x: offered "
            f"{level['offered_qps']:.0f} qps -> {level['completed']} ok "
            f"({level['degraded']} degraded), {level['shed']} shed "
            f"(rate {level['shed_rate']:.1%}), {p99_s}")
    drill = results.get("kill_drill")
    if drill is not None:
        lines.append(
            f"  kill drill: {drill['completed']} ok "
            f"({drill['degraded']} degraded), {drill['shed']} shed, "
            f"{drill['hard_failures']} hard failure(s), "
            f"{drill['worker_restarts']} restart(s), "
            f"{drill['fleet_ready']}/{results['n_workers']} ready")
    slo = results.get("slo")
    if slo is not None:
        from repro.obs.slo import format_report
        lines.append(format_report(slo, title="frontend slo"))
    return "\n".join(lines)
