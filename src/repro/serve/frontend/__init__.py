"""``repro.serve.frontend`` — multi-worker serving that survives overload.

The scale-out half of :mod:`repro.serve`: the frozen
:class:`~repro.serve.RetrievalIndex` is range-sharded into shared
memory (:mod:`~repro.serve.frontend.sharding`), served by supervised
worker processes (:mod:`~repro.serve.frontend.worker`,
:mod:`~repro.serve.frontend.supervisor`), and fronted by an admission-
controlled dispatcher (:mod:`~repro.serve.frontend.core`) with an
asyncio HTTP edge (:mod:`~repro.serve.frontend.http`) — the surface
behind ``repro serve http``.  :mod:`~repro.serve.frontend.loadgen`
holds the open-loop overload benchmark.

The contract, in one sentence: under overload the front-end sheds (429)
instead of queueing unboundedly, under worker failure it degrades
(popularity fallback) instead of erroring, and under SIGTERM it drains
instead of dropping — an admitted request always gets an answer.
"""

from repro.serve.frontend.config import FrontendConfig
from repro.serve.frontend.core import PendingRequest, ServingFrontend
from repro.serve.frontend.http import (HttpFrontendServer, fetch_status,
                                       run_http_server)
from repro.serve.frontend.loadgen import (estimate_capacity,
                                          format_frontend_results,
                                          run_frontend_benchmark,
                                          run_open_loop)
from repro.serve.frontend.sharding import (ShardLayout, SharedIndexArena,
                                           attach_shard, create_shards,
                                           shard_boundaries)
from repro.serve.frontend.supervisor import WorkerHandle, WorkerSupervisor

__all__ = [
    "FrontendConfig",
    "HttpFrontendServer",
    "PendingRequest",
    "ServingFrontend",
    "ShardLayout",
    "SharedIndexArena",
    "WorkerHandle",
    "WorkerSupervisor",
    "attach_shard",
    "create_shards",
    "estimate_capacity",
    "fetch_status",
    "format_frontend_results",
    "run_frontend_benchmark",
    "run_http_server",
    "run_open_loop",
    "shard_boundaries",
]
