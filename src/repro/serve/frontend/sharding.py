"""User-range sharding of a :class:`RetrievalIndex` over shared memory.

The front-end splits the frozen index by **user range** into
``n_shards`` contiguous slices.  User-side tables (the ``user`` /
``user_h`` / ``user_e`` embedding rows, the ``dense`` score rows, and
the per-user CSR seen-mask) are sliced per shard; item-side tables
(item embeddings, biases, the popularity ranking) are identical for
every shard and stored **once**.  Each distinct array lands in its own
:class:`multiprocessing.shared_memory.SharedMemory` segment, so worker
processes map the tables zero-copy — attaching a shard is a handful of
``shm_open`` calls plus ``np.ndarray(buffer=...)`` views, never a
deserialization of the index.

Ownership is explicit: :func:`create_shards` returns a
:class:`SharedIndexArena` that owns the segments (close+unlink on
:meth:`SharedIndexArena.close`) plus a picklable :class:`ShardLayout`
describing them; :func:`attach_shard` re-materializes one shard as a
plain :class:`~repro.serve.index.RetrievalIndex` over **shard-local**
user ids (row 0 is global user ``lo``) — the worker translates ids at
its boundary, and everything downstream (engine, cache, masks) runs
unchanged, bit-identical to the unsharded index.

Cross-process timestamps elsewhere in the front-end rely on
``time.monotonic()`` being comparable between processes; on Linux both
``monotonic`` and ``perf_counter`` read the system-wide
``CLOCK_MONOTONIC``, which is the platform this module targets
(``multiprocessing.shared_memory`` + fork).
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

from repro.serve.index import RetrievalIndex

__all__ = ["SharedIndexArena", "ShardLayout", "ShardSegment",
           "ShardSpec", "attach_shard", "create_shards",
           "shard_boundaries"]

# Slots whose leading axis is the user axis; everything else is
# item-side (or scalar) and shared across shards.
_USER_SLOTS = frozenset({"user", "user_h", "user_e", "scores"})


@dataclass(frozen=True)
class ShardSegment:
    """One shared-memory-backed array: segment name + array geometry."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize
                   * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class ShardSpec:
    """One user-range shard: ``[lo, hi)`` plus its array segments.

    ``arrays`` maps slot name → segment for the scoring tables
    (user-side slots sliced to the range, item-side slots pointing at
    the shared segments); ``indptr`` / ``indices`` are the shard-local
    seen-mask CSR (``indptr[0] == 0``); ``popularity`` is the shared
    global ranking.
    """

    shard_id: int
    lo: int
    hi: int
    arrays: Dict[str, ShardSegment]
    indptr: ShardSegment
    indices: ShardSegment
    popularity: ShardSegment

    @property
    def n_users(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class ShardLayout:
    """Picklable description of a sharded index (what workers receive)."""

    kind: str
    scalars: Dict[str, float]
    meta: Dict[str, object]
    n_users: int
    n_items: int
    shards: List[ShardSpec] = field(default_factory=list)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_for_user(self, user_id: int) -> int:
        """Shard owning ``user_id`` (caller checks the id is known)."""
        for spec in self.shards:
            if spec.lo <= user_id < spec.hi:
                return spec.shard_id
        raise KeyError(f"user {user_id} is outside every shard range")


def shard_boundaries(n_users: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal user ranges; later shards may be empty
    when ``n_shards > n_users`` (their workers simply never see
    traffic)."""
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    edges = [n_users * i // n_shards for i in range(n_shards + 1)]
    return [(edges[i], edges[i + 1]) for i in range(n_shards)]


class SharedIndexArena:
    """Owner of the shared-memory segments behind a :class:`ShardLayout`.

    Create with :func:`create_shards`; call :meth:`close` (idempotent)
    to release them.  The arena registers nothing global — whoever
    builds it is responsible for closing it, which the front-end does
    in its ``stop()`` path and tests do in ``finally`` blocks.
    """

    def __init__(self, layout: ShardLayout,
                 segments: List[shared_memory.SharedMemory]):
        self.layout = layout
        self._segments = segments
        self._closed = False

    def close(self, unlink: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
            except OSError:  # pragma: no cover - already gone
                pass
            if unlink:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    def __del__(self):  # pragma: no cover - backstop only
        self.close()


def _new_segment(prefix: str, label: str, array: np.ndarray,
                 segments: List[shared_memory.SharedMemory]
                 ) -> ShardSegment:
    """Copy ``array`` into a fresh named segment; records the handle."""
    array = np.ascontiguousarray(array)
    name = f"{prefix}_{label}"
    # SharedMemory refuses size=0; empty arrays (an empty shard's user
    # table) get a 1-byte segment and reattach via the recorded shape.
    shm = shared_memory.SharedMemory(name=name, create=True,
                                     size=max(1, array.nbytes))
    segments.append(shm)
    if array.nbytes:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
    return ShardSegment(name=name, shape=tuple(array.shape),
                        dtype=array.dtype.str)


def create_shards(index: RetrievalIndex, n_shards: int,
                  name_prefix: str = None) -> SharedIndexArena:
    """Split ``index`` into ``n_shards`` shared-memory user-range shards.

    Segment names are prefixed ``repro_shm_<pid>_<token>`` so parallel
    front-ends (tests, CI) never collide and leaked segments are
    greppable in ``/dev/shm``.
    """
    prefix = name_prefix or \
        f"repro_shm_{os.getpid()}_{secrets.token_hex(4)}"
    segments: List[shared_memory.SharedMemory] = []
    try:
        shared_slots: Dict[str, ShardSegment] = {}
        for slot, array in index.arrays.items():
            if slot not in _USER_SLOTS:
                shared_slots[slot] = _new_segment(
                    prefix, f"item_{slot}", array, segments)
        popularity = _new_segment(prefix, "popularity", index.popularity,
                                  segments)
        specs: List[ShardSpec] = []
        for shard_id, (lo, hi) in enumerate(
                shard_boundaries(index.n_users, n_shards)):
            arrays = dict(shared_slots)
            for slot, array in index.arrays.items():
                if slot in _USER_SLOTS:
                    arrays[slot] = _new_segment(
                        prefix, f"s{shard_id}_{slot}", array[lo:hi],
                        segments)
            start, end = (int(index.train_indptr[lo]),
                          int(index.train_indptr[hi]))
            indptr = _new_segment(
                prefix, f"s{shard_id}_indptr",
                index.train_indptr[lo:hi + 1] - start, segments)
            indices = _new_segment(
                prefix, f"s{shard_id}_indices",
                index.train_indices[start:end], segments)
            specs.append(ShardSpec(shard_id=shard_id, lo=lo, hi=hi,
                                   arrays=arrays, indptr=indptr,
                                   indices=indices,
                                   popularity=popularity))
        layout = ShardLayout(kind=index.kind, scalars=dict(index.scalars),
                             meta=dict(index.meta),
                             n_users=index.n_users,
                             n_items=index.n_items, shards=specs)
        return SharedIndexArena(layout, segments)
    except BaseException:
        for shm in segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        raise


class _AttachedShard:
    """A worker-side shard: local index view + the handles keeping the
    shared-memory mappings alive (close on :meth:`close`, never unlink
    — the arena owns that)."""

    def __init__(self, index: RetrievalIndex, lo: int, hi: int,
                 handles: List[shared_memory.SharedMemory]):
        self.index = index
        self.lo = lo
        self.hi = hi
        self._handles = handles

    def close(self) -> None:
        for shm in self._handles:
            try:
                shm.close()
            except OSError:  # pragma: no cover
                pass
        self._handles = []


def _attach_array(segment: ShardSegment,
                  handles: List[shared_memory.SharedMemory],
                  cache: Dict[str, shared_memory.SharedMemory]
                  ) -> np.ndarray:
    shm = cache.get(segment.name)
    if shm is None:
        # Attaching re-registers the name with the resource tracker
        # (no ``track=False`` before 3.13).  Workers are *forked*, so
        # they share the parent's tracker process and the re-register
        # is an idempotent set-add; the arena's ``unlink`` unregisters
        # the name exactly once.  Do NOT unregister here — that would
        # strip the parent's own registration out from under it.
        shm = shared_memory.SharedMemory(name=segment.name)
        cache[segment.name] = shm
        handles.append(shm)
    if not int(np.prod(segment.shape, dtype=np.int64)):
        return np.empty(segment.shape, dtype=np.dtype(segment.dtype))
    return np.ndarray(segment.shape, dtype=np.dtype(segment.dtype),
                      buffer=shm.buf)


def attach_shard(layout: ShardLayout, shard_id: int) -> _AttachedShard:
    """Map one shard zero-copy; returns the local index view + handles.

    The returned index is a plain :class:`RetrievalIndex` over
    **shard-local** user ids (``score_user(0)`` scores global user
    ``spec.lo``) whose array views alias the shared segments directly.
    """
    spec = layout.shards[shard_id]
    handles: List[shared_memory.SharedMemory] = []
    cache: Dict[str, shared_memory.SharedMemory] = {}
    try:
        arrays = {slot: _attach_array(seg, handles, cache)
                  for slot, seg in spec.arrays.items()}
        indptr = _attach_array(spec.indptr, handles, cache)
        indices = _attach_array(spec.indices, handles, cache)
        popularity = _attach_array(spec.popularity, handles, cache)
        meta = dict(layout.meta)
        meta["n_users"] = spec.n_users
        meta["n_items"] = layout.n_items
        meta["shard"] = {"shard_id": spec.shard_id, "lo": spec.lo,
                         "hi": spec.hi,
                         "global_n_users": layout.n_users}
        index = RetrievalIndex(kind=layout.kind, arrays=arrays,
                               scalars=dict(layout.scalars),
                               train_indptr=indptr,
                               train_indices=indices,
                               popularity=popularity, meta=meta)
        return _AttachedShard(index, spec.lo, spec.hi, handles)
    except BaseException:
        for shm in handles:
            shm.close()
        raise
