"""Offline serving: checkpoints, retrieval index, and an inference engine.

The subsystem turns a trained in-memory model into deployable artifacts:

* :mod:`repro.serve.checkpoint` — a versioned, zero-dependency
  ``arrays.npz`` + JSON checkpoint format.  Round-tripping a model gives
  bit-identical scores and bit-identical *resumed* training.
* :mod:`repro.serve.index` — an offline index builder that freezes the
  model's scoring arithmetic (:meth:`Recommender.export_scoring`) into
  precomputed tables, so per-request scoring is one small matvec instead
  of a full forward pass.
* :mod:`repro.serve.config` — :class:`ServiceConfig`, the formal
  deployment configuration (list length, cache, retry/breaker policies,
  fallback mode) shared by the engine, the bench, and the CLI.
* :mod:`repro.serve.engine` — :class:`RecommendService`, a batched online
  inference engine with an LRU response cache, retry/timeout guards, an
  error-rate circuit breaker, and graceful degradation (stale-index or
  popularity fallback) for unknown users and failed scoring.
* :mod:`repro.serve.bench` — the load harness behind
  ``benchmarks/bench_serve.py`` and ``repro serve bench``.
* :mod:`repro.serve.frontend` — the multi-worker scale-out layer:
  shared-memory index shards served by supervised worker processes
  behind an admission-controlled asyncio HTTP edge
  (``repro serve http``), with open-loop overload benchmarking.
"""

from repro.serve.checkpoint import (CHECKPOINT_VERSION, CheckpointError,
                                    load_checkpoint, read_checkpoint_meta,
                                    save_checkpoint)
from repro.serve.config import FALLBACK_MODES, ServiceConfig
from repro.serve.index import (INDEX_VERSION, IndexFormatError,
                               RetrievalIndex, build_index, load_index)
from repro.serve.engine import RecommendService
from repro.serve.frontend import FrontendConfig, ServingFrontend

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "INDEX_VERSION",
    "IndexFormatError",
    "RetrievalIndex",
    "build_index",
    "load_index",
    "FALLBACK_MODES",
    "ServiceConfig",
    "RecommendService",
    "FrontendConfig",
    "ServingFrontend",
]
