"""Formal serving configuration for :class:`~repro.serve.RecommendService`.

:class:`ServiceConfig` replaces the loose keyword arguments the engine
grew in PR4 with one frozen dataclass, composing the shared robustness
policies from :mod:`repro.robust.policies`.  A config object is plain
data: it can be logged, diffed between environments, and shared between
a drill, a test, and the CLI without re-spelling knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.robust.policies import BreakerPolicy, RetryPolicy

FALLBACK_MODES = ("popularity", "stale_index")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the serving engine is allowed to decide per deployment.

    Parameters
    ----------
    k:
        Default list length per request.
    cache_size:
        Maximum cached responses (LRU eviction); ``0`` disables caching.
    exclude_seen:
        Mask each user's training items out of their ranking (the same
        policy the evaluator applies).
    batch_size:
        Mask/top-K micro-batch ceiling inside ``query_batch`` — a
        memory bound only; scoring stays per-row, so results are
        independent of it.
    retry:
        :class:`~repro.robust.policies.RetryPolicy` guarding each index
        scoring call (attempts, backoff, per-request deadline).
    breaker:
        :class:`~repro.robust.policies.BreakerPolicy` for the
        error-rate circuit breaker over guarded requests.
    fallback:
        What a degraded request gets instead of fresh scores:
        ``"popularity"`` (default) serves the popularity ranking with
        the user's seen items masked; ``"stale_index"`` first tries the
        service's ``fallback_index`` (e.g. yesterday's index) and only
        then popularity.
    """

    k: int = 10
    cache_size: int = 1024
    exclude_seen: bool = True
    batch_size: int = 256
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    fallback: str = "popularity"

    def __post_init__(self):
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.cache_size < 0:
            raise ValueError(
                f"cache_size must be >= 0, got {self.cache_size}")
        if self.batch_size <= 0:
            raise ValueError(
                f"batch_size must be positive, got {self.batch_size}")
        if self.fallback not in FALLBACK_MODES:
            raise ValueError(
                f"unknown fallback mode {self.fallback!r}; "
                f"known: {list(FALLBACK_MODES)}")

    def with_overrides(self, **overrides) -> "ServiceConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)
