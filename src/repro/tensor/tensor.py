"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The design follows the classic tape-based approach: every differentiable
operation records its parents and a backward closure on the result tensor.
Calling :meth:`Tensor.backward` topologically sorts the graph and accumulates
gradients into ``.grad`` of every leaf with ``requires_grad=True``.

Data is stored in the *compute dtype* of the active backend
(:mod:`repro.tensor.backend`): float64 under the ``reference`` backend —
hyperbolic geometry is numerically delicate (``arcosh`` near 1, Poincare
norms near 1), so the oracle engine does not trade precision for speed —
and float32 under the opt-in ``fast`` backend.  Leaf tensors may pin an
explicit ``dtype`` (:class:`repro.optim.Parameter` pins float64 so
checkpoints and optimizer state are backend-agnostic); gradient
accumulation into a leaf always casts to the leaf's dtype, giving
float32 compute with float64 parameter/gradient masters.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.tensor import backend as _backend

Scalar = Union[int, float, np.floating]
ArrayLike = Union[Scalar, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Numpy broadcasting may both prepend dimensions and stretch size-1 axes;
    the adjoint of broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over stretched size-1 axes.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=_backend.compute_dtype())


class Tensor:
    """A numpy array plus a node in a dynamically built computation graph.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts; stored in the active
        backend's compute dtype unless ``dtype`` pins one explicitly.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    dtype:
        Explicit storage dtype; ``None`` (the default) uses the active
        backend's compute dtype.  Parameters pin float64 regardless of
        backend so model/optimizer state stays backend-agnostic.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # make numpy defer to our __radd__ etc.

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: str = "", dtype: Optional[np.dtype] = None):
        self.data = np.asarray(
            data, dtype=_backend.compute_dtype() if dtype is None else dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None],
              dtype=None) -> "Tensor":
        """Create a result tensor, wiring the graph only if grad is enabled.

        ``dtype`` pins the result dtype against the backend's compute
        dtype — used by kernels whose output must stay float64 under the
        fast backend (loss accumulation).
        """
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, dtype=dtype)
        if needs:
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into ``.grad``, cast to this leaf's dtype.

        The cast is what implements mixed precision: under the fast
        backend intermediates flow float32, but a float64 leaf (every
        ``Parameter``) accumulates in float64.  Under the reference
        backend everything is float64 already and the cast is a no-op.

        ``owned=True`` promises the caller holds the only reference to
        ``grad``, letting the first accumulation adopt the buffer instead
        of copying it.  Later accumulations add in place either way —
        ``.grad`` is always a buffer this tensor owns.
        """
        grad = _unbroadcast(grad, self.data.shape)
        if grad.dtype != self.data.dtype:
            grad = grad.astype(self.data.dtype)
            owned = True  # astype allocated a fresh buffer
        if self.grad is None:
            self.grad = grad if owned else grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        If this tensor is not a scalar, an explicit ``grad`` of the same
        shape must be supplied.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require grad")
        owned: set[int] = set()
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be specified for non-scalar "
                                   "tensors")
            grad = np.ones_like(self.data)
            owned.add(id(self))  # freshly allocated: safe to mutate
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order via iterative DFS (recursion would overflow on
        # deep graphs such as multi-layer GCNs unrolled over epochs).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # NaN/inf gradient detection (debug flag): scanning every buffer
        # costs a full pass per node, so it only runs when a repro.obs run
        # with nan_checks is active (CLI --trace).
        nan_check = obs.nan_checks_enabled()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if nan_check:
                finite = np.isfinite(node_grad)
                if not finite.all():
                    n_bad = int(finite.size - np.count_nonzero(finite))
                    obs.count("autograd/nonfinite_grads")
                    obs.count("autograd/nonfinite_grad_elems", n_bad)
                    obs.event("autograd.nonfinite_grad",
                              tensor=node.name or "<unnamed>",
                              shape=list(node.data.shape), n_bad=n_bad,
                              is_leaf=node._backward is None)
            if node._backward is not None:
                node._push_parent_grads(node_grad, grads, owned)
            elif node.requires_grad:
                # Leaf: fold the finished gradient into .grad, adopting the
                # buffer when this backward pass holds the only reference.
                node._accumulate(node_grad, owned=id(node) in owned)

    def _push_parent_grads(self, grad: np.ndarray,
                           grads: dict[int, np.ndarray],
                           owned: set[int]) -> None:
        """Run this node's backward closure, routing grads to parents.

        The backward closure receives the output gradient and returns one
        gradient (or ``None``) per parent, in order.  Gradients collect in
        ``grads`` until the main loop pops the parent — leaves then land in
        ``.grad``, intermediate nodes propagate further.

        A closure may alias its output gradients (``add`` returns ``(g,
        g)``), so a parent's first contribution is stored as-is and never
        mutated; the second allocates a sum the pass owns (tracked in
        ``owned``) and any further contributions add into it in place.
        """
        parent_grads = self._backward(grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None:
                continue
            if not isinstance(pgrad, np.ndarray):
                # Closures return ndarrays on every hot path; this guards
                # scalar edge cases.  The gradient keeps the dtype it was
                # computed in — leaves cast on accumulation.
                pgrad = np.asarray(pgrad, dtype=grad.dtype)
            pgrad = _unbroadcast(pgrad, parent.data.shape)
            pid = id(parent)
            if pid not in grads:
                grads[pid] = pgrad
            elif pid in owned:
                grads[pid] += pgrad
            else:
                grads[pid] = grads[pid] + pgrad
                owned.add(pid)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, dtype=self.data.dtype)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    # Constants (Python scalars, numpy arrays) are differentiated against
    # nothing, so the non-Tensor branches below skip the Tensor wrapper and
    # graph edge entirely instead of allocating a throwaway leaf per call.
    def __add__(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return Tensor._make(self.data + other.data, (self, other),
                                lambda g: (g, g))
        return Tensor._make(self.data + _as_array(other), (self,),
                            lambda g: (g,))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return Tensor._make(self.data - other.data, (self, other),
                                lambda g: (g, -g))
        return Tensor._make(self.data - _as_array(other), (self,),
                            lambda g: (g,))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._make(_as_array(other) - self.data, (self,),
                            lambda g: (-g,))

    def __mul__(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            a, b = self.data, other.data
            return Tensor._make(a * b, (self, other),
                                lambda g: (g * b, g * a))
        b = _as_array(other)
        return Tensor._make(self.data * b, (self,), lambda g: (g * b,))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            a, b = self.data, other.data
            return Tensor._make(a / b, (self, other),
                                lambda g: (g / b, -g * a / (b * b)))
        b = _as_array(other)
        return Tensor._make(self.data / b, (self,), lambda g: (g / b,))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        a = self.data
        b = _as_array(other)
        return Tensor._make(b / a, (self,),
                            lambda g: (-g * b / (a * a),))

    def __pow__(self, exponent: Scalar) -> "Tensor":
        exponent = float(exponent)
        data = self.data ** exponent
        a = self.data
        return Tensor._make(data, (self,),
                            lambda g: (g * exponent * a ** (exponent - 1),))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        a, b = self.data, other_t.data
        data = a @ b

        def backward(g):
            ga = g @ b.swapaxes(-1, -2)
            gb = a.swapaxes(-1, -2) @ g
            return ga, gb

        return Tensor._make(data, (self, other_t), backward)

    # Comparisons return plain numpy boolean arrays (no gradient flows).
    def __gt__(self, other: ArrayLike):
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike):
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike):
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Shaping / indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)
        return Tensor._make(data, (self,),
                            lambda g: (g.reshape(original),))

    def transpose(self) -> "Tensor":
        """Transpose the last two axes."""
        data = self.data.swapaxes(-1, -2)
        return Tensor._make(data, (self,),
                            lambda g: (g.swapaxes(-1, -2),))

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape

        def backward(g):
            out = np.zeros(shape, dtype=g.dtype)
            np.add.at(out, index, g)
            return (out,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions (also available as module-level functions in ops.py)
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)
