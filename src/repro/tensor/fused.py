"""Fused forward+backward kernels for the fast backend.

Every function here collapses a fixed chain of composed autograd ops —
the hyperbolic-geometry hot spots identified in BENCH_perf.json — into a
*single* graph node with a hand-derived vector-Jacobian product.  The
win is twofold: the forward avoids materializing the chain's
intermediate tensors (graph nodes, Python closures, temporaries), and
the backward replays only the arithmetic that actually reaches the
inputs.

Correctness contract
--------------------
Each VJP is derived from the *reference* composition, including its
clamp masks and safe-epsilon semantics (see DESIGN.md §10 for the
derivations).  ``tests/test_backend.py`` pins every kernel against the
reference implementation in float64 — forward and backward agree to
~1e-12, so the only divergence the fast backend introduces is float32
rounding.

The arcosh clamp epsilon is dtype-aware: the reference's ``1e-12`` is
*below float32 machine epsilon* (``1 + 1e-12 == 1.0`` in float32, which
would make the backward ``1/sqrt(x^2-1)`` infinite), so float32 inputs
clamp at ``1 + 1e-6`` instead.

Buffers come from the active backend's :class:`~repro.tensor.backend.
Arena` while gradients are being recorded; under ``no_grad`` (export,
eval) kernels allocate fresh arrays because callers may keep references
past the step boundary.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.tensor import backend as _be
from repro.tensor.tensor import Tensor, is_grad_enabled

_MIN_NORM = 1e-15
_MAX_TANGENT_NORM = 10.0
_ARCOSH_EPS_F64 = 1e-12
_ARCOSH_EPS_F32 = 1e-6


def _arcosh_eps(dtype: np.dtype) -> float:
    return _ARCOSH_EPS_F64 if dtype == np.float64 else _ARCOSH_EPS_F32


def _empty(shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Arena-backed scratch while recording; fresh memory otherwise."""
    arena = _be.get_backend().arena
    if arena is not None and is_grad_enabled():
        return arena.empty(tuple(shape), dtype)
    return np.empty(shape, dtype=dtype)


def _dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched last-axis inner product.

    ``einsum`` accumulates the products directly instead of materializing
    the ``a * b`` temporary that ``(a * b).sum(-1)`` would — ~2.7x faster
    at the bench batch shape and the dominant reduction in every kernel
    here.  Summation order differs from ``np.sum`` by float rounding
    only, which the backend tolerance policy already absorbs.
    """
    return np.einsum("...i,...i->...", a, b)


def _dotk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """:func:`_dot` with the reduced axis kept (length 1)."""
    return np.einsum("...i,...i->...", a, b)[..., None]


def _jflip(scale: np.ndarray, vec: np.ndarray) -> np.ndarray:
    """``scale[..., None] * J vec`` with ``J = diag(-1, 1, ..., 1)``."""
    out = _empty(np.broadcast_shapes(scale.shape + (1,), vec.shape),
                 np.result_type(scale, vec))
    np.multiply(scale[..., None], vec, out=out)
    out[..., 0] = -out[..., 0]
    return out


# ----------------------------------------------------------------------
# Lorentz kernels
# ----------------------------------------------------------------------
def lorentz_sqdist(x: Tensor, y: Tensor) -> Tensor:
    """Fused ``-2 - 2 <x, y>_L`` (squared Lorentzian distance)."""
    obs.count("backend/fused/lorentz.sqdist")
    xd, yd = x.data, y.data
    inner = _dot(xd[..., 1:], yd[..., 1:]) - xd[..., 0] * yd[..., 0]
    data = -2.0 - 2.0 * inner

    def backward(g):
        g2 = -2.0 * g
        return _jflip(g2, yd), _jflip(g2, xd)

    return Tensor._make(data, (x, y), backward)


def lorentz_distance(x: Tensor, y: Tensor) -> Tensor:
    """Fused ``arcosh(-<x, y>_L)`` geodesic distance."""
    obs.count("backend/fused/lorentz.distance")
    xd, yd = x.data, y.data
    neg_inner = xd[..., 0] * yd[..., 0] - _dot(xd[..., 1:], yd[..., 1:])
    clamped = np.maximum(neg_inner, 1.0 + _arcosh_eps(neg_inner.dtype))
    data = np.arccosh(clamped)
    denom = np.sqrt(clamped * clamped - 1.0)

    def backward(g):
        # Pass-through clamp (matches ops.arcosh); d(-inner)/dx = -J y.
        gz = g / denom
        return _jflip(-gz, yd), _jflip(-gz, xd)

    return Tensor._make(data, (x, y), backward)


def lorentz_expmap0(v: Tensor) -> Tensor:
    """Fused exponential map at the hyperboloid origin.

    Forward: ``(cosh(nc), sinh(nc) * s / safe)`` with ``s`` the spatial
    part, ``n = ||s||``, ``nc = min(n, 10)``, ``safe = max(n, 1e-15)``.
    """
    obs.count("backend/fused/lorentz.expmap0")
    vd = v.data
    s = vd[..., 1:]
    n = np.sqrt(_dotk(s, s))
    nc = np.minimum(n, _MAX_TANGENT_NORM)
    safe = np.maximum(n, _MIN_NORM)
    ch = np.cosh(nc)
    sh = np.sinh(nc)
    ratio = sh / safe
    data = _empty(vd.shape, vd.dtype)
    data[..., 0:1] = ch
    np.multiply(ratio, s, out=data[..., 1:])

    def backward(g):
        g_t = g[..., 0:1]
        g_sp = g[..., 1:]
        m_c = (n <= _MAX_TANGENT_NORM).astype(vd.dtype)
        m_s = (n >= _MIN_NORM).astype(vd.dtype)
        dot = _dotk(g_sp, s)
        # d(output)/dn routed through cosh/sinh (masked by the norm
        # clamp) and through the safe denominator (masked at zero).
        gn = (dot * (ch * m_c / safe - ratio * m_s / safe)
              + g_t * sh * m_c)
        gv = _empty(vd.shape, np.result_type(g, vd))
        gv[..., 0] = 0.0
        np.multiply(ratio, g_sp, out=gv[..., 1:])
        gv[..., 1:] += (gn / safe) * s
        return (gv,)

    return Tensor._make(data, (v,), backward)


def lorentz_logmap0(x: Tensor) -> Tensor:
    """Fused logarithmic map at the hyperboloid origin.

    Forward: ``(0, arcosh(max(x0, 1)) * sp / max(||sp||, 1e-15))``.
    """
    obs.count("backend/fused/lorentz.logmap0")
    xd = x.data
    x0 = xd[..., 0:1]
    sp = xd[..., 1:]
    eps = _arcosh_eps(xd.dtype)
    cl = np.maximum(x0, 1.0 + eps)
    dist = np.arccosh(cl)
    n = np.sqrt(_dotk(sp, sp))
    safe = np.maximum(n, _MIN_NORM)
    ratio = dist / safe
    data = _empty(xd.shape, xd.dtype)
    data[..., 0] = 0.0
    np.multiply(ratio, sp, out=data[..., 1:])

    def backward(g):
        g_sp = g[..., 1:]
        m0 = (x0 >= 1.0).astype(xd.dtype)
        m_s = (n >= _MIN_NORM).astype(xd.dtype)
        dot = _dotk(g_sp, sp)
        gx = _empty(xd.shape, np.result_type(g, xd))
        gx[..., 0:1] = (dot / safe) * m0 / np.sqrt(cl * cl - 1.0)
        np.multiply(ratio, g_sp, out=gx[..., 1:])
        gx[..., 1:] -= (dot * ratio * m_s / (safe * safe)) * sp
        return (gx,)

    return Tensor._make(data, (x,), backward)


def lorentz_triplet_hinge(user_emb: Tensor, pos_emb: Tensor,
                          neg_emb: Tensor, margin: float,
                          user_weights: Optional[np.ndarray] = None
                          ) -> Tensor:
    """Fully fused recommendation loss (Eq. 9 / Eq. 15).

    ``mean_b w_b [margin + sqdist(u, v_p) - sqdist(u, v_q)]_+`` as one
    node: three Lorentzian inners, the hinge, the weighting, and the
    mean collapse into a single forward and a three-output backward.
    """
    obs.count("backend/fused/losses.lorentz_triplet")
    ud, pd, qd = user_emb.data, pos_emb.data, neg_emb.data
    us, u0 = ud[..., 1:], ud[..., 0]
    inner_p = _dot(us, pd[..., 1:]) - u0 * pd[..., 0]
    inner_q = _dot(us, qd[..., 1:]) - u0 * qd[..., 0]
    # margin + d_pos - d_neg with d = -2 - 2*inner (the -2's cancel).
    a = margin + 2.0 * (inner_q - inner_p)
    mask = a >= 0.0
    hinge = np.where(mask, a, 0.0)
    if user_weights is not None:
        w = np.asarray(user_weights, dtype=hinge.dtype)
        hinge = hinge * w
    else:
        w = None
    batch = max(a.size, 1)
    data = np.asarray(hinge.sum(dtype=np.float64) / batch)

    def backward(g):
        # The float64 loss seed drops back to the embedding dtype here —
        # backward cost stays in the compute precision.
        c = (np.asarray(g, dtype=ud.dtype) / batch) * mask
        if w is not None:
            c = c * w
        c2 = 2.0 * c
        # da/du = 2 J (q - p); da/dp = -2 J u; da/dq = 2 J u.
        return (_jflip(c2, qd - pd), _jflip(-c2, ud), _jflip(c2, ud))

    return Tensor._make(data, (user_emb, pos_emb, neg_emb), backward,
                        dtype=np.float64)


# ----------------------------------------------------------------------
# Poincare kernels
# ----------------------------------------------------------------------
def poincare_expmap0(v: Tensor) -> Tensor:
    """Fused Poincare exponential map at the origin:
    ``tanh(||v||) v / max(||v||, 1e-15)``."""
    obs.count("backend/fused/poincare.expmap0")
    vd = v.data
    n = np.sqrt(_dotk(vd, vd))
    safe = np.maximum(n, _MIN_NORM)
    t = np.tanh(n)
    ratio = t / safe
    data = _empty(vd.shape, vd.dtype)
    np.multiply(ratio, vd, out=data)

    def backward(g):
        m_s = (n >= _MIN_NORM).astype(vd.dtype)
        dot = _dotk(g, vd)
        gn = dot * ((1.0 - t * t) / safe - ratio * m_s / safe)
        gv = _empty(vd.shape, np.result_type(g, vd))
        np.multiply(ratio, g, out=gv)
        gv += (gn / safe) * vd
        return (gv,)

    return Tensor._make(data, (v,), backward)


def poincare_distance(x: Tensor, y: Tensor) -> Tensor:
    """Fused Poincare distance
    ``arcosh(1 + 2 ||x-y||^2 / ((1-||x||^2)(1-||y||^2)))``."""
    obs.count("backend/fused/poincare.distance")
    xd, yd = x.data, y.data
    diff = xd - yd
    diff_sq = _dot(diff, diff)
    x_sq = _dot(xd, xd)
    y_sq = _dot(yd, yd)
    one_minus_x = 1.0 - x_sq
    one_minus_y = 1.0 - y_sq
    denom_raw = one_minus_x * one_minus_y
    denom = np.maximum(denom_raw, _MIN_NORM)
    arg = 1.0 + 2.0 * diff_sq / denom
    cl = np.maximum(arg, 1.0 + _arcosh_eps(arg.dtype))
    data = np.arccosh(cl)
    den_a = np.sqrt(cl * cl - 1.0)

    def backward(g):
        ga = g / den_a                       # pass-through arcosh clamp
        m_d = (denom_raw >= _MIN_NORM).astype(xd.dtype)
        g_diff_sq = ga * (2.0 / denom)
        g_denom = ga * (-2.0 * diff_sq / (denom * denom)) * m_d
        g_x_sq = -g_denom * one_minus_y
        g_y_sq = -g_denom * one_minus_x
        gx = _empty(xd.shape, np.result_type(g, xd))
        np.multiply((2.0 * g_diff_sq)[..., None], diff, out=gx)
        gx += (2.0 * g_x_sq)[..., None] * xd
        gy = _empty(yd.shape, np.result_type(g, yd))
        np.multiply((-2.0 * g_diff_sq)[..., None], diff, out=gy)
        gy += (2.0 * g_y_sq)[..., None] * yd
        return gx, gy

    return Tensor._make(data, (x, y), backward)


def poincare_mobius_add(x: Tensor, y: Tensor) -> Tensor:
    """Fused Mobius addition (numerator/denominator of Eq. 17)."""
    obs.count("backend/fused/poincare.mobius_add")
    xd, yd = x.data, y.data
    xy = _dotk(xd, yd)
    x_sq = _dotk(xd, xd)
    y_sq = _dotk(yd, yd)
    coef_x = 1.0 + 2.0 * xy + y_sq
    coef_y = 1.0 - x_sq
    num = coef_x * xd + coef_y * yd
    den_raw = 1.0 + 2.0 * xy + x_sq * y_sq
    den = np.maximum(den_raw, _MIN_NORM)
    data = _empty(num.shape, num.dtype)
    np.divide(num, den, out=data)

    def backward(g):
        gn = g / den
        m_d = (den_raw >= _MIN_NORM).astype(xd.dtype)
        g_den = -_dotk(g, num) / (den * den)
        g_den = g_den * m_d
        g_a = _dotk(gn, xd)   # d/d coef_x
        g_b = _dotk(gn, yd)   # d/d coef_y
        g_xy = 2.0 * g_a + 2.0 * g_den
        g_xsq = -g_b + g_den * y_sq
        g_ysq = g_a + g_den * x_sq
        gx = _empty(xd.shape, np.result_type(g, xd))
        np.multiply(coef_x, gn, out=gx)
        gx += g_xy * yd
        gx += (2.0 * g_xsq) * xd
        gy = _empty(yd.shape, np.result_type(g, yd))
        np.multiply(coef_y, gn, out=gy)
        gy += g_xy * xd
        gy += (2.0 * g_ysq) * yd
        return gx, gy

    return Tensor._make(data, (x, y), backward)


# ----------------------------------------------------------------------
# Model-space diffeomorphism
# ----------------------------------------------------------------------
def poincare_to_lorentz(x: Tensor) -> Tensor:
    """Fused Eq. 2: ``((1 + ||x||^2), 2x) / max(1 - ||x||^2, 1e-15)``."""
    obs.count("backend/fused/maps.poincare_to_lorentz")
    xd = x.data
    sq = _dotk(xd, xd)
    den_raw = 1.0 - sq
    den = np.maximum(den_raw, _MIN_NORM)
    out_shape = xd.shape[:-1] + (xd.shape[-1] + 1,)
    data = _empty(out_shape, xd.dtype)
    np.divide(1.0 + sq, den, out=data[..., 0:1])
    np.divide(2.0 * xd, den, out=data[..., 1:])

    def backward(g):
        g_t = g[..., 0:1]
        g_s = g[..., 1:]
        m_d = (den_raw >= _MIN_NORM).astype(xd.dtype)
        dot = _dotk(g_s, xd)
        g_den = (-(1.0 + sq) * g_t - 2.0 * dot) / (den * den)
        g_sq = g_t / den - g_den * m_d
        gx = _empty(xd.shape, np.result_type(g, xd))
        np.divide(2.0 * g_s, den, out=gx)
        gx += (2.0 * g_sq) * xd
        return (gx,)

    return Tensor._make(data, (x,), backward)


def register_all() -> None:
    """Register every fused kernel as the fast variant of its chain."""
    _be.register_kernel("lorentz.sqdist", fast=lorentz_sqdist)
    _be.register_kernel("lorentz.distance", fast=lorentz_distance)
    _be.register_kernel("lorentz.expmap0", fast=lorentz_expmap0)
    _be.register_kernel("lorentz.logmap0", fast=lorentz_logmap0)
    _be.register_kernel("poincare.expmap0", fast=poincare_expmap0)
    _be.register_kernel("poincare.distance", fast=poincare_distance)
    _be.register_kernel("poincare.mobius_add", fast=poincare_mobius_add)
    _be.register_kernel("maps.poincare_to_lorentz", fast=poincare_to_lorentz)
    _be.register_kernel("losses.lorentz_triplet", fast=lorentz_triplet_hinge)


register_all()
