"""Minimal neural-network layers over the autograd engine.

Only what the neural baselines need: dense layers with sensible
initialization, an MLP stack, and an embedding table wrapper.  Layers
expose ``parameters()`` so optimizers can collect them uniformly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.optim.parameter import Parameter
from repro.tensor.ops import gather_rows, relu
from repro.tensor.tensor import Tensor


class Linear:
    """Dense layer ``y = x W + b`` with He/Glorot initialization."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 init: str = "he", name: str = "linear"):
        rng = rng if rng is not None else np.random.default_rng()
        if init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "glorot":
            scale = np.sqrt(2.0 / (in_features + out_features))
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Parameter(
            rng.normal(0.0, scale, (in_features, out_features)),
            name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class MLP:
    """Stack of Linear layers with an activation between them.

    ``sizes = (in, h1, ..., out)``; the activation is applied after every
    layer except the last.
    """

    def __init__(self, sizes: Sequence[int],
                 activation: Callable[[Tensor], Tensor] = relu,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "mlp"):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng if rng is not None else np.random.default_rng()
        self.activation = activation
        self.layers = [Linear(sizes[i], sizes[i + 1], rng=rng,
                              name=f"{name}.{i}")
                       for i in range(len(sizes) - 1)]

    def __call__(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = self.activation(x)
        return x

    def parameters(self) -> List[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]


class Embedding:
    """Lookup table with scatter-add gradients (like ``nn.Embedding``)."""

    def __init__(self, n_rows: int, dim: int,
                 rng: Optional[np.random.Generator] = None,
                 scale: float = 0.1, name: str = "embedding"):
        rng = rng if rng is not None else np.random.default_rng()
        self.table = Parameter(rng.normal(0.0, scale, (n_rows, dim)),
                               name=name)

    def __call__(self, ids: np.ndarray) -> Tensor:
        return gather_rows(self.table, ids)

    @property
    def data(self) -> np.ndarray:
        return self.table.data

    def parameters(self) -> List[Parameter]:
        return [self.table]
