"""Sparse matrix multiplication op for graph convolutions.

Graph convolution layers repeatedly compute ``A @ X`` where ``A`` is a fixed
(normalized) sparse adjacency matrix and ``X`` a dense embedding matrix that
requires grad.  The adjoint is ``A.T @ dY``.  ``A`` itself is never a
learnable parameter in any of the reproduced models, so no gradient flows
into it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Tensor


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Compute ``matrix @ x`` where ``matrix`` is scipy-sparse and constant.

    Parameters
    ----------
    matrix:
        A ``scipy.sparse`` matrix of shape ``(m, n)``; converted to CSR once.
    x:
        Dense :class:`Tensor` of shape ``(n, d)``.
    """
    if not sp.issparse(matrix):
        raise TypeError("sparse_matmul expects a scipy.sparse matrix")
    csr = matrix.tocsr()
    if csr.shape[1] != x.data.shape[0]:
        raise ValueError(
            f"shape mismatch: {csr.shape} @ {x.data.shape}")
    data = np.asarray(csr @ x.data, dtype=np.float64)
    csr_t = csr.T.tocsr()

    def backward(g):
        return (np.asarray(csr_t @ g, dtype=np.float64),)

    return Tensor._make(data, (x,), backward)
