"""Sparse matrix multiplication op for graph convolutions.

Graph convolution layers repeatedly compute ``A @ X`` where ``A`` is a fixed
(normalized) sparse adjacency matrix and ``X`` a dense embedding matrix that
requires grad.  The adjoint is ``A.T @ dY``.  ``A`` itself is never a
learnable parameter in any of the reproduced models, so no gradient flows
into it.

Under the ``reference`` backend this is exactly the original op: CSR
conversion and a fresh transpose per call, float64 throughout.  The
``fast`` backend adds a per-matrix *plan* cached on the adjacency object:
the CSR cast to the compute dtype, the transposed CSR (built once, not
per forward), and — when the backend has a thread budget and the product
is large enough to amortize dispatch — disjoint row slabs that a shared
thread pool multiplies into one preallocated output.  On a single-core
machine the thread budget resolves to 1 and the slab path stays dormant.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tensor import backend as _backend
from repro.tensor.tensor import Tensor

# Minimum output elements / stored entries before row-slab threading can
# win over its dispatch overhead.
_THREAD_MIN_OUT = 1 << 16
_THREAD_MIN_NNZ = 1 << 14

_CACHE_ATTR = "_repro_spmm_plan"

_pool_lock = threading.Lock()
_pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
_pool_size = 0


def _executor(threads: int) -> concurrent.futures.ThreadPoolExecutor:
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < threads:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-spmm")
            _pool_size = threads
        return _pool


class _SpmmPlan:
    """Precomputed forward/backward operators for one adjacency matrix."""

    __slots__ = ("dtype", "threads", "csr", "csr_t", "blocks", "blocks_t")

    def __init__(self, csr: sp.csr_matrix, dtype: np.dtype, threads: int):
        self.dtype = dtype
        self.threads = threads
        self.csr = csr.astype(dtype, copy=False)
        self.csr_t = self.csr.T.tocsr()
        self.blocks = self._slabs(self.csr)
        self.blocks_t = self._slabs(self.csr_t)

    def _slabs(self, csr: sp.csr_matrix
               ) -> Optional[List[Tuple[int, int, sp.csr_matrix]]]:
        if self.threads <= 1 or csr.nnz < _THREAD_MIN_NNZ:
            return None
        rows = csr.shape[0]
        n_blocks = min(self.threads, rows)
        bounds = np.linspace(0, rows, n_blocks + 1, dtype=np.int64)
        return [(int(r0), int(r1), csr[r0:r1])
                for r0, r1 in zip(bounds[:-1], bounds[1:]) if r1 > r0]

    def _apply(self, csr: sp.csr_matrix,
               blocks: Optional[List[Tuple[int, int, sp.csr_matrix]]],
               dense: np.ndarray) -> np.ndarray:
        if (blocks is not None
                and csr.shape[0] * dense.shape[-1] >= _THREAD_MIN_OUT):
            out = np.empty((csr.shape[0], dense.shape[1]),
                           dtype=np.result_type(self.dtype, dense.dtype))

            def work(block):
                r0, r1, sub = block
                out[r0:r1] = sub @ dense

            list(_executor(self.threads).map(work, blocks))
            return out
        return csr @ dense

    def forward(self, dense: np.ndarray) -> np.ndarray:
        return self._apply(self.csr, self.blocks, dense)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self._apply(self.csr_t, self.blocks_t, grad)


def _plan_for(matrix: sp.spmatrix, csr: sp.csr_matrix,
              backend: "_backend.Backend") -> _SpmmPlan:
    plan = getattr(matrix, _CACHE_ATTR, None)
    if (plan is None or plan.dtype != backend.dtype
            or plan.threads != backend.threads):
        plan = _SpmmPlan(csr, backend.dtype, backend.threads)
        try:
            setattr(matrix, _CACHE_ATTR, plan)
        except AttributeError:
            pass  # exotic matrix types without a __dict__: just rebuild
    return plan


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Compute ``matrix @ x`` where ``matrix`` is scipy-sparse and constant.

    Parameters
    ----------
    matrix:
        A ``scipy.sparse`` matrix of shape ``(m, n)``; converted to CSR once.
    x:
        Dense :class:`Tensor` of shape ``(n, d)``.
    """
    if not sp.issparse(matrix):
        raise TypeError("sparse_matmul expects a scipy.sparse matrix")
    csr = matrix.tocsr()
    if csr.shape[1] != x.data.shape[0]:
        raise ValueError(
            f"shape mismatch: {csr.shape} @ {x.data.shape}")
    backend = _backend.get_backend()
    if backend.fused:
        plan = _plan_for(matrix, csr, backend)
        data = plan.forward(x.data)
        return Tensor._make(data, (x,), lambda g: (plan.backward(g),))
    data = np.asarray(csr @ x.data, dtype=np.float64)
    csr_t = csr.T.tocsr()

    def backward(g):
        return (np.asarray(csr_t @ g, dtype=np.float64),)

    return Tensor._make(data, (x,), backward)
