"""Pluggable execution backends for the tensor engine.

The autograd engine in :mod:`repro.tensor.tensor` is deliberately simple:
one numpy node per op, float64 everywhere.  That simplicity is also the
train-step bottleneck (BENCH_perf.json), so this module introduces a
*backend* abstraction with exactly two implementations:

``reference``
    The engine as it has always been: float64 compute, generic composed
    ops, fresh allocations.  It is the bit-identity oracle — nothing in
    this module may change a single ULP of its results.

``fast``
    Opt-in via ``REPRO_BACKEND=fast`` or ``--backend fast``:

    * float32 compute for intermediates, while :class:`~repro.optim.
      Parameter` masters, leaf-gradient accumulation, and optimizer
      state stay float64 (checkpoints are backend-agnostic);
    * fused forward+backward kernels (:mod:`repro.tensor.fused`) for
      the fixed op chains of hyperbolic geometry, selected through the
      kernel registry below;
    * a per-step :class:`Arena` that recycles activation/gradient
      buffers across steps instead of reallocating;
    * an optionally threaded ``scipy.sparse`` matmul
      (:mod:`repro.tensor.sparse`) for GCN aggregation.

A backend is process-global (like grad mode): models, manifolds and
optimizers read it at call time, so a model *trained* under one backend
can be *scored* under another — parameters are float64 either way.

Kernel registry
---------------
Geometry hot spots register a reference implementation (the original
composed-op code) and optionally a fast one::

    register_kernel("lorentz.sqdist", reference=_sqdist_ref)
    register_kernel("lorentz.sqdist", fast=fused_sqdist)     # elsewhere

Call sites fetch ``kernel("lorentz.sqdist")`` per invocation; under the
reference backend the fast entry is invisible.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Arena",
    "Backend",
    "arena_stats",
    "available_backends",
    "compute_dtype",
    "describe",
    "get_backend",
    "kernel",
    "publish_metrics",
    "register_kernel",
    "scatter_add_rows",
    "set_backend",
    "step_begin",
    "use_backend",
]


class Arena:
    """Per-step buffer pool keyed by ``(shape, dtype)``.

    ``empty(shape, dtype)`` hands out an uninitialized buffer; calling
    :meth:`new_step` (done by ``Optimizer.zero_grad``) rewinds every
    pool's cursor so the next step reuses the same memory.  Buffers from
    step *t* may therefore be overwritten during step *t + 1* — callers
    must only put graph-lifetime values (activations, gradients) in
    arena buffers, never anything that outlives the step.  The fused
    kernels enforce this by falling back to ``np.empty`` whenever grad
    recording is off (export/eval paths keep references to outputs).

    :meth:`scratch` is a separate persistent pool for optimizer work
    buffers: the same key always returns the same array.
    """

    __slots__ = ("_pools", "_scratch", "hits", "misses")

    def __init__(self) -> None:
        # key -> [cursor, [buffers]]
        self._pools: Dict[Tuple, List] = {}
        self._scratch: Dict[Tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def new_step(self) -> None:
        """Rewind all pools; previously handed-out buffers become reusable."""
        for slot in self._pools.values():
            slot[0] = 0

    def empty(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """An uninitialized ``(shape, dtype)`` buffer, reused across steps."""
        key = (shape, np.dtype(dtype).char)
        slot = self._pools.get(key)
        if slot is None:
            slot = self._pools[key] = [0, []]
        cursor, buffers = slot
        if cursor < len(buffers):
            slot[0] = cursor + 1
            self.hits += 1
            return buffers[cursor]
        buf = np.empty(shape, dtype=dtype)
        buffers.append(buf)
        slot[0] = cursor + 1
        self.misses += 1
        return buf

    def scratch(self, key: Tuple, shape: Tuple[int, ...],
                dtype) -> np.ndarray:
        """A persistent named work buffer (same key -> same array)."""
        buf = self._scratch.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = self._scratch[key] = np.empty(shape, dtype=dtype)
        return buf

    def stats(self) -> Dict[str, float]:
        n_buffers = sum(len(slot[1]) for slot in self._pools.values())
        nbytes = sum(b.nbytes for slot in self._pools.values()
                     for b in slot[1])
        total = self.hits + self.misses
        return {
            "buffers": n_buffers,
            "bytes": nbytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }


class Backend:
    """Execution policy: compute dtype, kernel set, arena, thread budget."""

    __slots__ = ("name", "dtype", "fused", "arena", "threads")

    def __init__(self, name: str, dtype: np.dtype, fused: bool,
                 arena: Optional[Arena], threads: int):
        self.name = name
        self.dtype = np.dtype(dtype)
        self.fused = fused
        self.arena = arena
        self.threads = int(threads)

    def __repr__(self) -> str:
        return (f"Backend(name={self.name!r}, dtype={self.dtype.name}, "
                f"fused={self.fused}, threads={self.threads})")


def _default_threads() -> int:
    """Thread budget for the fast backend's sparse matmul.

    ``REPRO_BACKEND_THREADS`` overrides; otherwise use up to 4 cores but
    never oversubscribe — on a single-core box this resolves to 1 and
    the threaded spmm path stays dormant.
    """
    env = os.environ.get("REPRO_BACKEND_THREADS", "")
    if env:
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


def _make_backend(name: str) -> Backend:
    if name == "reference":
        return Backend("reference", np.float64, fused=False, arena=None,
                       threads=1)
    if name == "fast":
        return Backend("fast", np.float32, fused=True, arena=Arena(),
                       threads=_default_threads())
    raise ValueError(f"unknown backend {name!r}; "
                     f"available: {available_backends()}")


def available_backends() -> Tuple[str, ...]:
    return ("reference", "fast")


_ACTIVE: Optional[Backend] = None
_LOCK = threading.Lock()


def get_backend() -> Backend:
    """The active backend (resolving ``REPRO_BACKEND`` on first use)."""
    backend = _ACTIVE
    if backend is None:
        with _LOCK:
            backend = _ACTIVE
            if backend is None:
                backend = _make_backend(
                    os.environ.get("REPRO_BACKEND") or "reference")
                _set_active(backend)
    return backend


def _set_active(backend: Backend) -> None:
    global _ACTIVE
    _ACTIVE = backend


def set_backend(name: str) -> Backend:
    """Switch the process-global backend; returns the new one."""
    backend = _make_backend(name)
    _set_active(backend)
    return backend


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily switch backends (tests, per-phase overrides)."""
    previous = get_backend()
    backend = _make_backend(name)
    _set_active(backend)
    try:
        yield backend
    finally:
        _set_active(previous)


def compute_dtype() -> np.dtype:
    """Dtype for newly created tensors / op intermediates."""
    return get_backend().dtype


def step_begin() -> None:
    """Start-of-step hook (called by ``Optimizer.zero_grad``)."""
    arena = get_backend().arena
    if arena is not None:
        arena.new_step()


def arena_stats() -> Optional[Dict[str, float]]:
    """Arena telemetry for the active backend (``None`` if it has none)."""
    arena = get_backend().arena
    return arena.stats() if arena is not None else None


def describe() -> Dict[str, object]:
    """Active-backend description for run manifests and trace metadata."""
    backend = get_backend()
    info: Dict[str, object] = {
        "name": backend.name, "dtype": backend.dtype.name,
        "fused": backend.fused, "threads": backend.threads}
    stats = arena_stats()
    if stats is not None:
        info["arena"] = stats
    return info


def publish_metrics() -> None:
    """Mirror arena telemetry into obs gauges.

    Called once at the *end* of instrumented work (not per step — the
    arena's byte accounting walks every pool), so run summaries show
    final pool occupancy and hit rate next to the fused-kernel counters.
    No-op without an active run or without an arena.
    """
    from repro import obs
    if not obs.enabled():
        return
    stats = arena_stats()
    if stats is None:
        return
    obs.gauge_set("backend/arena/buffers", float(stats["buffers"]))
    obs.gauge_set("backend/arena/bytes", float(stats["bytes"]))
    obs.gauge_set("backend/arena/hit_rate", float(stats["hit_rate"]))


# ----------------------------------------------------------------------
# Kernel registry
# ----------------------------------------------------------------------
_KERNELS: Dict[str, Dict[str, Callable]] = {}


def register_kernel(name: str, reference: Optional[Callable] = None,
                    fast: Optional[Callable] = None) -> None:
    """Register implementations for a named kernel (merging per variant)."""
    entry = _KERNELS.setdefault(name, {})
    if reference is not None:
        entry["reference"] = reference
    if fast is not None:
        entry["fast"] = fast


def kernel(name: str) -> Callable:
    """Resolve ``name`` for the active backend.

    The fast variant is used only when the active backend asks for fused
    kernels *and* one is registered; everything else falls back to the
    reference implementation, so partially fused backends degrade
    gracefully.
    """
    entry = _KERNELS[name]
    if get_backend().fused:
        fast = entry.get("fast")
        if fast is not None:
            return fast
    return entry["reference"]


def registered_kernels() -> Dict[str, Tuple[str, ...]]:
    """{kernel name: available variants} — introspection for tests/docs."""
    return {name: tuple(sorted(entry)) for name, entry in _KERNELS.items()}


# ----------------------------------------------------------------------
# Shared primitives with per-backend implementations
# ----------------------------------------------------------------------
# (batch, dtype.char) -> (ones, indptr) for the one-hot scatter matrix.
_SCATTER_CACHE: Dict[Tuple[int, str], Tuple[np.ndarray, np.ndarray]] = {}

try:  # raw CSC matmul kernel; absent on exotic scipy builds
    from scipy.sparse import _sparsetools as _sptools
except ImportError:  # pragma: no cover - scipy always ships it today
    _sptools = None


def scatter_add_rows(grad: np.ndarray, index: np.ndarray,
                     shape: Tuple[int, ...]) -> np.ndarray:
    """Adjoint of a row gather: scatter-add ``grad`` rows into ``shape``.

    The reference path is ``np.zeros`` + ``np.add.at`` — bit-identical
    to the original engine but slow (``add.at`` is unbuffered).  The
    fast path expresses the scatter as ``M @ grad`` with ``M`` the
    one-hot (n, batch) selection matrix, run as a single C CSC-matmul
    loop ~10x faster; since ``M``'s columns each hold one entry and
    arrive in order, its CSC arrays are free to build (indptr = arange,
    indices = the gather index) and ``csc_matvecs`` is invoked directly
    to skip matrix-construction validation, which profiles at ~half the
    scatter cost.  Per-cell summation order differs from ``add.at``,
    which is within the fast backend's tolerance policy (float32
    compute already reorders sums) but would break reference
    bit-identity — hence the gate.
    """
    if (get_backend().fused and _sptools is not None
            and grad.ndim == 2 and len(shape) == 2):
        batch = len(index)
        key = (batch, grad.dtype.char)
        cached = _SCATTER_CACHE.get(key)
        if cached is None:
            cached = _SCATTER_CACHE[key] = (
                np.ones(batch, dtype=grad.dtype),
                np.arange(batch + 1, dtype=np.int64))
        ones, indptr = cached
        indices = np.ascontiguousarray(index, dtype=np.int64)
        grad = np.ascontiguousarray(grad)
        out = np.zeros(shape, dtype=grad.dtype)
        _sptools.csc_matvecs(shape[0], batch, shape[1], indptr, indices,
                             ones, grad, out)
        return out
    out = np.zeros(shape, dtype=grad.dtype)
    np.add.at(out, index, grad)
    return out
