"""Functional operation library for :class:`repro.tensor.Tensor`.

Each op implements a forward numpy computation plus a backward closure that
returns one gradient per input.  Numerically delicate ops (``arcosh``,
``norm``, ``sqrt``) clamp their inputs away from singular points, which is
essential for stable training on hyperbolic manifolds.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.tensor import backend as _backend
from repro.tensor.tensor import Tensor, _as_array

# Stays strictly inside arcosh's domain while being far above float64 eps.
_ARCOSH_EPS = 1e-12
# float32 machine epsilon is ~1.19e-7: the float64 clamp would round to
# exactly 1.0 (making the backward 1/sqrt(x^2-1) infinite), so float32
# inputs clamp at 1 + 1e-6 instead.
_ARCOSH_EPS_F32 = 1e-6


def _arcosh_eps(dtype) -> float:
    return _ARCOSH_EPS if dtype == np.float64 else _ARCOSH_EPS_F32


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(_as_array(value))


# ----------------------------------------------------------------------
# Elementwise ops
# ----------------------------------------------------------------------
def exp(x: Tensor) -> Tensor:
    x = _wrap(x)
    data = np.exp(x.data)
    return Tensor._make(data, (x,), lambda g: (g * data,))


def log(x: Tensor) -> Tensor:
    x = _wrap(x)
    a = x.data
    return Tensor._make(np.log(a), (x,), lambda g: (g / a,))


def sqrt(x: Tensor) -> Tensor:
    x = _wrap(x)
    data = np.sqrt(np.maximum(x.data, 0.0))
    safe = np.maximum(data, 1e-15)
    return Tensor._make(data, (x,), lambda g: (g * 0.5 / safe,))


def tanh(x: Tensor) -> Tensor:
    x = _wrap(x)
    data = np.tanh(x.data)
    return Tensor._make(data, (x,), lambda g: (g * (1.0 - data * data),))


def sigmoid(x: Tensor) -> Tensor:
    x = _wrap(x)
    data = 1.0 / (1.0 + np.exp(-x.data))
    return Tensor._make(data, (x,), lambda g: (g * data * (1.0 - data),))


def cosh(x: Tensor) -> Tensor:
    x = _wrap(x)
    data = np.cosh(x.data)
    return Tensor._make(data, (x,), lambda g: (g * np.sinh(x.data),))


def sinh(x: Tensor) -> Tensor:
    x = _wrap(x)
    data = np.sinh(x.data)
    return Tensor._make(data, (x,), lambda g: (g * np.cosh(x.data),))


def arcosh(x: Tensor) -> Tensor:
    """Inverse hyperbolic cosine with the argument clamped to ``>= 1``.

    The derivative ``1/sqrt(x^2 - 1)`` blows up at ``x = 1``; we clamp the
    forward input to ``1 + eps`` which both keeps the forward finite and
    bounds the backward, the standard trick in hyperbolic embedding code.
    """
    x = _wrap(x)
    clamped = np.maximum(x.data, 1.0 + _arcosh_eps(x.data.dtype))
    data = np.arccosh(clamped)
    denom = np.sqrt(clamped * clamped - 1.0)

    def backward(g):
        grad = g / denom
        # Where the input was clamped the function is locally constant in the
        # feasible direction only; pass the (bounded) clamped-gradient through
        # so optimization can still escape the boundary.
        return (grad,)

    return Tensor._make(data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    x = _wrap(x)
    mask = (x.data > 0).astype(x.data.dtype)
    return Tensor._make(x.data * mask, (x,), lambda g: (g * mask,))


def softplus(x: Tensor) -> Tensor:
    x = _wrap(x)
    data = np.logaddexp(0.0, x.data)
    sig = 1.0 / (1.0 + np.exp(-x.data))
    return Tensor._make(data, (x,), lambda g: (g * sig,))


def clamp_min(x: Tensor, minimum: float) -> Tensor:
    """Elementwise ``max(x, minimum)``; gradient is zero where clamped."""
    x = _wrap(x)
    mask = (x.data >= minimum).astype(x.data.dtype)
    data = np.maximum(x.data, minimum)
    return Tensor._make(data, (x,), lambda g: (g * mask,))


def clamp(x: Tensor, minimum: Optional[float] = None,
          maximum: Optional[float] = None) -> Tensor:
    x = _wrap(x)
    lo = -np.inf if minimum is None else minimum
    hi = np.inf if maximum is None else maximum
    mask = ((x.data >= lo) & (x.data <= hi)).astype(x.data.dtype)
    data = np.clip(x.data, lo, hi)
    return Tensor._make(data, (x,), lambda g: (g * mask,))


def maximum(a: Tensor, b) -> Tensor:
    """Elementwise max of two tensors (gradient routes to the larger input)."""
    a = _wrap(a)
    b = _wrap(b)
    data = np.maximum(a.data, b.data)
    mask_a = (a.data >= b.data).astype(a.data.dtype)

    def backward(g):
        return g * mask_a, g * (1.0 - mask_a)

    return Tensor._make(data, (a, b), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b`` (condition is data)."""
    a = _wrap(a)
    b = _wrap(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(g):
        return np.where(cond, g, 0.0), np.where(cond, 0.0, g)

    return Tensor._make(data, (a, b), backward)


# ----------------------------------------------------------------------
# Reductions and linear algebra
# ----------------------------------------------------------------------
def sum(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _wrap(x).sum(axis=axis, keepdims=keepdims)


def mean(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return _wrap(x).mean(axis=axis, keepdims=keepdims)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return _wrap(a) @ _wrap(b)


def dot(a: Tensor, b: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Batched inner product along ``axis``."""
    return (_wrap(a) * _wrap(b)).sum(axis=axis, keepdims=keepdims)


def norm(x: Tensor, axis: int = -1, keepdims: bool = False,
         eps: float = 1e-15) -> Tensor:
    """Euclidean norm along ``axis`` with a safe gradient at zero.

    ``d||x||/dx = x / ||x||`` is undefined at the origin; we divide by
    ``max(||x||, eps)`` which yields a zero (not NaN) gradient there.
    """
    x = _wrap(x)
    sq = np.sum(x.data * x.data, axis=axis, keepdims=True)
    nrm = np.sqrt(sq)
    safe = np.maximum(nrm, eps)
    data = nrm if keepdims else np.squeeze(nrm, axis=axis)

    def backward(g):
        g = np.asarray(g)
        if not keepdims:
            g = np.expand_dims(g, axis)
        return (g * x.data / safe,)

    return Tensor._make(data, (x,), backward)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` reduction."""
    x = _wrap(x)
    m = np.max(x.data, axis=axis, keepdims=True)
    shifted = np.exp(x.data - m)
    total = np.sum(shifted, axis=axis, keepdims=True)
    data = m + np.log(total)
    softmax = shifted / total
    if not keepdims:
        data = np.squeeze(data, axis=axis)

    def backward(g):
        g = np.asarray(g)
        if not keepdims:
            g = np.expand_dims(g, axis)
        return (g * softmax,)

    return Tensor._make(data, (x,), backward)


# ----------------------------------------------------------------------
# Indexing / composition
# ----------------------------------------------------------------------
def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]``; the adjoint scatter-adds duplicates.

    This is the embedding-lookup primitive: ``index`` may repeat ids and
    gradients for repeated rows accumulate, exactly as ``nn.Embedding``.
    """
    x = _wrap(x)
    idx = np.asarray(index, dtype=np.int64)
    # np.take == x.data[idx] bit-for-bit but skips the fancy-indexing
    # dispatch overhead on the embedding-lookup hot path.
    data = np.take(x.data, idx, axis=0)
    shape = x.data.shape

    def backward(g):
        # Reference: zeros + unbuffered np.add.at (bit-identical oracle).
        # Fast backend: one linearized np.bincount (see backend module).
        return (_backend.scatter_add_rows(g, idx, shape),)

    return Tensor._make(data, (x,), backward)


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        pieces = []
        for i in range(len(tensors)):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(g[tuple(sl)])
        return tuple(pieces)

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tensors, backward)
