"""Minimal reverse-mode automatic differentiation over numpy.

This subpackage replaces the PyTorch substrate used by the original paper.
It provides a :class:`Tensor` wrapping a ``numpy.ndarray`` with a dynamic
computation graph, a functional op library (:mod:`repro.tensor.ops`), and a
sparse matrix-multiplication op used by the graph convolution layers
(:mod:`repro.tensor.sparse`).

Only the operations the recommendation models need are implemented, but each
is implemented fully (forward + backward, with broadcasting support) and is
unit- and property-tested against numerical differentiation.

Execution is governed by a process-global backend
(:mod:`repro.tensor.backend`): ``reference`` is the original float64
engine and the bit-identity oracle; ``fast`` (``REPRO_BACKEND=fast``)
switches intermediates to float32 and routes geometry hot spots through
fused forward+backward kernels (:mod:`repro.tensor.fused`).
"""

from repro.tensor.backend import (
    arena_stats,
    available_backends,
    compute_dtype,
    get_backend,
    kernel,
    register_kernel,
    set_backend,
    use_backend,
)
from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.ops import (
    arcosh,
    cat,
    clamp,
    clamp_min,
    cosh,
    dot,
    exp,
    gather_rows,
    log,
    logsumexp,
    matmul,
    maximum,
    mean,
    norm,
    relu,
    sigmoid,
    sinh,
    softplus,
    sqrt,
    stack,
    sum as tsum,
    tanh,
    where,
)
from repro.tensor.sparse import sparse_matmul

# Importing registers the fast-backend fused kernels with the registry.
import repro.tensor.fused  # noqa: E402,F401  (import for side effect)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "arena_stats",
    "available_backends",
    "compute_dtype",
    "get_backend",
    "kernel",
    "register_kernel",
    "set_backend",
    "use_backend",
    "arcosh",
    "cat",
    "clamp",
    "clamp_min",
    "cosh",
    "dot",
    "exp",
    "gather_rows",
    "log",
    "logsumexp",
    "matmul",
    "maximum",
    "mean",
    "norm",
    "relu",
    "sigmoid",
    "sinh",
    "softplus",
    "sqrt",
    "stack",
    "tsum",
    "tanh",
    "where",
    "sparse_matmul",
]
