"""Temporal train/valid/test splitting (the paper's evaluation protocol).

For each user, interactions are ordered by timestamp and split 60/20/20
into train/valid/test.  Users with fewer than ``min_interactions`` events
contribute all their events to training (they cannot be evaluated).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset, Split


def temporal_split(dataset: InteractionDataset, train_frac: float = 0.6,
                   valid_frac: float = 0.2,
                   min_interactions: int = 5) -> Split:
    """Split interactions per user by timestamp.

    Parameters
    ----------
    dataset:
        The dataset to split.
    train_frac, valid_frac:
        Fractions for train and validation; test gets the remainder.
        Must satisfy ``0 < train_frac`` and ``train_frac + valid_frac < 1``.
    min_interactions:
        Users below this interaction count go entirely to train.
    """
    if not 0.0 < train_frac < 1.0:
        raise ValueError("train_frac must be in (0, 1)")
    if train_frac + valid_frac >= 1.0:
        raise ValueError("train_frac + valid_frac must be < 1")

    train_idx, valid_idx, test_idx = [], [], []
    order = np.lexsort((dataset.timestamps, dataset.user_ids))
    users_sorted = dataset.user_ids[order]
    boundaries = np.searchsorted(users_sorted,
                                 np.arange(dataset.n_users + 1))
    for u in range(dataset.n_users):
        lo, hi = boundaries[u], boundaries[u + 1]
        user_events = order[lo:hi]
        n = len(user_events)
        if n == 0:
            continue
        if n < min_interactions:
            train_idx.append(user_events)
            continue
        n_train = max(1, int(round(n * train_frac)))
        n_valid = max(1, int(round(n * valid_frac)))
        if n_train + n_valid >= n:
            n_valid = max(1, n - n_train - 1)
            if n_train + n_valid >= n:
                n_train = n - 2
                n_valid = 1
        train_idx.append(user_events[:n_train])
        valid_idx.append(user_events[n_train:n_train + n_valid])
        test_idx.append(user_events[n_train + n_valid:])

    def _concat(parts):
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    return Split(train=_concat(train_idx), valid=_concat(valid_idx),
                 test=_concat(test_idx))
