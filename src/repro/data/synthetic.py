"""Synthetic dataset generator with planted logical structure.

The generator builds, in order:

1. a tag **taxonomy** (forest of given depth/branching, default depth 4 to
   match the paper's η);
2. **item-tag memberships**: every item belongs to one primary leaf tag and
   inherits that leaf's ancestors with probability ``ancestor_prob`` (so
   items average 2-3 memberships, matching Table I's ratios); a fraction of
   sibling leaf pairs is made to **overlap** (shared items) — these are the
   pairs the structural exclusion rule mislabels, i.e. the exact noise
   LogiRec++'s relation mining is designed to repair;
3. **users** with two latent traits the paper's weighting mechanisms key on:
   *granularity* (the taxonomy level of the user's focus node — deeper means
   finer preferences) and *consistency* (the probability an interaction
   stays inside the focus subtree rather than jumping to a random leaf);
4. **interactions** with popularity bias within each chosen leaf and
   per-user sequential timestamps.

Because the traits are planted, downstream analyses (Fig. 5, Table V) have
ground truth to validate against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.taxonomy import Taxonomy, extract_relations


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic generator.

    The defaults produce a CD-like dataset at bench scale.
    """

    name: str = "synthetic"
    n_users: int = 200
    n_items: int = 150
    depth: int = 4              # taxonomy levels (paper's η)
    branching: int = 3          # children per internal tag
    n_roots: int = 2            # top-level genres
    ancestor_prob: float = 0.7  # chance an item inherits each ancestor tag
    extra_tag_prob: float = 0.1  # chance of one extra random leaf tag
    overlap_pair_frac: float = 0.2  # sibling leaf pairs made to overlap
    overlap_item_frac: float = 0.3  # items of such pairs carrying both tags
    mean_interactions: float = 22.0  # per-user mean (lognormal)
    interaction_spread: float = 0.35  # lognormal sigma of per-user counts
    popularity_exponent: float = 0.5  # within-leaf popularity bias
    consistency_beta: tuple = (6.0, 1.2)  # Beta(a,b) over user consistency
    min_interactions: int = 6
    seed: int = 0

    def taxonomy(self) -> Taxonomy:
        return Taxonomy.balanced(self.depth, self.branching, self.n_roots)


def _assign_item_tags(config: SyntheticConfig, taxonomy: Taxonomy,
                      rng: np.random.Generator) -> sp.csr_matrix:
    """Build the item-tag matrix Q with planted sibling overlap."""
    leaves = taxonomy.leaves
    n_items, n_tags = config.n_items, taxonomy.n_tags
    primary = rng.choice(leaves, size=n_items)

    rows: List[int] = []
    cols: List[int] = []
    for item in range(n_items):
        leaf = int(primary[item])
        rows.append(item)
        cols.append(leaf)
        for anc in taxonomy.ancestors(leaf):
            if rng.random() < config.ancestor_prob:
                rows.append(item)
                cols.append(anc)
        if rng.random() < config.extra_tag_prob:
            rows.append(item)
            cols.append(int(rng.choice(leaves)))

    # Plant overlapping sibling pairs: items of one leaf also get its
    # sibling's tag.  The structural rule will still call the pair
    # "exclusive" (no common child tag), which is the inaccuracy the
    # paper's relation mining repairs.
    sibling_pairs = []
    seen = set()
    for leaf in leaves:
        for sib in taxonomy.siblings(leaf):
            if taxonomy.is_leaf(sib):
                key = (min(leaf, sib), max(leaf, sib))
                if key not in seen:
                    seen.add(key)
                    sibling_pairs.append(key)
    rng.shuffle(sibling_pairs)
    n_overlap = int(len(sibling_pairs) * config.overlap_pair_frac)
    overlapping = sibling_pairs[:n_overlap]
    for a, b in overlapping:
        items_a = np.where(primary == a)[0]
        for item in items_a:
            if rng.random() < config.overlap_item_frac:
                rows.append(int(item))
                cols.append(b)

    data = np.ones(len(rows))
    q = sp.coo_matrix((data, (rows, cols)), shape=(n_items, n_tags)).tocsr()
    q.data[:] = 1.0
    return q, primary, overlapping


def _user_traits(config: SyntheticConfig, taxonomy: Taxonomy,
                 rng: np.random.Generator):
    """Sample each user's focus node, granularity level, and consistency."""
    internal_levels = np.arange(2, taxonomy.depth + 1)
    # Deeper focus = finer granularity; skew toward mid levels.
    level_probs = internal_levels.astype(float)
    level_probs = level_probs / level_probs.sum()
    focus_levels = rng.choice(internal_levels, size=config.n_users,
                              p=level_probs)
    focus_nodes = np.zeros(config.n_users, dtype=np.int64)
    for u in range(config.n_users):
        candidates = taxonomy.tags_at_level(int(focus_levels[u]))
        focus_nodes[u] = int(rng.choice(candidates))
    a, b = config.consistency_beta
    consistency = rng.beta(a, b, size=config.n_users)
    return focus_nodes, focus_levels, consistency


def generate_dataset(config: SyntheticConfig,
                     rng: Optional[np.random.Generator] = None
                     ) -> InteractionDataset:
    """Generate an :class:`InteractionDataset` from a config.

    The returned dataset carries extra attributes used by analysis code:
    ``user_focus``, ``user_focus_level``, ``user_consistency`` (planted
    traits) and ``overlapping_pairs`` (the mislabelled-exclusive tag pairs).
    """
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    taxonomy = config.taxonomy()
    q, primary, overlapping = _assign_item_tags(config, taxonomy, rng)
    focus_nodes, focus_levels, consistency = _user_traits(config, taxonomy,
                                                          rng)
    leaves = taxonomy.leaves
    items_by_leaf = {leaf: np.where(primary == leaf)[0] for leaf in leaves}
    # Within-leaf popularity: Zipf-like weights per item.
    popularity = {}
    for leaf, items in items_by_leaf.items():
        if len(items) == 0:
            continue
        ranks = np.arange(1, len(items) + 1, dtype=float)
        weights = ranks ** (-config.popularity_exponent)
        popularity[leaf] = weights / weights.sum()

    user_ids: List[int] = []
    item_ids: List[int] = []
    timestamps: List[int] = []
    nonempty_leaves = [l for l in leaves if len(items_by_leaf[l])]

    for u in range(config.n_users):
        count = int(np.round(rng.lognormal(
            np.log(config.mean_interactions), config.interaction_spread)))
        count = max(config.min_interactions, count)
        focus_leaves = [l for l in taxonomy.subtree_leaves(int(focus_nodes[u]))
                        if len(items_by_leaf[l])]
        if not focus_leaves:
            focus_leaves = nonempty_leaves
        chosen_items = set()
        t = 0
        attempts = 0
        while len(chosen_items) < count and attempts < count * 10:
            attempts += 1
            if rng.random() < consistency[u]:
                leaf = int(rng.choice(focus_leaves))
            else:
                leaf = int(rng.choice(nonempty_leaves))
            items = items_by_leaf[leaf]
            item = int(rng.choice(items, p=popularity[leaf]))
            if item in chosen_items:
                continue
            chosen_items.add(item)
            user_ids.append(u)
            item_ids.append(item)
            timestamps.append(t)
            t += 1

    dataset = InteractionDataset(
        user_ids=np.asarray(user_ids),
        item_ids=np.asarray(item_ids),
        timestamps=np.asarray(timestamps),
        n_users=config.n_users,
        n_items=config.n_items,
        item_tags=q,
        taxonomy=taxonomy,
        relations=extract_relations(taxonomy, q),
        name=config.name,
    )
    # Planted ground truth for analyses (Fig. 5, Table V, case studies).
    dataset.user_focus = focus_nodes
    dataset.user_focus_level = focus_levels
    dataset.user_consistency = consistency
    dataset.overlapping_pairs = overlapping
    return dataset
