"""Negative sampling for triplet losses.

Every reproduced model trains on (user, positive item, negative item)
triplets — BPR, CML-style hinge, and the paper's LMNN objective (Eq. 9)
all share this shape.  :class:`TripletSampler` draws vectorized batches
with rejection sampling against each user's training-positive set.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro import obs
from repro.data.dataset import InteractionDataset


class TripletSampler:
    """Samples (user, pos_item, neg_item) triplets from training data.

    Parameters
    ----------
    dataset:
        The full dataset.
    train_indices:
        Interaction indices forming the training set.
    rng:
        Numpy random generator (seeded by the caller for reproducibility).
    n_negatives:
        Negatives drawn per positive (Eq. 9 sums over non-interacted items;
        in practice a small sample approximates the sum, as in the
        reference implementations).
    """

    def __init__(self, dataset: InteractionDataset,
                 train_indices: np.ndarray,
                 rng: Optional[np.random.Generator] = None,
                 n_negatives: int = 1):
        self.dataset = dataset
        self.rng = rng if rng is not None else np.random.default_rng()
        self.n_negatives = int(n_negatives)
        self.users = dataset.user_ids[train_indices]
        self.items = dataset.item_ids[train_indices]
        self.n_items = dataset.n_items
        # Per-user positive sets as a CSR row lookup for O(log) membership.
        matrix = dataset.interaction_matrix(train_indices)
        self._indptr = matrix.indptr
        self._indices = matrix.indices
        # Flat sorted (user, item) keys: rows ascend and columns ascend
        # within each row, so ``user * n_items + item`` is globally sorted
        # and one batched searchsorted answers every membership query.
        row_of_nnz = np.repeat(np.arange(dataset.n_users, dtype=np.int64),
                               np.diff(self._indptr))
        self._keys = row_of_nnz * self.n_items + self._indices

    def __len__(self) -> int:
        return len(self.users)

    def _is_positive(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorized membership test of (user, item) in the train matrix."""
        if self._keys.size == 0:
            return np.zeros(len(users), dtype=bool)
        queries = (np.asarray(users, dtype=np.int64) * self.n_items
                   + np.asarray(items, dtype=np.int64))
        pos = np.searchsorted(self._keys, queries)
        found = pos < self._keys.size
        return found & (self._keys[np.minimum(pos, self._keys.size - 1)]
                        == queries)

    def _reference_is_positive(self, users: np.ndarray,
                               items: np.ndarray) -> np.ndarray:
        """Pre-vectorization per-triplet loop, kept as the equivalence
        oracle for the batched ``_is_positive``."""
        out = np.zeros(len(users), dtype=bool)
        for k, (u, i) in enumerate(zip(users, items)):
            lo, hi = self._indptr[u], self._indptr[u + 1]
            pos = np.searchsorted(self._indices[lo:hi], i)
            out[k] = pos < (hi - lo) and self._indices[lo + pos] == i
        return out

    def sample_negatives(self, users: np.ndarray) -> np.ndarray:
        """Draw one non-interacted item per user via rejection sampling.

        With telemetry active, retry pressure is exported as counters
        (``sampler/draws``, ``sampler/rejection_rounds``,
        ``sampler/resampled``, ``sampler/exhausted``) — rising rejection
        rates are the early signal that a dataset is too dense for
        uniform negative sampling.
        """
        neg = self.rng.integers(0, self.n_items, size=len(users))
        rounds = 0
        resampled = 0
        n_bad = 0
        for _ in range(32):  # expected <2 rounds at realistic densities
            bad = self._is_positive(users, neg)
            n_bad = int(bad.sum())
            if n_bad == 0:
                break
            rounds += 1
            resampled += n_bad
            neg[bad] = self.rng.integers(0, self.n_items, size=n_bad)
        if obs.enabled():
            obs.count("sampler/draws", len(users))
            obs.count("sampler/rejection_rounds", rounds)
            obs.count("sampler/resampled", resampled)
            if n_bad:
                obs.count("sampler/exhausted", n_bad)
        return neg

    def epoch(self, batch_size: int,
              shuffle: bool = True
              ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield (users, pos_items, neg_items) batches covering all positives.

        With ``n_negatives > 1`` the positives are repeated accordingly.
        """
        order = np.arange(len(self.users))
        if shuffle:
            self.rng.shuffle(order)
        users = np.repeat(self.users[order], self.n_negatives)
        pos = np.repeat(self.items[order], self.n_negatives)
        for start in range(0, len(users), batch_size):
            u = users[start:start + batch_size]
            p = pos[start:start + batch_size]
            n = self.sample_negatives(u)
            yield u, p, n
