"""Core dataset containers.

:class:`InteractionDataset` bundles implicit-feedback interactions (user,
item, timestamp), the item-tag matrix Q, the tag taxonomy, and the extracted
logical relations.  :class:`Split` holds the temporal train/valid/test
partition of interaction indices (the paper's 60/20/20 per-user protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.taxonomy import LogicalRelations, Taxonomy, extract_relations


class StreamError(ValueError):
    """A streaming batch violated an ingest invariant.

    Raised by :meth:`InteractionDataset.append_interactions` (and the
    online journal/ingest layer built on it) *before* any state is
    mutated, so a rejected batch leaves the dataset untouched instead of
    silently corrupting the CSR seen masks.
    """


@dataclass
class Split:
    """Index arrays into an :class:`InteractionDataset`'s interaction list."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray

    def __post_init__(self):
        self.train = np.asarray(self.train, dtype=np.int64)
        self.valid = np.asarray(self.valid, dtype=np.int64)
        self.test = np.asarray(self.test, dtype=np.int64)


class InteractionDataset:
    """Implicit-feedback interactions with tag side information.

    Parameters
    ----------
    user_ids, item_ids, timestamps:
        Parallel arrays, one entry per interaction.
    n_users, n_items:
        Universe sizes (ids are dense in ``[0, n)``).
    item_tags:
        Sparse ``(n_items, n_tags)`` binary matrix Q.
    taxonomy:
        The tag forest.
    relations:
        Pre-extracted logical relations; extracted on demand if omitted.
    name:
        Optional dataset name for reporting.
    """

    def __init__(self, user_ids: np.ndarray, item_ids: np.ndarray,
                 timestamps: np.ndarray, n_users: int, n_items: int,
                 item_tags: sp.spmatrix, taxonomy: Taxonomy,
                 relations: Optional[LogicalRelations] = None,
                 name: str = "dataset"):
        self.user_ids = np.asarray(user_ids, dtype=np.int64)
        self.item_ids = np.asarray(item_ids, dtype=np.int64)
        self.timestamps = np.asarray(timestamps, dtype=np.int64)
        if not (len(self.user_ids) == len(self.item_ids)
                == len(self.timestamps)):
            raise ValueError("interaction arrays must have equal length")
        if len(self.user_ids) and self.user_ids.max() >= n_users:
            raise ValueError("user id out of range")
        if len(self.item_ids) and self.item_ids.max() >= n_items:
            raise ValueError("item id out of range")
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self.item_tags = sp.csr_matrix(item_tags)
        if self.item_tags.shape[0] != n_items:
            raise ValueError("item_tags row count must equal n_items")
        self.taxonomy = taxonomy
        self.relations = relations if relations is not None else (
            extract_relations(taxonomy, self.item_tags))
        self.name = name

    # ------------------------------------------------------------------
    @property
    def n_interactions(self) -> int:
        return len(self.user_ids)

    @property
    def n_tags(self) -> int:
        return self.taxonomy.n_tags

    @property
    def density(self) -> float:
        """Interaction density in percent, as reported in Table I."""
        return 100.0 * self.n_interactions / (self.n_users * self.n_items)

    def items_of_user(self, indices: Optional[np.ndarray] = None
                      ) -> Dict[int, np.ndarray]:
        """Map each user to the item ids of the selected interactions."""
        if indices is None:
            users, items = self.user_ids, self.item_ids
        else:
            users, items = self.user_ids[indices], self.item_ids[indices]
        order = np.argsort(users, kind="stable")
        users, items = users[order], items[order]
        boundaries = np.searchsorted(users, np.arange(self.n_users + 1))
        return {u: items[boundaries[u]:boundaries[u + 1]]
                for u in range(self.n_users)
                if boundaries[u + 1] > boundaries[u]}

    def interaction_matrix(self, indices: Optional[np.ndarray] = None
                           ) -> sp.csr_matrix:
        """Binary user-item matrix over the selected interactions."""
        if indices is None:
            users, items = self.user_ids, self.item_ids
        else:
            users, items = self.user_ids[indices], self.item_ids[indices]
        data = np.ones(len(users))
        mat = sp.coo_matrix((data, (users, items)),
                            shape=(self.n_users, self.n_items))
        mat = mat.tocsr()
        mat.data[:] = 1.0  # deduplicate repeated interactions
        return mat

    def tags_of_items(self, items: np.ndarray) -> List[np.ndarray]:
        """Tag id arrays for each item in ``items``."""
        csr = self.item_tags
        return [csr.indices[csr.indptr[i]:csr.indptr[i + 1]]
                for i in np.asarray(items)]

    def user_tag_lists(self, indices: Optional[np.ndarray] = None
                       ) -> Dict[int, np.ndarray]:
        """The multiset T_u of tags each user interacted with (Eq. 11).

        Tags are counted once per interaction per carrying item, preserving
        multiplicity, which Eq. 11's frequency term requires.
        """
        per_user_items = self.items_of_user(indices)
        out: Dict[int, np.ndarray] = {}
        for u, items in per_user_items.items():
            tag_arrays = self.tags_of_items(items)
            if tag_arrays:
                concat = np.concatenate(tag_arrays) if any(
                    len(a) for a in tag_arrays) else np.zeros(0, np.int64)
            else:
                concat = np.zeros(0, dtype=np.int64)
            out[u] = concat.astype(np.int64)
        return out

    # ------------------------------------------------------------------
    # Streaming ingest (online learning)
    # ------------------------------------------------------------------
    def seen_pairs(self) -> np.ndarray:
        """Flat ``u * n_items + i`` keys of all current interactions."""
        return (self.user_ids * np.int64(self.n_items)
                + self.item_ids).astype(np.int64)

    def append_interactions(self, user_ids, item_ids, timestamps, *,
                            n_users: Optional[int] = None,
                            n_items: Optional[int] = None,
                            item_tags: Optional[sp.spmatrix] = None
                            ) -> dict:
        """Fold a batch of new interactions into the dataset in place.

        The universe may only grow: ``n_users`` / ``n_items`` (defaulting
        to the current sizes, auto-grown to cover the batch) must be at
        least the current counts.  Every invariant is checked **before**
        any mutation — a rejected batch raises :class:`StreamError` and
        leaves the dataset exactly as it was:

        * parallel arrays of equal length, ids non-negative and inside
          the (grown) universe;
        * timestamps nondecreasing within the batch and not before the
          newest existing interaction (the temporal-split contract);
        * no duplicate ``(user, item)`` pair within the batch or against
          the existing interactions (duplicates would double-count in the
          CSR seen masks downstream).

        ``item_tags`` replaces Q for a grown item universe (shape
        ``(new_n_items, n_tags)``); when omitted, new items get empty tag
        rows.  Returns a summary dict (counts of new users/items/events).
        """
        new_u = np.asarray(user_ids, dtype=np.int64).ravel()
        new_i = np.asarray(item_ids, dtype=np.int64).ravel()
        new_t = np.asarray(timestamps, dtype=np.int64).ravel()
        if not (len(new_u) == len(new_i) == len(new_t)):
            raise StreamError("batch arrays must have equal length")
        if len(new_u) and (new_u.min() < 0 or new_i.min() < 0):
            raise StreamError("negative user/item id in batch")

        grown_users = int(n_users) if n_users is not None else max(
            self.n_users, int(new_u.max()) + 1 if len(new_u) else 0)
        grown_items = int(n_items) if n_items is not None else max(
            self.n_items, int(new_i.max()) + 1 if len(new_i) else 0)
        if grown_users < self.n_users or grown_items < self.n_items:
            raise StreamError(
                f"universe may only grow: ({self.n_users}, {self.n_items})"
                f" -> ({grown_users}, {grown_items})")
        if len(new_u) and int(new_u.max()) >= grown_users:
            raise StreamError("user id out of range for grown universe")
        if len(new_i) and int(new_i.max()) >= grown_items:
            raise StreamError("item id out of range for grown universe")

        if len(new_t):
            if np.any(np.diff(new_t) < 0):
                raise StreamError("out-of-order timestamps in batch")
            if len(self.timestamps) and new_t[0] < self.timestamps.max():
                raise StreamError(
                    "batch timestamps precede the newest existing "
                    "interaction (temporal ordering violated)")

        # Duplicate (user, item) pairs — within the batch and against
        # the existing interactions — flat-keyed on the grown universe.
        keys = new_u * np.int64(grown_items) + new_i
        if len(keys) != len(np.unique(keys)):
            raise StreamError("duplicate (user, item) pair within batch")
        if len(self.user_ids):
            old_keys = (self.user_ids * np.int64(grown_items)
                        + self.item_ids)
            if np.any(np.isin(keys, old_keys)):
                raise StreamError(
                    "duplicate (user, item) pair against existing "
                    "interactions")

        if item_tags is not None:
            q = sp.csr_matrix(item_tags)
            if q.shape[0] != grown_items:
                raise StreamError("item_tags row count must equal the "
                                  "grown n_items")
        elif grown_items > self.n_items:
            pad = sp.csr_matrix(
                (grown_items - self.n_items, self.item_tags.shape[1]))
            q = sp.vstack([self.item_tags, pad]).tocsr()
        else:
            q = None  # unchanged

        # All checks passed — mutate atomically.
        n_new_users = grown_users - self.n_users
        n_new_items = grown_items - self.n_items
        self.user_ids = np.concatenate([self.user_ids, new_u])
        self.item_ids = np.concatenate([self.item_ids, new_i])
        self.timestamps = np.concatenate([self.timestamps, new_t])
        self.n_users = grown_users
        self.n_items = grown_items
        if q is not None:
            self.item_tags = q
            if item_tags is not None:
                # Tag memberships changed: re-extract logical relations.
                self.relations = extract_relations(self.taxonomy,
                                                   self.item_tags)
        return {"n_appended": int(len(new_u)),
                "n_new_users": int(n_new_users),
                "n_new_items": int(n_new_items),
                "n_users": self.n_users, "n_items": self.n_items,
                "n_interactions": self.n_interactions}

    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        """Dataset statistics in the shape of the paper's Table I."""
        counts = self.relations.counts
        return {
            "name": self.name,
            "n_users": self.n_users,
            "n_items": self.n_items,
            "n_interactions": self.n_interactions,
            "density_pct": round(self.density, 4),
            "n_tags": self.n_tags,
            "n_membership": counts["n_membership"],
            "n_hierarchy": counts["n_hierarchy"],
            "n_exclusion": counts["n_exclusion"],
        }

    def __repr__(self) -> str:
        return (f"InteractionDataset(name={self.name!r}, "
                f"users={self.n_users}, items={self.n_items}, "
                f"interactions={self.n_interactions}, tags={self.n_tags})")
