"""Core dataset containers.

:class:`InteractionDataset` bundles implicit-feedback interactions (user,
item, timestamp), the item-tag matrix Q, the tag taxonomy, and the extracted
logical relations.  :class:`Split` holds the temporal train/valid/test
partition of interaction indices (the paper's 60/20/20 per-user protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.taxonomy import LogicalRelations, Taxonomy, extract_relations


@dataclass
class Split:
    """Index arrays into an :class:`InteractionDataset`'s interaction list."""

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray

    def __post_init__(self):
        self.train = np.asarray(self.train, dtype=np.int64)
        self.valid = np.asarray(self.valid, dtype=np.int64)
        self.test = np.asarray(self.test, dtype=np.int64)


class InteractionDataset:
    """Implicit-feedback interactions with tag side information.

    Parameters
    ----------
    user_ids, item_ids, timestamps:
        Parallel arrays, one entry per interaction.
    n_users, n_items:
        Universe sizes (ids are dense in ``[0, n)``).
    item_tags:
        Sparse ``(n_items, n_tags)`` binary matrix Q.
    taxonomy:
        The tag forest.
    relations:
        Pre-extracted logical relations; extracted on demand if omitted.
    name:
        Optional dataset name for reporting.
    """

    def __init__(self, user_ids: np.ndarray, item_ids: np.ndarray,
                 timestamps: np.ndarray, n_users: int, n_items: int,
                 item_tags: sp.spmatrix, taxonomy: Taxonomy,
                 relations: Optional[LogicalRelations] = None,
                 name: str = "dataset"):
        self.user_ids = np.asarray(user_ids, dtype=np.int64)
        self.item_ids = np.asarray(item_ids, dtype=np.int64)
        self.timestamps = np.asarray(timestamps, dtype=np.int64)
        if not (len(self.user_ids) == len(self.item_ids)
                == len(self.timestamps)):
            raise ValueError("interaction arrays must have equal length")
        if len(self.user_ids) and self.user_ids.max() >= n_users:
            raise ValueError("user id out of range")
        if len(self.item_ids) and self.item_ids.max() >= n_items:
            raise ValueError("item id out of range")
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self.item_tags = sp.csr_matrix(item_tags)
        if self.item_tags.shape[0] != n_items:
            raise ValueError("item_tags row count must equal n_items")
        self.taxonomy = taxonomy
        self.relations = relations if relations is not None else (
            extract_relations(taxonomy, self.item_tags))
        self.name = name

    # ------------------------------------------------------------------
    @property
    def n_interactions(self) -> int:
        return len(self.user_ids)

    @property
    def n_tags(self) -> int:
        return self.taxonomy.n_tags

    @property
    def density(self) -> float:
        """Interaction density in percent, as reported in Table I."""
        return 100.0 * self.n_interactions / (self.n_users * self.n_items)

    def items_of_user(self, indices: Optional[np.ndarray] = None
                      ) -> Dict[int, np.ndarray]:
        """Map each user to the item ids of the selected interactions."""
        if indices is None:
            users, items = self.user_ids, self.item_ids
        else:
            users, items = self.user_ids[indices], self.item_ids[indices]
        order = np.argsort(users, kind="stable")
        users, items = users[order], items[order]
        boundaries = np.searchsorted(users, np.arange(self.n_users + 1))
        return {u: items[boundaries[u]:boundaries[u + 1]]
                for u in range(self.n_users)
                if boundaries[u + 1] > boundaries[u]}

    def interaction_matrix(self, indices: Optional[np.ndarray] = None
                           ) -> sp.csr_matrix:
        """Binary user-item matrix over the selected interactions."""
        if indices is None:
            users, items = self.user_ids, self.item_ids
        else:
            users, items = self.user_ids[indices], self.item_ids[indices]
        data = np.ones(len(users))
        mat = sp.coo_matrix((data, (users, items)),
                            shape=(self.n_users, self.n_items))
        mat = mat.tocsr()
        mat.data[:] = 1.0  # deduplicate repeated interactions
        return mat

    def tags_of_items(self, items: np.ndarray) -> List[np.ndarray]:
        """Tag id arrays for each item in ``items``."""
        csr = self.item_tags
        return [csr.indices[csr.indptr[i]:csr.indptr[i + 1]]
                for i in np.asarray(items)]

    def user_tag_lists(self, indices: Optional[np.ndarray] = None
                       ) -> Dict[int, np.ndarray]:
        """The multiset T_u of tags each user interacted with (Eq. 11).

        Tags are counted once per interaction per carrying item, preserving
        multiplicity, which Eq. 11's frequency term requires.
        """
        per_user_items = self.items_of_user(indices)
        out: Dict[int, np.ndarray] = {}
        for u, items in per_user_items.items():
            tag_arrays = self.tags_of_items(items)
            if tag_arrays:
                concat = np.concatenate(tag_arrays) if any(
                    len(a) for a in tag_arrays) else np.zeros(0, np.int64)
            else:
                concat = np.zeros(0, dtype=np.int64)
            out[u] = concat.astype(np.int64)
        return out

    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        """Dataset statistics in the shape of the paper's Table I."""
        counts = self.relations.counts
        return {
            "name": self.name,
            "n_users": self.n_users,
            "n_items": self.n_items,
            "n_interactions": self.n_interactions,
            "density_pct": round(self.density, 4),
            "n_tags": self.n_tags,
            "n_membership": counts["n_membership"],
            "n_hierarchy": counts["n_hierarchy"],
            "n_exclusion": counts["n_exclusion"],
        }

    def __repr__(self) -> str:
        return (f"InteractionDataset(name={self.name!r}, "
                f"users={self.n_users}, items={self.n_items}, "
                f"interactions={self.n_interactions}, tags={self.n_tags})")
