"""Named dataset configurations mirroring the paper's four benchmarks.

Table I of the paper reports (users, items, interactions, density, tags,
membership/hierarchy/exclusion counts) for Ciao, Amazon CD, Amazon
Clothing, and Amazon Book.  The configs below reproduce the *relative*
structure at bench scale:

* **ciao** — smallest and densest, very few tags (28 in the paper);
* **cd** — mid-size, moderate tag count, deep taxonomy;
* **clothing** — most tags and by far the most exclusions (tag-rich,
  sparse interactions) — where the paper's gains are largest;
* **book** — largest interaction volume, sparse.

Absolute sizes are scaled so a full 15-model comparison trains in seconds;
``scale`` multiplies user/item counts for larger runs.
"""

from __future__ import annotations

from typing import Dict

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import SyntheticConfig, generate_dataset

DATASET_CONFIGS: Dict[str, SyntheticConfig] = {
    # Density ordering mirrors Table I: ciao >> cd > book > clothing;
    # tag-richness ordering: clothing >> cd ~ book >> ciao.
    "ciao": SyntheticConfig(
        name="ciao",
        n_users=140,
        n_items=260,
        depth=3,
        branching=4,
        n_roots=1,
        mean_interactions=12.0,
        overlap_pair_frac=0.15,
        seed=101,
    ),
    "cd": SyntheticConfig(
        name="cd",
        n_users=250,
        n_items=400,
        depth=4,
        branching=3,
        n_roots=2,
        mean_interactions=14.0,
        overlap_pair_frac=0.2,
        seed=102,
    ),
    "clothing": SyntheticConfig(
        name="clothing",
        n_users=280,
        n_items=360,
        depth=4,
        branching=4,
        n_roots=2,
        mean_interactions=10.0,
        overlap_pair_frac=0.25,
        seed=103,
    ),
    "book": SyntheticConfig(
        name="book",
        n_users=320,
        n_items=500,
        depth=4,
        branching=3,
        n_roots=2,
        mean_interactions=15.0,
        overlap_pair_frac=0.2,
        seed=104,
    ),
}


def load_dataset(name: str, scale: float = 1.0,
                 seed: int | None = None) -> InteractionDataset:
    """Generate the named dataset, optionally rescaled.

    Parameters
    ----------
    name:
        One of ``ciao``, ``cd``, ``clothing``, ``book``.
    scale:
        Multiplies user and item counts (taxonomy shape unchanged).
    seed:
        Overrides the config's seed (for multi-seed runs).
    """
    if name not in DATASET_CONFIGS:
        raise KeyError(f"unknown dataset {name!r}; "
                       f"available: {sorted(DATASET_CONFIGS)}")
    base = DATASET_CONFIGS[name]
    config = SyntheticConfig(**{**base.__dict__})
    if scale != 1.0:
        config.n_users = max(20, int(base.n_users * scale))
        config.n_items = max(20, int(base.n_items * scale))
    if seed is not None:
        config.seed = seed
    return generate_dataset(config)


def dataset_statistics(names=None, scale: float = 1.0) -> list:
    """Table-I style statistics rows for the named datasets."""
    names = names if names is not None else list(DATASET_CONFIGS)
    return [load_dataset(n, scale=scale).statistics() for n in names]
