"""Datasets, synthetic generation, temporal splits, and negative sampling.

The paper evaluates on Ciao and three Amazon datasets, none of which can be
downloaded in this offline environment.  :mod:`repro.data.synthetic`
generates datasets with the same *structure* the paper's claims rest on —
a multi-level tag taxonomy, item-tag memberships, planted sibling-overlap
noise, and users with controllable preference consistency/granularity —
and :mod:`repro.data.registry` provides named configs (``ciao``, ``cd``,
``clothing``, ``book``) that mirror the four datasets' relative statistics
at bench scale.
"""

from repro.data.dataset import InteractionDataset, Split, StreamError
from repro.data.splits import temporal_split
from repro.data.sampling import TripletSampler
from repro.data.synthetic import SyntheticConfig, generate_dataset
from repro.data.registry import DATASET_CONFIGS, load_dataset, dataset_statistics
from repro.data.io import (
    dataset_from_frames,
    load_dataset_file,
    read_interactions_csv,
    read_item_tags_csv,
    save_dataset,
)

__all__ = [
    "InteractionDataset",
    "Split",
    "StreamError",
    "temporal_split",
    "TripletSampler",
    "SyntheticConfig",
    "generate_dataset",
    "DATASET_CONFIGS",
    "load_dataset",
    "dataset_statistics",
    "save_dataset",
    "load_dataset_file",
    "read_interactions_csv",
    "read_item_tags_csv",
    "dataset_from_frames",
]
