"""Dataset serialization and interchange.

A downstream adopter has interactions in flat files, not in our synthetic
generator.  This module provides:

* :func:`save_dataset` / :func:`load_dataset_file` — lossless npz + JSON
  round-trip of an :class:`~repro.data.InteractionDataset`;
* :func:`read_interactions_csv` — ``user,item,timestamp`` CSV ingestion
  with dense id re-mapping;
* :func:`read_item_tags_csv` — ``item,tag`` CSV into the sparse Q matrix;
* :func:`dataset_from_frames` — assemble a dataset from the raw pieces.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import InteractionDataset
from repro.taxonomy import Taxonomy, extract_relations


def _dataset_paths(path: str) -> Tuple[pathlib.Path, pathlib.Path]:
    """The ``.npz`` / ``.taxonomy.json`` pair for a dataset base path.

    Suffixes are *appended*, never substituted: ``with_suffix`` would
    clobber dotted stems (``snap.v1`` and ``snap.v2`` both collapsing to
    ``snap.npz``), silently cross-loading another snapshot's
    interactions — fatal for the online loop, which saves versioned
    snapshots and relies on timestamp ordering for recency weighting.
    """
    base = pathlib.Path(path)
    if base.suffix == ".npz":
        base = base.with_suffix("")
    return (base.parent / (base.name + ".npz"),
            base.parent / (base.name + ".taxonomy.json"))


def save_dataset(dataset: InteractionDataset, path: str) -> None:
    """Write the dataset to ``<path>.npz`` plus ``<path>.taxonomy.json``."""
    npz_path, tax_path = _dataset_paths(path)
    coo = sp.coo_matrix(dataset.item_tags)
    np.savez_compressed(
        npz_path,
        user_ids=dataset.user_ids,
        item_ids=dataset.item_ids,
        timestamps=dataset.timestamps,
        n_users=np.array([dataset.n_users]),
        n_items=np.array([dataset.n_items]),
        q_row=coo.row, q_col=coo.col,
        q_shape=np.array(coo.shape),
    )
    payload = dataset.taxonomy.to_dict()
    payload["name"] = dataset.name
    with open(tax_path, "w") as f:
        json.dump(payload, f)


def load_dataset_file(path: str) -> InteractionDataset:
    """Inverse of :func:`save_dataset`."""
    npz_path, tax_path = _dataset_paths(path)
    arrays = np.load(npz_path)
    with open(tax_path) as f:
        payload = json.load(f)
    taxonomy = Taxonomy(payload["parents"], payload.get("names"))
    q = sp.coo_matrix(
        (np.ones(len(arrays["q_row"])),
         (arrays["q_row"], arrays["q_col"])),
        shape=tuple(arrays["q_shape"])).tocsr()
    return InteractionDataset(
        user_ids=arrays["user_ids"],
        item_ids=arrays["item_ids"],
        timestamps=arrays["timestamps"],
        n_users=int(arrays["n_users"][0]),
        n_items=int(arrays["n_items"][0]),
        item_tags=q,
        taxonomy=taxonomy,
        name=payload.get("name", "dataset"),
    )


def read_interactions_csv(path: str, has_header: bool = True
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     Dict[str, int], Dict[str, int]]:
    """Read ``user,item,timestamp`` rows, densifying string ids.

    Returns ``(user_ids, item_ids, timestamps, user_map, item_map)``.
    Timestamps default to row order when the column is missing.
    """
    users: List[int] = []
    items: List[int] = []
    times: List[int] = []
    user_map: Dict[str, int] = {}
    item_map: Dict[str, int] = {}
    with open(path, newline="") as f:
        reader = csv.reader(f)
        rows = iter(reader)
        if has_header:
            next(rows, None)
        for order, row in enumerate(rows):
            if len(row) < 2:
                continue
            user_key, item_key = row[0].strip(), row[1].strip()
            users.append(user_map.setdefault(user_key, len(user_map)))
            items.append(item_map.setdefault(item_key, len(item_map)))
            times.append(int(float(row[2])) if len(row) > 2 and row[2]
                         else order)
    return (np.asarray(users, dtype=np.int64),
            np.asarray(items, dtype=np.int64),
            np.asarray(times, dtype=np.int64), user_map, item_map)


def read_item_tags_csv(path: str, item_map: Dict[str, int],
                       tag_map: Optional[Dict[str, int]] = None,
                       has_header: bool = True
                       ) -> Tuple[sp.csr_matrix, Dict[str, int]]:
    """Read ``item,tag`` rows into a sparse Q matrix.

    Unknown items (absent from ``item_map``) are skipped; new tags extend
    ``tag_map``.
    """
    tag_map = dict(tag_map) if tag_map else {}
    rows: List[int] = []
    cols: List[int] = []
    with open(path, newline="") as f:
        reader = csv.reader(f)
        lines = iter(reader)
        if has_header:
            next(lines, None)
        for row in lines:
            if len(row) < 2:
                continue
            item_key, tag_key = row[0].strip(), row[1].strip()
            if item_key not in item_map:
                continue
            rows.append(item_map[item_key])
            cols.append(tag_map.setdefault(tag_key, len(tag_map)))
    q = sp.coo_matrix((np.ones(len(rows)), (rows, cols)),
                      shape=(len(item_map), max(len(tag_map), 1))).tocsr()
    q.data[:] = 1.0
    return q, tag_map


def dataset_from_frames(user_ids: np.ndarray, item_ids: np.ndarray,
                        timestamps: np.ndarray, item_tags: sp.spmatrix,
                        taxonomy: Taxonomy,
                        name: str = "imported") -> InteractionDataset:
    """Assemble a dataset from raw pieces, extracting logical relations."""
    n_users = int(user_ids.max()) + 1 if len(user_ids) else 0
    n_items = max(int(item_ids.max()) + 1 if len(item_ids) else 0,
                  item_tags.shape[0])
    return InteractionDataset(
        user_ids=user_ids, item_ids=item_ids, timestamps=timestamps,
        n_users=n_users, n_items=n_items, item_tags=item_tags,
        taxonomy=taxonomy,
        relations=extract_relations(taxonomy, item_tags), name=name)
